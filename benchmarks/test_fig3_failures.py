"""E3b — Fig. 3 under fire: in-sim machine failures vs stream latency.

Regenerates the paper's fault-tolerance claim (Sec. II-B): the fog
hierarchy keeps answering when machines crash mid-stream, at the cost of
latency spikes (retries, backoff, re-shipped activations) and of some
items resolving early at a shallower exit.  A seeded
:class:`~repro.cluster.failures.FailureProcess` crashes and repairs
machines *on the simulation clock* while the same camera stream that the
healthy Fig. 3 benchmark runs keeps flowing.
"""

import pytest

from benchmarks.helpers import print_table
from repro.cluster import NetworkTopology, Tier
from repro.fog import (
    FailureSpec,
    FaultPolicy,
    FogPipeline,
    model_split_from_early_exit,
    place_bottom_up,
)
from repro.runtime import Runtime, using_runtime


def build_pipeline():
    topology = NetworkTopology.build_fog_hierarchy(
        edges_per_fog=2, fogs_per_server=2, servers=1)
    edge = topology.machines(Tier.EDGE)[0].name
    stages = model_split_from_early_exit(
        local_flops=2e8, remote_flops=8e9,
        feature_bytes=8_192, input_bytes=640 * 480 * 3,
        local_exit_flops=5e6)
    return FogPipeline(place_bottom_up(topology, stages, edge))


def run_stream(failures=None):
    with using_runtime(Runtime(seed=0)) as runtime:
        stats = build_pipeline().simulate_stream(
            num_items=120, arrival_interval_s=0.05,
            exit_probabilities={1: 0.5}, seed=1,
            failures=failures,
            fault_policy=FaultPolicy(stage_timeout_s=5.0))
        records = runtime.events.records("cluster.failure")
    return stats, records


def test_fig3_failures_latency_spikes(benchmark):
    failures = FailureSpec(seed=1, mean_time_to_failure_s=0.6,
                           mean_time_to_repair_s=0.8, max_failures=6)

    def measure():
        healthy, _ = run_stream(failures=None)
        failing, records = run_stream(failures=failures)
        return healthy, failing, records

    healthy, failing, records = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    rows = [
        {"condition": condition,
         "mean_ms": 1000 * stats.mean_latency_s,
         "p95_ms": 1000 * stats.p95_latency_s,
         "max_ms": 1000 * stats.max_latency_s,
         "completed": stats.completed,
         "degraded": stats.degraded,
         "dropped": stats.dropped,
         "retries": stats.retries,
         "failovers": stats.failovers}
        for condition, stats in (("healthy", healthy),
                                 ("crash/repair x6", failing))]
    print_table("Fig. 3 — stream latency under machine failures", rows,
                ["condition", "mean_ms", "p95_ms", "max_ms", "completed",
                 "degraded", "dropped", "retries", "failovers"])
    print("\n  failure schedule (sim clock): "
          + ", ".join(f"{r.data['target']}@{r.time:.2f}s" for r in records))

    # Conservation: every arrival lands in exactly one outcome bucket.
    assert healthy.accounted == failing.accounted == 120
    assert healthy.degraded == healthy.dropped == 0
    assert healthy.retries == healthy.failovers == 0

    # The failure schedule actually ran, on the simulation clock.
    assert len(records) == 6
    assert all(record.clock == "sim" for record in records)
    times = [record.time for record in records]
    assert times == sorted(times)

    # Failures correlate with latency spikes: the retry/backoff/failover
    # machinery shows up in the tail, and some items resolve early.
    assert failing.retries > 0
    assert failing.failovers > 0
    assert failing.degraded > 0
    assert failing.p95_latency_s > 1.2 * healthy.p95_latency_s
    assert failing.max_latency_s > healthy.max_latency_s
