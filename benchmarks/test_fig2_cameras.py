"""E2 — Fig. 2: the DOTD camera network around Baton Rouge.

Regenerates the figure's content: a registry of 200+ cameras along the
interstates of nine Louisiana cities (Baton Rouge densest), the per-city
coverage table, aggregate feed rates, and the GeoJSON map layer the web
tier renders.
"""

import json

from benchmarks.helpers import print_table
from repro.core.capacity import CapacityPlanner
from repro.data import build_dotd_registry
from repro.data.cameras import LOUISIANA_CITIES
from repro.viz import cameras_to_geojson


def test_fig2_camera_network(benchmark):
    registry = benchmark(build_dotd_registry, seed=0)

    rows = registry.coverage_summary()
    for row in rows:
        row["highways"] = ",".join(row["highways"])
    print_table("Fig. 2 — DOTD camera coverage", rows,
                ["city", "cameras", "highways", "mbytes_per_second"])
    total_rate = registry.total_ingest_bytes_per_second()
    print(f"  total cameras: {len(registry)} (paper: 'more than 200')")
    print(f"  aggregate raw feed rate: {total_rate / 1e9:.2f} GB/s")

    geojson = cameras_to_geojson(registry)
    features = json.loads(geojson)["features"]
    print(f"  GeoJSON map layer: {len(features)} features, "
          f"{len(geojson):,} bytes")

    # Paper shape: >200 cameras, 9 cities, Baton Rouge densest.
    assert len(registry) > 200
    assert len(registry.cities()) == 9
    counts = {r["city"]: r["cameras"] for r in rows}
    assert max(counts, key=counts.get) == "Baton Rouge"
    # Every camera sits near its city center (the Fig. 2 clustering).
    for city in LOUISIANA_CITIES:
        for camera in registry.by_city(city.name):
            assert abs(camera.lat - city.lat) < 0.3
            assert abs(camera.lon - city.lon) < 0.3
    assert len(features) == len(registry)


def test_fig2_storage_capacity_planning(benchmark):
    """Sec. II-B's storage split quantified for the Fig. 2 fleet: raw
    video is buffered briefly; only annotations persist long term."""
    registry = build_dotd_registry(seed=0)
    planner = CapacityPlanner(registry)

    report = benchmark(planner.report)
    rows = [{"quantity": key, "value": value}
            for key, value in report.items()]
    print_table("Fig. 2 — fleet storage sizing (10 TB raw buffer)", rows,
                ["quantity", "value"])

    # A 10 TB buffer holds under a day of raw video from 200+ cameras —
    # the paper's reason raw feeds cannot be kept — while a year of
    # annotations fits in a few TB, a >10,000x reduction.
    assert report["raw_buffer_hours"] < 24
    assert report["annotated_gb_per_year"] < 5000
    assert report["compression_factor"] > 10_000
