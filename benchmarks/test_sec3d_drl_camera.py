"""E12 — Sec. III-D: DRL smart-camera control.

The paper proposes "smart camera controls to automatically rotate and zoom
in for traffic and crime incidents".  The bench trains a DQN on the PTZ
tracking task and compares mean episode reward against a random policy and
a fixed wide shot — the trained controller must dominate both.
"""

import numpy as np

from benchmarks.helpers import print_table
from repro.apps.drl import (
    DQNAgent,
    PTZCameraEnv,
    evaluate_policy,
    random_policy,
    static_policy,
)


def test_sec3d_dqn_vs_baselines(benchmark):
    env = PTZCameraEnv(episode_length=30, incident_speed=0.01, seed=0)

    def train_and_evaluate():
        agent = DQNAgent(env.observation_dim, env.num_actions,
                         hidden=24, lr=3e-3, epsilon_decay_steps=1200,
                         seed=0)
        rewards = agent.train(env, episodes=50, batch_size=32, warmup=100)
        eval_env = PTZCameraEnv(episode_length=30, incident_speed=0.01,
                                seed=42)
        return {
            "dqn": evaluate_policy(eval_env, agent.policy(), episodes=10),
            "random": evaluate_policy(
                eval_env, random_policy(env.num_actions), episodes=10),
            "static_wide": evaluate_policy(eval_env, static_policy(),
                                           episodes=10),
            "early_training": float(np.mean(rewards[:10])),
            "late_training": float(np.mean(rewards[-10:])),
        }

    results = benchmark.pedantic(train_and_evaluate, rounds=1, iterations=1)
    rows = [
        {"policy": "DQN (trained)", "mean_reward": results["dqn"]},
        {"policy": "random", "mean_reward": results["random"]},
        {"policy": "fixed wide shot", "mean_reward": results["static_wide"]},
    ]
    print_table("Sec. III-D — PTZ camera control", rows,
                ["policy", "mean_reward"])
    print(f"\n  training progress: first-10 episodes "
          f"{results['early_training']:.2f} -> last-10 "
          f"{results['late_training']:.2f}")

    assert results["dqn"] > results["random"]
    assert results["dqn"] > results["static_wide"]
    assert results["late_training"] > results["early_training"]
