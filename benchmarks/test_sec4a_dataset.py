"""E10 — Sec. IV-A-1 text: the 32,000-image / 400-class vehicle dataset.

The paper combines the Stanford car dataset with crawled images into
"32,000 images for 400 classes".  This bench assembles the synthetic
equivalent at the exact paper scale, verifies class balance and label
uniqueness, and trains a classifier head on a subset to confirm the
dataset is learnable.
"""

import numpy as np

from benchmarks.helpers import print_table
from repro import nn
from repro.nn import functional as F
from repro.apps.vehicle import VehicleDetectionApp
from repro.data.video import SceneGenerator, VehicleCatalog
from repro.nn.tensor import Tensor


def test_sec4a_dataset_assembly(benchmark):
    generator = SceneGenerator(image_size=8, num_classes=400, seed=0)

    def assemble():
        return generator.classification_dataset(32_000, patch_size=8)

    images, labels = benchmark.pedantic(assemble, rounds=1, iterations=1)
    catalog = VehicleCatalog(400)
    class_counts = np.bincount(labels, minlength=400)
    rows = [
        {"property": "images", "measured": len(images), "paper": 32_000},
        {"property": "classes", "measured": int(len(set(labels))),
         "paper": 400},
        {"property": "min images/class", "measured": int(class_counts.min()),
         "paper": "balanced"},
        {"property": "max images/class", "measured": int(class_counts.max()),
         "paper": "balanced"},
        {"property": "distinct labels",
         "measured": len(set(catalog.labels())), "paper": 400},
    ]
    print_table("Sec. IV-A-1 — dataset assembly", rows,
                ["property", "measured", "paper"])

    assert images.shape == (32_000, 1, 8, 8)
    assert len(set(labels)) == 400
    assert class_counts.min() == 80 and class_counts.max() == 80
    assert len(set(catalog.labels())) == 400


def test_sec4a_subset_learnable(benchmark):
    # A 10-class subset must be learnable by a small classifier head —
    # evidence that class signatures carry signal at the paper scale.
    generator = SceneGenerator(image_size=8, num_classes=10, seed=1)
    images, labels = generator.classification_dataset(300, patch_size=8)

    def train():
        model = nn.Sequential(
            nn.Flatten(), nn.Linear(64, 64, rng=np.random.default_rng(0)),
            nn.ReLU(), nn.Linear(64, 10, rng=np.random.default_rng(1)))
        optimizer = nn.Adam(model.parameters(), lr=0.01)
        for _ in range(60):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(Tensor(images)), labels)
            loss.backward()
            optimizer.step()
        model.eval()
        test_images, test_labels = generator.classification_dataset(
            100, patch_size=8)
        return F.accuracy(model(Tensor(test_images)), test_labels)

    accuracy = benchmark.pedantic(train, rounds=1, iterations=1)
    print(f"\n  10-class held-out accuracy: {accuracy:.3f} "
          f"(chance: 0.100)")
    assert accuracy > 0.8
