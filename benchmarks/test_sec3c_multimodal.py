"""E11 — Sec. III-C: multimodal fusion vs single-modality baselines.

The paper: "combining data from multiple modals can greatly increase the
performance of a learning system", with autoencoder fusion and CCA as the
two implemented methods.  The bench reports gunshot-detection accuracy for
audio-only, video-only, naive concatenation, CCA fusion and AE fusion —
both fusion methods must beat every single modality.
"""

from benchmarks.helpers import print_table
from repro.apps.fusion import GunshotFusionApp


def test_sec3c_fusion_vs_single_modality(benchmark):
    app = GunshotFusionApp(seed=0)

    def run():
        return app.run(train_per_class=60, test_per_class=40, ae_epochs=150)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"method": method, "accuracy": accuracy}
            for method, accuracy in results.items()]
    print_table("Sec. III-C — gunshot detection accuracy", rows,
                ["method", "accuracy"])

    best_single = max(results["audio_only"], results["video_only"])
    assert results["ae_fusion"] > best_single
    assert results["cca_fusion"] > best_single
    assert results["ae_fusion"] > 0.85
    # Single modalities are capped by their confuser class.
    assert results["audio_only"] < 0.9
    assert results["video_only"] < 0.9


def test_sec3c_missing_modality(benchmark):
    app = GunshotFusionApp(seed=1)

    def run():
        return app.missing_modality_accuracy(train_per_class=60,
                                             test_per_class=40,
                                             ae_epochs=150)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"condition": condition, "accuracy": accuracy}
            for condition, accuracy in report.items()]
    print_table("Sec. III-C — AE fusion with a missing modality", rows,
                ["condition", "accuracy"])
    assert report["both"] >= max(report["audio_missing_video"],
                                 report["video_missing_audio"]) - 0.05
