"""E13 — Sec. II-B/C: substrate microbenchmarks.

One measured behaviour per substrate the paper's software layer borrows:
DFS replication & recovery, HBase random access vs DFS batch scans, the
document store's geo index, the RDD shuffle, Flume delivery under sink
failures, and YARN scheduling throughput.
"""

import numpy as np
import pytest

from benchmarks.helpers import print_table
from repro.compute import NodeManager, ResourceManager, ResourceRequest, SparkContext
from repro.dfs import DistributedFileSystem
from repro.nosql import Collection, HTable
from repro.streaming import FlumeAgent, FunctionSource, SinkError


def test_sec2_dfs_write_read(benchmark):
    def roundtrip():
        dfs = DistributedFileSystem.with_datanodes(
            4, replication=2, block_size=4096)
        payload = b"x" * 100_000
        for index in range(10):
            dfs.create(f"/videos/chunk-{index}", payload)
        total = sum(len(dfs.read(f"/videos/chunk-{index}"))
                    for index in range(10))
        return dfs, total

    dfs, total = benchmark(roundtrip)
    print(f"\n  1 MB through the DFS (x2 replication): "
          f"{dfs.total_bytes_stored() / 1e6:.1f} MB stored")
    assert total == 1_000_000
    assert dfs.total_bytes_stored() == 2_000_000


def test_sec2_dfs_failure_recovery(benchmark):
    def recover():
        dfs = DistributedFileSystem.with_datanodes(
            6, replication=3, block_size=4096)
        for index in range(8):
            dfs.create(f"/f{index}", b"y" * 20_000)
        dfs.fail_datanode("datanode-0")
        dfs.fail_datanode("datanode-1")
        under = len(dfs.under_replicated())
        created = dfs.re_replicate()
        return under, created, len(dfs.under_replicated())

    under, created, remaining = benchmark(recover)
    print(f"\n  2/6 datanodes failed: {under} under-replicated blocks, "
          f"{created} new replicas created, {remaining} still degraded")
    assert under > 0
    assert created >= under
    assert remaining == 0


def test_sec2_hbase_random_access_vs_dfs_scan(benchmark):
    # The paper's contrast: HDFS is batch-only; HBase adds efficient
    # random reads.  Measure per-row access into a 300-row table.
    dfs = DistributedFileSystem.with_datanodes(3, replication=2)
    table = HTable("incidents", dfs, families=("d",),
                   memstore_flush_cells=100)
    for index in range(300):
        table.put(f"row-{index:04d}", "d", "v", str(index).encode())
    table.flush()

    def random_reads():
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(50):
            key = f"row-{int(rng.integers(300)):04d}"
            if table.get_value(key, "d", "v") is not None:
                hits += 1
        return hits

    hits = benchmark(random_reads)
    print(f"\n  50 random reads over 300 rows across "
          f"{table.hfile_count} HFiles: {hits} hits")
    assert hits == 50


def test_sec2_hbase_compaction_shrinks_storage(benchmark):
    def churn_and_compact():
        dfs = DistributedFileSystem.with_datanodes(3, replication=2)
        table = HTable("churn", dfs, families=("d",))
        # Five write rounds over the same 40 rows, flushing after each:
        # five HFiles whose older versions compaction folds away.
        for version in range(5):
            for index in range(40):
                table.put(f"row-{index}", "d", "v",
                          f"value-{version}".encode() * 20)
            table.flush()
        before = dfs.total_bytes_stored()
        table.compact()
        return before, dfs.total_bytes_stored()

    before, after = benchmark(churn_and_compact)
    print(f"\n  compaction: {before:,} -> {after:,} bytes "
          f"({before / max(after, 1):.1f}x)")
    assert after < before


def test_sec2_mongo_geo_index_speedup(benchmark):
    rng = np.random.default_rng(0)
    points = rng.random((3000, 2))
    docs = [{"location": p.tolist(), "kind": "crime"} for p in points]
    indexed = Collection("indexed")
    indexed.insert_many(docs)
    indexed.create_geo_index("location", cell_size=0.05)
    query = {"location": {"$near": [0.5, 0.5], "$maxDistance": 0.05}}

    def indexed_query():
        return indexed.find(query)

    hits = benchmark(indexed_query)
    plain = Collection("plain")
    plain.insert_many(docs)
    plain_hits = plain.find(query)
    print(f"\n  geo $near over 3000 docs: {len(hits)} hits "
          f"(index used: {indexed.last_query_used_index})")
    assert indexed.last_query_used_index
    assert {d["_id"] for d in hits} == {d["_id"] for d in plain_hits}


def test_sec2_rdd_shuffle_wordcount(benchmark):
    rng = np.random.default_rng(0)
    words = ["traffic", "crime", "camera", "tweet", "jam", "alert"]
    lines = [" ".join(rng.choice(words, 8)) for _ in range(2000)]

    def wordcount():
        context = SparkContext(default_parallelism=4)
        counts = dict(
            context.parallelize(lines)
            .flatMap(str.split)
            .map(lambda w: (w, 1))
            .reduceByKey(lambda a, b: a + b)
            .collect())
        return counts, context.shuffle_count

    counts, shuffles = benchmark(wordcount)
    print(f"\n  wordcount over 2000 lines: {sum(counts.values())} tokens, "
          f"{shuffles} shuffle(s)")
    assert sum(counts.values()) == 2000 * 8
    assert shuffles == 1


def test_sec2_flume_at_least_once_under_failures(benchmark):
    def ingest():
        received = []
        failures = {"remaining": 5}

        def flaky_sink(events):
            if failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise SinkError("transient outage")
            received.extend(events)

        agent = FlumeAgent(FunctionSource(range(500)), flaky_sink,
                           batch_size=20)
        metrics = agent.run()
        return metrics, received

    metrics, received = benchmark(ingest)
    print(f"\n  500 events through a flaky sink: "
          f"{metrics.events_delivered} delivered, "
          f"{metrics.batches_rolled_back} batches retried")
    assert metrics.events_delivered == 500
    assert received == list(range(500))
    assert metrics.batches_rolled_back == 5


def test_sec2_yarn_scheduling_throughput(benchmark):
    def schedule():
        rm = ResourceManager()
        for index in range(4):
            rm.register_node(NodeManager(f"nm-{index}", vcores=16,
                                         memory_mb=65_536))
        granted = []
        for index in range(64):
            container = rm.submit(ResourceRequest(
                f"app-{index}", vcores=1, memory_mb=1024))
            if container is not None:
                granted.append(container)
        for container in list(granted):
            rm.release(container)
        return len(granted), rm.pending_count

    granted, pending = benchmark(schedule)
    print(f"\n  64 container requests over 4x16 vcores: "
          f"{granted} granted immediately, {pending} left pending")
    assert granted == 64
    assert pending == 0


def test_sec2_dstream_windowed_analytics(benchmark):
    # Streaming processing (Sec. II-C-2): windowed per-type counts over a
    # live Waze topic through the micro-batch engine.
    from repro.compute import StreamingContext
    from repro.data import WazeGenerator
    from repro.streaming import MessageBus

    reports = WazeGenerator(seed=0).reports(600)

    def stream_pass():
        bus = MessageBus()
        bus.create_topic("waze", partitions=4)
        for report in reports:
            bus.produce("waze", report)
        context = StreamingContext(bus, batch_max_records=100)
        snapshots = []
        (context.stream("waze")
         .filter(lambda r: r["severity"] >= 3)
         .reduce_by_key_and_window(lambda r: r["type"], batches=3,
                                   into=snapshots))
        consumed = context.run_until_idle()
        return consumed, snapshots

    consumed, snapshots = benchmark(stream_pass)
    print(f"\n  {consumed} Waze reports through {len(snapshots)} "
          f"micro-batches; final window: {snapshots[-1]}")
    assert consumed == 600
    total_severe = sum(1 for r in reports if r["severity"] >= 3)
    all_time = {}
    # union of the windowed counts over all batches covers every type seen
    for snapshot in snapshots:
        for kind, count in snapshot.items():
            all_time[kind] = max(all_time.get(kind, 0), count)
    assert sum(snapshots[0].values()) <= total_severe
