"""E6 — Fig. 6: vehicle detection & classification examples.

The paper's figure shows annotated frames from the prototype.  This bench
regenerates the equivalent artifact: detection/classification quality on
fresh synthetic scenes, the per-image annotation records (frame, label,
box, score) that would be drawn on the figure, and their indexing into the
document store for the web layer.
"""

from benchmarks.helpers import print_table
from repro.nosql import Collection


def test_fig6_annotated_detections(trained_vehicle_app, benchmark):
    app = trained_vehicle_app

    def evaluate():
        return app.evaluate(num_scenes=32, threshold=0.5)

    report = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    metrics = report.detection_metrics
    rows = [{"metric": k, "value": float(v)} for k, v in metrics.items()]
    print_table("Fig. 6 — detection quality on fresh scenes", rows,
                ["metric", "value"])

    sample = report.annotations[:5]
    annotation_rows = [{
        "frame": a["frame"], "label": a["label"],
        "score": a["score"], "exit": a["exit"],
    } for a in sample]
    print_table("Fig. 6 — sample annotations (the drawn boxes)",
                annotation_rows, ["frame", "label", "score", "exit"])

    collection = Collection("fig6_annotations")
    written = app.index_annotations(collection, report)
    print(f"\n  indexed {written} annotations into the document store")

    # Shape: the trained prototype finds most vehicles and its annotations
    # carry human-readable make/model labels, as in the figure.
    assert metrics["recall"] > 0.5
    assert metrics["mean_iou"] > 0.4
    assert written == len(report.annotations) > 0
    assert all(a["label"] for a in report.annotations)
    assert collection.count({}) == written
