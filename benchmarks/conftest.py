"""Shared fixtures for the per-figure benchmark harness.

Each ``test_fig*`` / ``test_sec*`` file regenerates one paper artifact
(see DESIGN.md's per-experiment index).  Training is expensive relative to
the measured operations, so trained applications are session-scoped.
"""

import pytest

from repro.apps.action import ActionRecognitionApp
from repro.apps.vehicle import VehicleDetectionApp


@pytest.fixture(scope="session")
def trained_vehicle_app():
    app = VehicleDetectionApp(num_classes=3, image_size=16, seed=0)
    app.train(num_scenes=48, epochs=30, lr=0.01)
    return app


@pytest.fixture(scope="session")
def trained_action_app():
    app = ActionRecognitionApp(image_size=16, frames=6, seed=0)
    app.train(clips_per_class=8, epochs=22, lr=0.01)
    return app
