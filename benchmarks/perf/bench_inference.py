"""Inference fast-path benchmark: BENCH_nn_inference.json.

Measures what the PR's fast path actually buys on the paper's two serving
shapes:

- **resnet_block** — the Fig. 8 ResNet-block classifier
  (:class:`~repro.nn.models.resnet.SmallResNet`), served as a plain
  batched forward;
- **early_exit** — the Fig. 5 two-tier
  :class:`~repro.nn.models.earlyexit.EarlyExitNetwork`, served through the
  score-threshold exit rule.

Three variants per model and batch size:

- ``unfused-float64-grad`` — the pre-PR default: float64 weights, autograd
  recording backward closures, BatchNorm executed at every layer.  For the
  early-exit model this is the old per-sample ``infer`` loop.
- ``unfused-float64-nograd`` — the same graph under ``nn.no_grad()``.
- ``fused-float32-nograd`` — ``fuse_for_inference(model, np.float32)``:
  BN folded into conv/dense weights, float32 end to end, no autograd.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_inference          # full
    PYTHONPATH=src python -m benchmarks.perf.bench_inference --quick  # CI

``--min-speedup R`` exits non-zero unless fused-float32-nograd beats the
pre-PR default by at least ``R``x on every model (the CI perf gate).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from typing import Dict, List

import numpy as np

from repro import nn
from repro.fog.codec import AutoencoderCodec
from repro.nn.fuse import fuse_for_inference
from repro.nn.inference import batched_forward, eval_mode
from repro.nn.models.autoencoder import Autoencoder
from repro.nn.models.earlyexit import EarlyExitNetwork, score_confidence
from repro.nn.models.resnet import SmallResNet
from repro.nn.plan import PlanCache
from repro.nn.quantize import quantize_for_inference
from repro.nn.tensor import Tensor
from repro.runtime import get_runtime

OUTPUT = "BENCH_nn_inference.json"
BASELINE = "unfused-float64-grad"
FAST = "fused-float32-nograd"
PLANNED = "planned-float32"


def _time(fn, repeats: int) -> float:
    """Median seconds per call (one warmup call outside the clock)."""
    runtime = get_runtime()
    fn()
    samples = []
    for _ in range(repeats):
        start = runtime.now()
        fn()
        samples.append(runtime.now() - start)
    return statistics.median(samples)


def build_resnet(rng) -> SmallResNet:
    return SmallResNet(1, num_classes=4, widths=(8, 16), rng=rng)


def build_early_exit(rng) -> EarlyExitNetwork:
    return EarlyExitNetwork(
        local_stage=nn.Sequential(
            nn.Conv2d(1, 8, 3, padding=1, rng=rng),
            nn.BatchNorm2d(8),
            nn.ReLU(),
        ),
        local_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(8, 4, rng=rng)),
        remote_stage=nn.Sequential(
            nn.Conv2d(8, 16, 3, stride=2, padding=1, rng=rng),
            nn.BatchNorm2d(16),
            nn.ReLU(),
            nn.Conv2d(16, 16, 3, padding=1, rng=rng),
            nn.BatchNorm2d(16),
            nn.ReLU(),
        ),
        remote_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(16, 4, rng=rng)),
    )


def _per_sample_infer(model: EarlyExitNetwork, x: np.ndarray,
                     threshold: float) -> None:
    """The pre-PR serving loop: one forward per frame, grad recording on."""
    with eval_mode(model):
        for row in range(x.shape[0]):
            frame = Tensor(x[row:row + 1])
            features = model.local_stage(frame)
            local = model.local_head(features).data
            if float(score_confidence(local)[0]) < threshold:
                model.remote_head(model.remote_stage(features))


def resnet_runners(model: SmallResNet, x: np.ndarray) -> Dict[str, callable]:
    fused = fuse_for_inference(model, dtype=np.float32)
    x32 = x.astype(np.float32)

    def baseline():
        with eval_mode(model):
            model(Tensor(x, requires_grad=True))

    def nograd():
        with eval_mode(model), nn.no_grad():
            model(Tensor(x))

    def fast():
        with nn.no_grad():
            fused(Tensor(x32))

    cache = PlanCache(label="bench.resnet_block")

    def planned():
        # First call (the warmup outside the clock) captures; every timed
        # call reuses the plan's arena.
        cache.run(fused, x32)

    return {BASELINE: baseline, "unfused-float64-nograd": nograd,
            FAST: fast, PLANNED: planned}


def early_exit_runners(model: EarlyExitNetwork, x: np.ndarray,
                       threshold: float, rng) -> Dict[str, callable]:
    fused = fuse_for_inference(model, dtype=np.float32)
    x32 = x.astype(np.float32)

    planned = fuse_for_inference(model, dtype=np.float32).enable_plans()

    # int8 edge tier: quantize the device-side stage and head (the head
    # calibrates on the quantized stage's features, as deployment does).
    edge = fuse_for_inference(model, dtype=np.float32)
    edge.local_stage = quantize_for_inference(edge.local_stage, x32)
    feats = batched_forward(edge.local_stage, x32, model="bench.calibration")
    edge.local_head = quantize_for_inference(edge.local_head, feats)
    edge.enable_plans()

    # offload codec: escalated feature maps ship through an autoencoder
    # bottleneck (weights untrained — latency doesn't care, fidelity does).
    offload = fuse_for_inference(model, dtype=np.float32).enable_plans()
    autoencoder = Autoencoder(8 * x.shape[2] * x.shape[3], [128], 32,
                              rng=rng).astype(np.float32)
    offload.activation_codec = AutoencoderCodec(autoencoder)

    return {
        BASELINE: lambda: _per_sample_infer(model, x, threshold),
        "unfused-float64-nograd": lambda: model.infer_batch(x, threshold),
        FAST: lambda: fused.infer_batch(x32, threshold),
        PLANNED: lambda: planned.infer_batch(x32, threshold, plan=True),
        "planned-int8-edge": lambda: edge.infer_batch(x32, threshold,
                                                      plan=True),
        "offload-codec": lambda: offload.infer_batch(x32, threshold,
                                                     plan=True),
    }


def run(batch_sizes: List[int], image_size: int, repeats: int,
        seed: int = 0) -> Dict:
    runtime = get_runtime()
    rng = runtime.rng.np_child("bench.perf.inference", seed)
    data_rng = runtime.rng.np_child("bench.perf.inference.data", seed)
    models = {
        "resnet_block": build_resnet(rng),
        "early_exit": build_early_exit(rng),
    }
    rows = []
    for model_name, model in models.items():
        for batch in batch_sizes:
            x = data_rng.normal(0.0, 1.0, (batch, 1, image_size, image_size))
            if model_name == "resnet_block":
                runners = resnet_runners(model, x)
            else:
                runners = early_exit_runners(model, x, threshold=0.5, rng=rng)
            for variant, fn in runners.items():
                seconds = _time(fn, repeats)
                rows.append({
                    "model": model_name,
                    "variant": variant,
                    "batch_size": batch,
                    "latency_s": seconds,
                    "throughput_items_s": batch / seconds,
                })
                print(f"{model_name:>12}  {variant:>22}  batch={batch:<4} "
                      f"{1000 * seconds:8.2f} ms  "
                      f"{batch / seconds:10.1f} items/s")
    return {"image_size": image_size, "repeats": repeats, "rows": rows}


def _largest_batch_rates(rows: List[Dict], model_name: str) -> Dict[str, float]:
    batch = max(r["batch_size"] for r in rows if r["model"] == model_name)
    return {r["variant"]: r["throughput_items_s"] for r in rows
            if r["model"] == model_name and r["batch_size"] == batch}


def speedups(rows: List[Dict]) -> Dict[str, float]:
    """Per-model throughput ratio of the fast path over the pre-PR default.

    Compares the largest benchmarked batch (the serving-relevant regime).
    """
    out = {}
    for model_name in sorted({r["model"] for r in rows}):
        rate = _largest_batch_rates(rows, model_name)
        out[model_name] = rate[FAST] / rate[BASELINE]
    return out


def planned_speedups(rows: List[Dict]) -> Dict[str, float]:
    """Per-model throughput ratio of the captured plan over the fused path."""
    out = {}
    for model_name in sorted({r["model"] for r in rows}):
        rate = _largest_batch_rates(rows, model_name)
        out[model_name] = rate[PLANNED] / rate[FAST]
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI configuration (seconds, not minutes)")
    parser.add_argument("--batch-sizes", type=int, nargs="+", default=None)
    parser.add_argument("--image-size", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless fused-float32-nograd beats the "
                             "pre-PR default by this factor on every model")
    parser.add_argument("--min-planned-speedup", type=float, default=None,
                        help="fail unless planned-float32 beats "
                             "fused-float32-nograd by this factor on every "
                             "model")
    parser.add_argument("--output", default=OUTPUT)
    args = parser.parse_args(argv)

    if args.quick:
        batch_sizes = args.batch_sizes or [1, 16]
        image_size = args.image_size or 16
        repeats = args.repeats or 3
    else:
        batch_sizes = args.batch_sizes or [1, 8, 32, 64]
        image_size = args.image_size or 24
        repeats = args.repeats or 5

    payload = run(batch_sizes, image_size, repeats)
    payload["speedup_vs_baseline"] = speedups(payload["rows"])
    payload["planned_speedup_vs_fused"] = planned_speedups(payload["rows"])

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"\nwrote {args.output}")
    for model_name, ratio in payload["speedup_vs_baseline"].items():
        print(f"  {model_name}: {FAST} is {ratio:.2f}x the pre-PR default")
    for model_name, ratio in payload["planned_speedup_vs_fused"].items():
        print(f"  {model_name}: {PLANNED} is {ratio:.2f}x {FAST}")

    failed = False
    if args.min_speedup is not None:
        slow = {name: ratio
                for name, ratio in payload["speedup_vs_baseline"].items()
                if ratio < args.min_speedup}
        if slow:
            print(f"FAIL: speedup below {args.min_speedup}x: {slow}",
                  file=sys.stderr)
            failed = True
    if args.min_planned_speedup is not None:
        slow = {name: ratio
                for name, ratio in payload["planned_speedup_vs_fused"].items()
                if ratio < args.min_planned_speedup}
        if slow:
            print(f"FAIL: planned speedup below {args.min_planned_speedup}x: "
                  f"{slow}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
