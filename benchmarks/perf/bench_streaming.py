"""Streaming-broker benchmark: BENCH_streaming.json.

The ingestion backbone under load: events ride ``produce_batch`` into a
bounded, retention-pruned topic and come back out through a manual-commit
consumer group, exactly the way the Flume agents and the fog tier consume
in production.  Each scenario runs rounds of *produce a chunk → poll it
back → commit*, so the measurement covers the full produce→consume loop,
offset bookkeeping included, while retention keeps the resident log small
enough for CI hosts.

The batch scenarios ride the columnar fast path end to end:
``produce_batch`` plans partitions once per chunk and bulk-appends into
the column stores, ``poll_batch`` hands back a
:class:`~repro.streaming.broker.RecordBatch` whose value column is read
directly — no per-record ``Record`` objects anywhere in the loop.  The
**per-record** scenario runs the same unkeyed workload through single
``produce()`` calls and record-materializing ``poll()``, anchoring the
``batch_speedup`` ratios (and the ``--min-batch-speedup`` CI gate).

Every record carries its produce wall-time; the consumer side turns that
into per-record produce→consume latency, reported as p50/p99.

Scenarios:

- **unkeyed** — round-robin partitioning, one group member (the gated
  number: ``--min-events-per-s`` applies to this row);
- **keyed** — md5 key partitioning over 64 keys (the camera-feed shape);
- **two-members** — the same unkeyed workload split across two consumers
  in one group, covering assignment and per-member offset bookkeeping;
- **per-record** — the unkeyed workload on the legacy one-record-at-a-time
  API, the denominator for ``batch_speedup``.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_streaming          # full
    PYTHONPATH=src python -m benchmarks.perf.bench_streaming --quick  # CI

The full configuration pushes >= 1M events through the gated scenario.
``--min-events-per-s R`` exits non-zero if the gated scenario's
end-to-end throughput falls below ``R``; ``--min-batch-speedup S`` exits
non-zero unless both the produce and consume throughput of the batch
path beat the per-record path by at least ``S``x (the CI perf gates).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.streaming.broker import Broker

OUTPUT = "BENCH_streaming.json"
GATED_SCENARIO = "unkeyed"
PER_RECORD_SCENARIO = "per-record"

CHUNK = 1_000          # records per produce_batch / poll
RETAIN = 8 * CHUNK     # resident log bound between retention sweeps
KEYS = 64              # distinct keys in the keyed scenario


def percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def run_scenario(name: str, events: int, partitions: int, members: int,
                 keyed: bool, per_record: bool = False) -> Dict:
    broker = Broker()
    broker.create_topic("bench", partitions=partitions,
                        retention_max_records=RETAIN)
    consumers = [broker.consumer("bench", ["bench"], auto_commit=False)
                 for _ in range(members)]
    key_fn = (lambda stamp: f"k{int(stamp * 1e6) % KEYS}") if keyed else None

    produced = consumed = 0
    produce_s = consume_s = 0.0
    latencies: List[float] = []
    start = time.perf_counter()
    while consumed < events:
        if produced < events:
            chunk = min(CHUNK, events - produced)
            t0 = time.perf_counter()
            if per_record:
                for _ in range(chunk):
                    broker.produce("bench", time.perf_counter())
            else:
                broker.produce_batch(
                    "bench", [time.perf_counter()] * chunk, key_fn=key_fn)
            produce_s += time.perf_counter() - t0
            produced += chunk
        t0 = time.perf_counter()
        for consumer in consumers:
            if per_record:
                records = consumer.poll(CHUNK)
                if records:
                    consumer.commit()
                now = time.perf_counter()
                latencies.extend(now - record.value for record in records)
                consumed += len(records)
            else:
                batch = consumer.poll_batch(CHUNK)
                if batch:
                    consumer.commit()
                now = time.perf_counter()
                latencies.extend(now - value for value in batch.values)
                consumed += len(batch)
        consume_s += time.perf_counter() - t0
        broker.run_retention("bench")
    total_s = time.perf_counter() - start

    assert consumed == events, f"{name}: consumed {consumed} != {events}"
    assert broker.lag("bench", "bench") == 0
    broker.close()
    row = {
        "scenario": name,
        "events": events,
        "partitions": partitions,
        "group_members": members,
        "keyed": keyed,
        "per_record": per_record,
        "seconds": total_s,
        "events_per_s": events / total_s,
        "produce_events_per_s": events / produce_s,
        "consume_events_per_s": events / consume_s,
        "latency_p50_ms": percentile(latencies, 0.50) * 1000.0,
        "latency_p99_ms": percentile(latencies, 0.99) * 1000.0,
    }
    print(f"{name:>12}  {events:>9} ev  {total_s:7.2f} s  "
          f"{row['events_per_s']:9.0f} ev/s  "
          f"p50 {row['latency_p50_ms']:6.2f} ms  "
          f"p99 {row['latency_p99_ms']:6.2f} ms")
    return row


def run(gated_events: int, side_events: int, partitions: int) -> Dict:
    rows = [
        run_scenario(GATED_SCENARIO, gated_events, partitions,
                     members=1, keyed=False),
        run_scenario("keyed", side_events, partitions,
                     members=1, keyed=True),
        run_scenario("two-members", side_events, partitions,
                     members=2, keyed=False),
        run_scenario(PER_RECORD_SCENARIO, side_events, partitions,
                     members=1, keyed=False, per_record=True),
    ]
    return {
        "workload": {
            "gated_events": gated_events, "side_events": side_events,
            "partitions": partitions, "chunk": CHUNK,
            "retention_max_records": RETAIN, "keys": KEYS,
        },
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "batch_speedup": batch_speedup(rows),
    }


def find_row(rows: List[Dict], scenario: str) -> Optional[Dict]:
    for row in rows:
        if row["scenario"] == scenario:
            return row
    return None


def gated_throughput(rows: List[Dict]) -> Optional[float]:
    row = find_row(rows, GATED_SCENARIO)
    return row["events_per_s"] if row else None


def batch_speedup(rows: List[Dict]) -> Optional[Dict[str, float]]:
    """Batch-path / per-record-path throughput ratios, per stage.

    Both rows run the same unkeyed workload shape (same chunk size,
    partitions and retention bound), so the ratios isolate the columnar
    fast path itself: chunked partition planning and bulk appends on the
    produce side, Record-free column slicing on the consume side.
    """
    batch = find_row(rows, GATED_SCENARIO)
    legacy = find_row(rows, PER_RECORD_SCENARIO)
    if batch is None or legacy is None:
        return None
    return {
        "produce": batch["produce_events_per_s"]
        / legacy["produce_events_per_s"],
        "consume": batch["consume_events_per_s"]
        / legacy["consume_events_per_s"],
        "end_to_end": batch["events_per_s"] / legacy["events_per_s"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI configuration (seconds, not minutes)")
    parser.add_argument("--events", type=int, default=None,
                        help="events through the gated scenario")
    parser.add_argument("--side-events", type=int, default=None,
                        help="events through each non-gated scenario")
    parser.add_argument("--partitions", type=int, default=None)
    parser.add_argument("--min-events-per-s", type=float, default=None,
                        help=f"fail unless the {GATED_SCENARIO} scenario "
                             "sustains this end-to-end throughput")
    parser.add_argument("--min-batch-speedup", type=float, default=None,
                        help="fail unless batch produce AND consume beat "
                             f"the {PER_RECORD_SCENARIO} scenario by this "
                             "factor")
    parser.add_argument("--output", default=OUTPUT)
    args = parser.parse_args(argv)

    if args.quick:
        config = dict(gated_events=args.events or 120_000,
                      side_events=args.side_events or 40_000,
                      partitions=args.partitions or 4)
    else:
        config = dict(gated_events=args.events or 1_000_000,
                      side_events=args.side_events or 200_000,
                      partitions=args.partitions or 4)

    payload = run(**config)
    rate = gated_throughput(payload["rows"])
    payload["gated_events_per_s"] = rate
    speedup = payload["batch_speedup"]

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"\nwrote {args.output}")
    print(f"  {GATED_SCENARIO}: {rate:.0f} events/s end-to-end "
          f"(cpu_count={payload['cpu_count']})")
    if speedup is not None:
        print(f"  batch speedup vs {PER_RECORD_SCENARIO}: "
              f"produce {speedup['produce']:.2f}x, "
              f"consume {speedup['consume']:.2f}x, "
              f"end-to-end {speedup['end_to_end']:.2f}x")

    failed = False
    if args.min_events_per_s is not None and rate < args.min_events_per_s:
        print(f"FAIL: {rate:.0f} events/s below {args.min_events_per_s:.0f}",
              file=sys.stderr)
        failed = True
    if args.min_batch_speedup is not None:
        worst = min(speedup["produce"], speedup["consume"])
        if worst < args.min_batch_speedup:
            print(f"FAIL: batch speedup {worst:.2f}x below "
                  f"{args.min_batch_speedup:.2f}x "
                  f"(produce {speedup['produce']:.2f}x, "
                  f"consume {speedup['consume']:.2f}x)", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
