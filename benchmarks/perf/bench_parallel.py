"""Parallel-engine benchmark: BENCH_parallel.json.

The Fig. 5 multi-camera workload: several camera streams, each a sequence
of frames served through the fused-float32 early-exit network under the
score-threshold policy.  Each stream is one executor task; the sweep runs
the identical workload serially and through :class:`ParallelExecutor`
pools of 1/2/4 workers, asserting the exit decisions never change.

Two workload modes, because what the pool buys depends on what paces the
stream:

- **stream** — each micro-batch waits on a simulated camera link before
  inference (frames arrive at link rate, as in the paper's deployment).
  Workers overlap one stream's link stalls with another's compute, so
  even a single-core host sees real wall-clock speedup.  This is the
  gated number.
- **compute** — no link stall, pure CPU.  Scales with *physical cores*;
  on a single-core CI host this honestly reports ~1x, and the recorded
  ``cpu_count`` says why.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_parallel          # full
    PYTHONPATH=src python -m benchmarks.perf.bench_parallel --quick  # CI

``--min-speedup R`` exits non-zero unless the 4-worker stream-mode run
beats the serial loop by at least ``R``x (the CI perf gate).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from benchmarks.perf.bench_inference import build_early_exit
from repro.fog.policies import ScoreThresholdPolicy, run_policy_batched
from repro.nn.fuse import fuse_for_inference
from repro.nn.inference import iter_microbatches
from repro.runtime import ParallelExecutor, fork_available, get_runtime

OUTPUT = "BENCH_parallel.json"
GATED_MODE = "stream"
GATED_WORKERS = 4


def _time(fn, repeats: int) -> float:
    """Median seconds per call (one warmup call outside the clock)."""
    runtime = get_runtime()
    fn()
    samples = []
    for _ in range(repeats):
        start = runtime.now()
        fn()
        samples.append(runtime.now() - start)
    return statistics.median(samples)


def make_streams(rng, streams: int, frames: int, image_size: int
                 ) -> List[np.ndarray]:
    return [rng.normal(0.0, 1.0, (frames, 1, image_size, image_size))
            .astype(np.float32) for _ in range(streams)]


def make_serve(model, policy, batch_size: int, link_s: float):
    """Per-stream task: micro-batches arrive at link rate, then infer."""

    def serve(frames: np.ndarray):
        decisions = []
        for chunk in iter_microbatches(frames, batch_size):
            if link_s > 0.0:
                time.sleep(link_s)  # camera link paces frame delivery
            decisions.append(run_policy_batched(model, chunk, policy))
        return decisions

    return serve


def run_sweep(serve, streams, worker_counts: List[int], repeats: int
              ) -> Dict[int, Dict]:
    """Wall seconds + decisions for the serial loop and each pool size."""

    def decisions_of(results):
        return [(d.predictions.tolist(), d.exit_index.tolist())
                for per_stream in results for d in per_stream]

    out = {}
    serial = [serve(frames) for frames in streams]
    out[0] = {"seconds": _time(lambda: [serve(f) for f in streams], repeats),
              "decisions": decisions_of(serial)}
    for workers in worker_counts:
        executor = ParallelExecutor(workers=workers)
        fanned = executor.map_ordered(serve, streams, label="bench.streams")
        out[workers] = {
            "seconds": _time(
                lambda: executor.map_ordered(serve, streams,
                                             label="bench.streams"),
                repeats),
            "decisions": decisions_of(fanned),
        }
    return out


def run(streams: int, frames: int, image_size: int, batch_size: int,
        link_ms: float, repeats: int,
        worker_counts: List[int]) -> Dict:
    runtime = get_runtime()
    rng = runtime.rng.np_child("bench.perf.parallel")
    model = fuse_for_inference(build_early_exit(rng), dtype=np.float32)
    policy = ScoreThresholdPolicy(0.5)
    data = make_streams(runtime.rng.np_child("bench.perf.parallel.data"),
                        streams, frames, image_size)

    rows = []
    for mode, link_s in (("stream", link_ms / 1000.0), ("compute", 0.0)):
        serve = make_serve(model, policy, batch_size, link_s)
        sweep = run_sweep(serve, data, worker_counts, repeats)
        serial = sweep[0]
        for workers, result in sweep.items():
            variant = "serial" if workers == 0 else f"workers-{workers}"
            rows.append({
                "mode": mode,
                "variant": variant,
                "workers": workers,
                "seconds": result["seconds"],
                "frames_per_s": streams * frames / result["seconds"],
                "speedup_vs_serial": serial["seconds"] / result["seconds"],
                "decisions_match": result["decisions"] == serial["decisions"],
            })
            print(f"{mode:>8}  {variant:>10}  {result['seconds'] * 1000:8.1f} ms  "
                  f"{rows[-1]['frames_per_s']:8.1f} frames/s  "
                  f"{rows[-1]['speedup_vs_serial']:5.2f}x  "
                  f"match={rows[-1]['decisions_match']}")
    return {
        "workload": {
            "streams": streams, "frames_per_stream": frames,
            "image_size": image_size, "batch_size": batch_size,
            "link_ms": link_ms, "repeats": repeats,
        },
        "cpu_count": os.cpu_count(),
        "fork_available": fork_available(),
        "rows": rows,
    }


def gated_speedup(rows: List[Dict]) -> Optional[float]:
    for row in rows:
        if row["mode"] == GATED_MODE and row["workers"] == GATED_WORKERS:
            return row["speedup_vs_serial"]
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI configuration (seconds, not minutes)")
    parser.add_argument("--streams", type=int, default=None)
    parser.add_argument("--frames", type=int, default=None)
    parser.add_argument("--image-size", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--link-ms", type=float, default=None,
                        help="camera-link stall per micro-batch (stream mode)")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help=f"fail unless {GATED_WORKERS}-worker "
                             f"{GATED_MODE}-mode beats serial by this factor")
    parser.add_argument("--output", default=OUTPUT)
    args = parser.parse_args(argv)

    if not fork_available():
        print("SKIP: platform lacks fork; parallel engine runs serially",
              file=sys.stderr)
        return 0

    if args.quick:
        config = dict(streams=args.streams or 4,
                      frames=args.frames or 8,
                      image_size=args.image_size or 12,
                      batch_size=args.batch_size or 4,
                      link_ms=args.link_ms if args.link_ms is not None else 20.0,
                      repeats=args.repeats or 2)
    else:
        config = dict(streams=args.streams or 8,
                      frames=args.frames or 16,
                      image_size=args.image_size or 16,
                      batch_size=args.batch_size or 4,
                      link_ms=args.link_ms if args.link_ms is not None else 25.0,
                      repeats=args.repeats or 3)

    payload = run(worker_counts=[1, 2, 4], **config)
    ratio = gated_speedup(payload["rows"])
    payload["gated_speedup"] = ratio

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"\nwrote {args.output}")
    print(f"  {GATED_MODE}@{GATED_WORKERS} workers: {ratio:.2f}x serial "
          f"(cpu_count={payload['cpu_count']})")

    if any(not row["decisions_match"] for row in payload["rows"]):
        print("FAIL: parallel exit decisions diverged from serial",
              file=sys.stderr)
        return 1
    if args.min_speedup is not None and ratio < args.min_speedup:
        print(f"FAIL: speedup {ratio:.2f}x below {args.min_speedup}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
