"""Serving-gateway benchmark: BENCH_serving.json.

The serving plane under load, measured in two stages:

- **pipeline** — camera frames from the scene generator ride the
  bounded, shared-memory ``camera.frames`` topic and drain through the
  gateway into a deployed two-tier model
  (:func:`repro.serving.serve_camera_topic` — the
  ``attach_camera_feed -> gateway -> fog`` path).  The gated number:
  ``--min-rows-per-s`` applies to this end-to-end drain throughput.
- **sweep** — paced asyncio clients submit frame batches straight to a
  gateway at a ladder of offered loads (fractions and multiples of a
  measured saturation capacity).  Each rung reports achieved
  throughput, answer-latency p50/p99, and the shed rate — the
  throughput / latency / shedding curves an admission-controlled
  ingress is supposed to show: flat latency and zero sheds below
  capacity, bounded latency and honest sheds above it.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_serving          # full
    PYTHONPATH=src python -m benchmarks.perf.bench_serving --quick  # CI

``--min-rows-per-s R`` exits non-zero if the pipeline drain falls below
``R`` rows/second (the CI perf gate).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from benchmarks.perf.bench_inference import build_early_exit
from repro.data.video import SceneGenerator
from repro.fog.deployment import TwoTierDeployment
from repro.fog.policies import ScoreThresholdPolicy
from repro.runtime import get_runtime
from repro.serving import (
    GatewayConfig,
    ServingGateway,
    ShedError,
    serve_camera_topic,
)
from repro.streaming.broker import Broker

OUTPUT = "BENCH_serving.json"
TOPIC = "camera.frames"
IMAGE_SIZE = 16
ROWS_PER_REQUEST = 4
THRESHOLD = 0.55

#: offered load as multiples of the measured saturation capacity
SWEEP_MULTIPLIERS = (0.25, 0.5, 1.0, 2.0, 4.0)


def percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def build_deployment() -> TwoTierDeployment:
    runtime = get_runtime()
    rng = runtime.rng.np_child("bench.serving.model")
    deployment = TwoTierDeployment(
        lambda: build_early_exit(runtime.rng.np_child("bench.serving.fresh")),
        ["local_stage", "local_head"], ["remote_stage", "remote_head"],
        fuse_inference=True, inference_dtype=np.float32)
    deployment.deploy(build_early_exit(rng))
    return deployment


def camera_frames(cameras: int, frames_per_camera: int) -> Dict[str, np.ndarray]:
    generator = SceneGenerator(image_size=IMAGE_SIZE)
    return {f"cam-{index:02d}":
            generator.generate_batch(frames_per_camera)[0].astype(np.float32)
            for index in range(cameras)}


# -- stage 1: broker pipeline drain ---------------------------------------------
def run_pipeline(deployment, policy, cameras: int,
                 frames_per_camera: int) -> Dict:
    broker = Broker()
    broker.create_topic(TOPIC, partitions=4, share_ndarrays=True)
    feeds = camera_frames(cameras, frames_per_camera)
    for camera in sorted(feeds):
        broker.produce_batch(TOPIC, list(feeds[camera]),
                             key_fn=lambda frame, camera=camera: camera)
    total_rows = cameras * frames_per_camera

    start = time.perf_counter()
    served = serve_camera_topic(deployment, policy, broker, TOPIC,
                                poll_size=256)
    elapsed = time.perf_counter() - start
    broker.close()

    decided = sum(len(d.predictions) for results in served.values()
                  for d in results)
    assert decided == total_rows, f"decided {decided} != {total_rows}"
    row = {
        "cameras": cameras,
        "frames_per_camera": frames_per_camera,
        "rows": total_rows,
        "seconds": elapsed,
        "rows_per_s": total_rows / elapsed,
    }
    print(f"    pipeline  {total_rows:>7} rows  {elapsed:7.2f} s  "
          f"{row['rows_per_s']:9.0f} rows/s")
    return row


# -- stage 2: paced offered-load sweep ------------------------------------------
def measure_capacity(deployment, policy, probe_requests: int) -> float:
    """Saturation throughput: requests back to back, no pacing, no limits."""
    frames = camera_frames(1, ROWS_PER_REQUEST * probe_requests)["cam-00"]
    gateway = ServingGateway(deployment, policy,
                             GatewayConfig(coalesce_window_s=0.0,
                                           max_batch_rows=64,
                                           max_queue_rows=1 << 20))

    async def main():
        async with gateway.running():
            await asyncio.gather(
                *(gateway.submit(
                    frames[i * ROWS_PER_REQUEST:(i + 1) * ROWS_PER_REQUEST],
                    tenant="probe")
                  for i in range(probe_requests)))
    start = time.perf_counter()
    asyncio.run(main())
    elapsed = time.perf_counter() - start
    return (probe_requests * ROWS_PER_REQUEST) / elapsed


def run_load_point(deployment, policy, offered_rows_per_s: float,
                   duration_s: float) -> Dict:
    offered_rps = max(1.0, offered_rows_per_s / ROWS_PER_REQUEST)
    total_requests = max(1, int(offered_rps * duration_s))
    frames = camera_frames(1, ROWS_PER_REQUEST)["cam-00"]
    gateway = ServingGateway(deployment, policy,
                             GatewayConfig(coalesce_window_s=0.001,
                                           max_batch_rows=64,
                                           max_queue_rows=256))
    latencies: List[float] = []
    outcomes = {"answered": 0, "shed": 0, "failed": 0}

    async def one_request():
        begin = time.perf_counter()
        try:
            await gateway.submit(frames, tenant="bench")
        except ShedError:
            outcomes["shed"] += 1
        except Exception:
            outcomes["failed"] += 1
        else:
            outcomes["answered"] += 1
            latencies.append(time.perf_counter() - begin)

    async def main():
        async with gateway.running():
            start = time.perf_counter()
            tasks = []
            for index in range(total_requests):
                target = start + index / offered_rps
                delay = target - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(asyncio.ensure_future(one_request()))
            await asyncio.gather(*tasks)
            return time.perf_counter() - start
    elapsed = asyncio.run(main())

    answered_rows = outcomes["answered"] * ROWS_PER_REQUEST
    row = {
        "offered_rows_per_s": offered_rows_per_s,
        "requests": total_requests,
        "answered": outcomes["answered"],
        "shed": outcomes["shed"],
        "failed": outcomes["failed"],
        "shed_rate": outcomes["shed"] / total_requests,
        "achieved_rows_per_s": answered_rows / elapsed,
        "latency_p50_ms": (percentile(latencies, 0.50) * 1000.0
                           if latencies else None),
        "latency_p99_ms": (percentile(latencies, 0.99) * 1000.0
                           if latencies else None),
    }
    p50 = f"{row['latency_p50_ms']:7.2f}" if latencies else "      -"
    p99 = f"{row['latency_p99_ms']:7.2f}" if latencies else "      -"
    print(f"    offered {offered_rows_per_s:9.0f} rows/s  "
          f"achieved {row['achieved_rows_per_s']:9.0f}  "
          f"p50 {p50} ms  p99 {p99} ms  "
          f"shed {100.0 * row['shed_rate']:5.1f} %")
    return row


def run(cameras: int, frames_per_camera: int, probe_requests: int,
        duration_s: float) -> Dict:
    deployment = build_deployment()
    policy = ScoreThresholdPolicy(THRESHOLD)
    print("  pipeline: broker -> gateway -> two-tier deployment")
    pipeline = run_pipeline(deployment, policy, cameras, frames_per_camera)
    print("  sweep: paced offered load vs. measured capacity")
    capacity = measure_capacity(deployment, policy, probe_requests)
    print(f"    capacity {capacity:9.0f} rows/s (saturation probe)")
    sweep = [run_load_point(deployment, policy, capacity * multiplier,
                            duration_s)
             for multiplier in SWEEP_MULTIPLIERS]
    return {
        "workload": {
            "cameras": cameras,
            "frames_per_camera": frames_per_camera,
            "image_size": IMAGE_SIZE,
            "rows_per_request": ROWS_PER_REQUEST,
            "probe_requests": probe_requests,
            "duration_s": duration_s,
            "sweep_multipliers": list(SWEEP_MULTIPLIERS),
            "threshold": THRESHOLD,
        },
        "cpu_count": os.cpu_count(),
        "pipeline": pipeline,
        "capacity_rows_per_s": capacity,
        "sweep": sweep,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI configuration (seconds, not minutes)")
    parser.add_argument("--cameras", type=int, default=None)
    parser.add_argument("--frames-per-camera", type=int, default=None)
    parser.add_argument("--duration-s", type=float, default=None,
                        help="seconds per offered-load rung")
    parser.add_argument("--min-rows-per-s", type=float, default=None,
                        help="fail unless the pipeline drain sustains this "
                             "end-to-end throughput")
    parser.add_argument("--output", default=OUTPUT)
    args = parser.parse_args(argv)

    if args.quick:
        config = dict(cameras=args.cameras or 8,
                      frames_per_camera=args.frames_per_camera or 192,
                      probe_requests=64,
                      duration_s=args.duration_s or 1.0)
    else:
        config = dict(cameras=args.cameras or 16,
                      frames_per_camera=args.frames_per_camera or 1024,
                      probe_requests=256,
                      duration_s=args.duration_s or 3.0)

    payload = run(**config)
    rate = payload["pipeline"]["rows_per_s"]

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"\nwrote {args.output}")
    print(f"  pipeline: {rate:.0f} rows/s end-to-end "
          f"(cpu_count={payload['cpu_count']})")

    if args.min_rows_per_s is not None and rate < args.min_rows_per_s:
        print(f"FAIL: {rate:.0f} rows/s below {args.min_rows_per_s:.0f}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
