"""E8 — Fig. 8: the ResNet block with a convolutional shortcut.

The paper: "we use a convolutional layer for [the] shortcut path instead of
[the] max pooling layer mostly used in ResNet block architecture."  This
ablation trains the same small classifier with each shortcut variant and
reports parameters, FLOPs and accuracy — the conv shortcut buys accuracy
at a parameter/FLOP premium.
"""

import numpy as np

from benchmarks.helpers import print_table
from repro import nn
from repro.nn import functional as F
from repro.nn.models.resnet import SmallResNet
from repro.nn.tensor import Tensor


def make_task(n=80, seed=0):
    """Four-way classification of bright-quadrant images."""
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 0.3, (n, 1, 8, 8))
    y = np.arange(n) % 4
    for i in range(n):
        quadrant = y[i]
        r0 = 0 if quadrant < 2 else 4
        c0 = 0 if quadrant % 2 == 0 else 4
        x[i, 0, r0:r0 + 4, c0:c0 + 4] += 1.5
    return x, y


def train_variant(shortcut, x, y, epochs=40, seed=0):
    model = SmallResNet(1, num_classes=4, widths=(4, 8),
                        shortcut=shortcut,
                        rng=np.random.default_rng(seed))
    optimizer = nn.Adam(model.parameters(), lr=0.01)
    for _ in range(epochs):
        optimizer.zero_grad()
        loss = F.cross_entropy(model(Tensor(x)), y)
        loss.backward()
        optimizer.step()
    model.eval()
    x_test, y_test = make_task(n=40, seed=seed + 100)
    accuracy = F.accuracy(model(Tensor(x_test)), y_test)
    flops, _ = model.estimate_flops((1, 8, 8))
    return {
        "shortcut": shortcut,
        "parameters": model.num_parameters(),
        "mflops": flops / 1e6,
        "train_loss": loss.item(),
        "test_accuracy": accuracy,
    }


def test_fig8_shortcut_ablation(benchmark):
    x, y = make_task()

    def ablation():
        return [train_variant(kind, x, y)
                for kind in ("conv", "maxpool", "identity")]

    rows = benchmark.pedantic(ablation, rounds=1, iterations=1)
    print_table("Fig. 8 — ResNet shortcut ablation", rows,
                ["shortcut", "parameters", "mflops", "train_loss",
                 "test_accuracy"])

    by_kind = {row["shortcut"]: row for row in rows}
    # The paper's choice costs more parameters and FLOPs...
    assert by_kind["conv"]["parameters"] > by_kind["maxpool"]["parameters"]
    assert by_kind["conv"]["mflops"] > by_kind["maxpool"]["mflops"]
    # ...for comparable accuracy at this scale (the paper argues the conv
    # shortcut earns its cost on the much harder city-video task).
    assert (by_kind["conv"]["test_accuracy"]
            >= by_kind["maxpool"]["test_accuracy"] - 0.15)
    # Everything learns far above the 25% chance level.
    for row in rows:
        assert row["test_accuracy"] > 0.5
