"""E16 — Sec. II-C-1: distributed deep learning on the analysis servers.

The paper uses TensorFlow "because it provides model and data parallelism
and can be easily distributed among multiple nodes and multiple workers
per node".  This bench measures both regimes on the NumPy substrate:

- synchronous data parallelism must be numerically identical to
  single-worker large-batch SGD (the all-reduce invariant);
- asynchronous parameter-server training converges despite staleness,
  with the staleness ablation sweeping the pull period;
- two-tier deployment ships the trained weights to device + server with
  measured payloads.
"""

import numpy as np

from benchmarks.helpers import print_table
from repro import nn
from repro.nn import functional as F
from repro.nn.distributed import ParameterServerTrainer
from repro.fog import TwoTierDeployment
from repro.nn.models.yolo import EarlyExitDetector
from repro.nn.tensor import Tensor


def build_model():
    return nn.Sequential(
        nn.Linear(4, 16, rng=np.random.default_rng(42)), nn.ReLU(),
        nn.Linear(16, 2, rng=np.random.default_rng(43)))


def toy_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, (n, 4))
    y = (x[:, 0] - x[:, 1] + 0.5 * x[:, 2] > 0).astype(int)
    return x, y


def test_sec2c_sync_data_parallel_equivalence(benchmark):
    x, y = toy_data()

    def train_both():
        single = build_model()
        multi = build_model()
        t1 = nn.DataParallelTrainer(single, nn.SGD(single.parameters(),
                                                   lr=0.1),
                                    F.cross_entropy, num_workers=1)
        t4 = nn.DataParallelTrainer(multi, nn.SGD(multi.parameters(),
                                                  lr=0.1),
                                    F.cross_entropy, num_workers=4)
        for _ in range(20):
            t1.step(x, y)
            t4.step(x, y)
        deltas = [float(np.abs(a.data - b.data).max())
                  for a, b in zip(single.parameters(), multi.parameters())]
        return max(deltas)

    max_delta = benchmark.pedantic(train_both, rounds=1, iterations=1)
    print(f"\n  max |w_1worker - w_4workers| after 20 steps: {max_delta:.2e}")
    assert max_delta < 1e-8  # all-reduce == large-batch, exactly


def test_sec2c_parameter_server_staleness_ablation(benchmark):
    x, y = toy_data()

    def ablation():
        rows = []
        for pull_period in (1, 4, 16):
            trainer = ParameterServerTrainer(
                build_model, F.cross_entropy, num_workers=4,
                lr=0.15, pull_period=pull_period)
            trainer.run(x, y, steps=200, batch_size=32)
            rows.append({
                "pull_period": pull_period,
                "mean_staleness": trainer.server.mean_staleness,
                "accuracy": trainer.evaluate(x, y, F.accuracy),
            })
        return rows

    rows = benchmark.pedantic(ablation, rounds=1, iterations=1)
    print_table("Sec. II-C-1 — async parameter-server staleness ablation",
                rows, ["pull_period", "mean_staleness", "accuracy"])

    staleness = [r["mean_staleness"] for r in rows]
    assert staleness == sorted(staleness)  # longer pulls = staler
    # The textbook parameter-server shape: fresh gradients converge fully,
    # moderate staleness is tolerated, extreme staleness costs accuracy
    # but training still beats chance by a wide margin.
    assert rows[0]["accuracy"] > 0.9
    assert rows[1]["accuracy"] > 0.9
    assert rows[0]["accuracy"] >= rows[-1]["accuracy"]
    assert rows[-1]["accuracy"] > 0.75


def test_sec2c_two_tier_deployment_payloads(benchmark):
    rng = np.random.default_rng(0)
    trained = EarlyExitDetector(1, 16, num_classes=3, grid=4, rng=rng)
    for param in trained.parameters():
        param.data += rng.normal(0, 0.05, param.data.shape)

    def deploy():
        deployment = TwoTierDeployment(
            lambda: EarlyExitDetector(1, 16, num_classes=3, grid=4,
                                      rng=np.random.default_rng(9)),
            local_modules=["stem", "local_branch", "local_head"],
            remote_modules=["remote_branch", "remote_head"])
        deployment.deploy(trained)
        return deployment

    deployment = benchmark(deploy)
    rows = [
        {"tier": "edge/fog device",
         "payload_kb": deployment.payload_bytes["device"] / 1024.0},
        {"tier": "analysis server",
         "payload_kb": deployment.payload_bytes["server"] / 1024.0},
    ]
    print_table("Sec. II-C-1 — weight payload per deployment tier", rows,
                ["tier", "payload_kb"])

    # Verify the deployed halves reproduce the monolith on a real frame.
    trained.eval()
    deployment.device_model.eval()
    deployment.server_model.eval()
    x = Tensor(np.random.default_rng(1).normal(0, 1, (1, 1, 16, 16)))
    mono = trained.local_head(trained.local_branch(trained.stem(x))).data
    device = deployment.device_model
    deployed = device.local_head(device.local_branch(device.stem(x))).data
    np.testing.assert_allclose(deployed, mono, atol=1e-12)
    assert (deployment.payload_bytes["server"]
            > deployment.payload_bytes["device"])
