"""E9 — Sec. IV-B text: gang-network statistics and triangulation.

Regenerates the quantitative claims embedded in the text: 67 groups, 982
members, ~14 first-degree associates on average, a second-degree field of
the order of 200 ("prohibitively large"), and the multimodal narrowing
that shrinks it to a small persons-of-interest set.  Baseline: the
no-triangulation investigation that must review the whole field.
"""

import numpy as np

from benchmarks.helpers import print_table
from repro.apps.social import MultimodalTriangulation, SocialNetworkAnalysis
from repro.data import TweetGenerator


def test_sec4b_network_statistics(benchmark):
    analysis = SocialNetworkAnalysis.paper_scale(seed=0)

    def measure():
        return analysis.mean_field_sizes(sample=100, seed=1)

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    graph = analysis.graph
    groups = {attrs["group"] for attrs in graph.vertices.values()}
    rows = [
        {"statistic": "groups & gangs", "measured": len(groups),
         "paper": 67},
        {"statistic": "members", "measured": graph.num_vertices,
         "paper": 982},
        {"statistic": "mean 1st-degree", "measured": sizes["first_degree"],
         "paper": 14},
        {"statistic": "mean 2nd-degree field",
         "measured": sizes["second_degree"], "paper": "~200"},
    ]
    print_table("Sec. IV-B — gang network statistics", rows,
                ["statistic", "measured", "paper"])

    assert len(groups) == 67
    assert graph.num_vertices == 982
    assert abs(sizes["first_degree"] - 14.0) < 1.5
    assert 120 < sizes["second_degree"] < 320


def test_sec4b_triangulation_narrowing(benchmark):
    analysis = SocialNetworkAnalysis.paper_scale(seed=0)
    members = sorted(analysis.graph.vertices)
    anchor = members[0]
    tweeters = TweetGenerator(num_users=len(members), seed=2)
    tweeters.users = members
    incident_location, incident_time = (0.4, 0.6), 21.0
    tweets = tweeters.chatter(4000)
    field = sorted(analysis.associates(anchor, 2))
    present = field[:3]
    tweets += tweeters.incident_burst(present, incident_location,
                                      incident_time, geo_spread=0.01,
                                      time_spread=0.3)
    triangulation = MultimodalTriangulation(analysis)

    def investigate():
        return triangulation.investigate(
            anchor, incident_location, incident_time, tweets,
            geo_radius=0.08, time_window=2.0)

    report = benchmark.pedantic(investigate, rounds=1, iterations=1)
    rows = [{"stage": stage, "people": count}
            for stage, count in report.stages()]
    print_table("Sec. IV-B — triangulation narrowing", rows,
                ["stage", "people"])
    print(f"\n  baseline (no triangulation): review all "
          f"{report.field_size} field members")
    print(f"  with triangulation: review "
          f"{len(report.persons_of_interest)} persons of interest "
          f"({report.narrowing_factor:.0f}x narrowing)")

    # Shape: the field is prohibitively large; triangulation shrinks it by
    # a large factor while keeping the truly present associates.
    assert report.field_size > 100
    assert set(present) <= report.persons_of_interest
    assert report.narrowing_factor > 10
    counts = [count for _, count in report.stages()]
    assert counts == sorted(counts, reverse=True)
