"""E15 — Sec. III-B: LSTM temporal analysis of crime time series.

The paper: "LSTM's capability of discovering long-range correlations is
particularly useful for time series."  The bench trains the crime-count
forecaster on a weekly-seasonal series and compares next-day MAE against
the two naive baselines that cannot exploit the seasonality.
"""

from benchmarks.helpers import print_table
from repro.apps.forecast import CrimeForecaster
from repro.apps.forecast.crime import seasonal_series


def test_sec3b_lstm_forecasting_vs_baselines(benchmark):
    train = seasonal_series(120, seed=0)
    test = seasonal_series(60, seed=9)

    def train_and_compare():
        forecaster = CrimeForecaster(window=7, seed=0)
        forecaster.fit(train, epochs=120)
        return forecaster.compare(test)

    report = benchmark.pedantic(train_and_compare, rounds=1, iterations=1)
    rows = [
        {"method": "LSTM (7-day window)", "mae": report["lstm"]},
        {"method": "persistence (tomorrow=today)",
         "mae": report["persistence"]},
        {"method": "7-day moving average", "mae": report["moving_average"]},
    ]
    print_table("Sec. III-B — next-day crime-count forecasting", rows,
                ["method", "mae"])
    improvement = report["persistence"] / report["lstm"]
    print(f"\n  LSTM improves on persistence by {improvement:.1f}x")

    # Shape: the LSTM exploits the weekly correlation both baselines miss.
    assert report["lstm"] < report["persistence"]
    assert report["lstm"] < report["moving_average"]
    assert improvement > 1.5
