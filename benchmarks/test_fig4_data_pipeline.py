"""E4 — Fig. 4: collection -> management -> analysis -> visualization.

Regenerates the pipeline figure as per-stage throughput rows: raw feeds
through transactional Flume agents into the NoSQL stores, a Spark-style
aggregation over the stored records, and the chart payload handed to the
web layer.  Counts must be conserved across every stage.
"""

import time

from benchmarks.helpers import print_table
from repro.core import CyberInfrastructure, InfraConfig
from repro.data import OpenCityData, TweetGenerator, WazeGenerator


def test_fig4_pipeline_stage_throughput(benchmark):
    city = OpenCityData(seed=0)
    tweets = TweetGenerator(num_users=150, seed=0)
    waze = WazeGenerator(seed=0)
    crimes = city.crime_incidents(days=30)
    tweet_docs = [t.as_document() for t in tweets.chatter(800)]
    reports = waze.reports(400)

    def full_pass():
        infra = CyberInfrastructure(InfraConfig(
            edges_per_fog=2, fogs_per_server=2, servers=1,
            datanodes=3, dfs_replication=2))
        infra.register_source("crimes", lambda: list(crimes))
        infra.register_source("tweets", lambda: list(tweet_docs))
        infra.register_source("waze", lambda: list(reports))
        started = time.perf_counter()
        report = infra.run_collection_pipeline(analysis_field="district")
        elapsed = time.perf_counter() - started
        return infra, report, elapsed

    infra, report, elapsed = benchmark.pedantic(full_pass, rounds=3,
                                                iterations=1)
    total = report.total_ingested
    rows = [
        {"stage": "collection (Flume)", "records": total,
         "records_per_s": total / max(elapsed, 1e-9)},
        {"stage": "storage (documents)",
         "records": sum(report.records_stored.values()),
         "records_per_s": total / max(elapsed, 1e-9)},
        {"stage": "bus (topics)",
         "records": sum(infra.bus.topic_size(t)
                        for t in infra.bus.topic_names()),
         "records_per_s": total / max(elapsed, 1e-9)},
        {"stage": "analysis (Spark)", "records": report.analysis_rows,
         "records_per_s": report.analysis_rows / max(elapsed, 1e-9)},
        {"stage": "visualization", "records": report.viz_bytes,
         "records_per_s": 0.0},
    ]
    print_table("Fig. 4 — pipeline stages (one pass)", rows,
                ["stage", "records", "records_per_s"])

    # Conservation: everything collected is stored and re-published.
    expected = len(crimes) + len(tweet_docs) + len(reports)
    assert total == expected
    assert sum(report.records_stored.values()) == expected
    assert sum(infra.bus.topic_size(t)
               for t in infra.bus.topic_names()) == expected
    assert report.analysis_rows == 6  # six police districts
    assert report.viz_bytes > 0
