"""E5 — Fig. 5: the Tiny-YOLO / YOLOv2 early-exit vehicle pipeline.

Regenerates the figure's tradeoff: as the classification-score threshold
rises, fewer frames resolve on the local device, detection quality climbs
toward the full (server) model, and the feature-map bytes crossing the
network grow — while always staying far below shipping raw frames.
"""

import numpy as np

from benchmarks.helpers import print_table
from repro.nn.tensor import Tensor


def test_fig5_threshold_tradeoff(trained_vehicle_app, benchmark):
    app = trained_vehicle_app

    def sweep():
        return app.threshold_sweep([0.0, 0.2, 0.4, 0.6, 0.8, 1.01],
                                   num_scenes=24)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        row["kb_shipped"] = row.pop("bytes_shipped") / 1024.0
    print_table("Fig. 5 — score-threshold sweep", rows,
                ["threshold", "f1", "local_fraction", "kb_shipped"])

    raw_kb = 24 * app.model.raw_frame_bytes() / 1024.0
    feature_kb = rows[-1]["kb_shipped"]
    print(f"\n  all-server feature maps: {feature_kb:.1f} KB "
          f"vs raw frames: {raw_kb:.1f} KB at the 16x16 toy scale")
    # At the paper's camera resolution the feature map wins by a wide
    # margin: a 640x480x3 frame is 921.6 KB raw, while the same stem's
    # fp32 feature map (8 x 320 x 240 x 4 B at half resolution) would be
    # shipped only for unconfident frames — the effect benchmark E3
    # measures with paper-scale payload sizes.
    print("  (at DOTD scale: 921.6 KB/raw frame; see E3 for the network "
          "effect with paper-scale payloads)")

    # Shape: offload falls monotonically with the threshold; the server
    # model is at least as good as the tiny local model.
    fractions = [r["local_fraction"] for r in rows]
    assert fractions == sorted(fractions, reverse=True)
    assert fractions[0] == 1.0 and fractions[-1] == 0.0
    shipped = [r["kb_shipped"] for r in rows]
    assert shipped == sorted(shipped)
    assert rows[-1]["f1"] >= rows[0]["f1"] - 0.05


def test_fig5_early_exit_inference_speed(trained_vehicle_app, benchmark):
    app = trained_vehicle_app
    frames, _ = app.build_detection_dataset(16)

    def infer():
        return app.model.infer(Tensor(frames), threshold=0.5)

    results = benchmark(infer)
    local = sum(1 for r in results if r["exit_index"] == 1)
    print(f"\n  16-frame batch: {local} local exits, "
          f"{16 - local} server escalations")
    assert len(results) == 16
