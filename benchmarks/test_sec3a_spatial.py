"""E14 — Sec. III-A: CNNs over geospatial "images".

The paper argues geospatial data (criminal activity locations, traffic)
"can be viewed as geospatial 'images' and analyzed using CNNs".  The bench
trains the hotspot CNN on noisy daily crime-density grids and compares it
against the non-spatial per-quadrant-count baseline — the CNN's local
pattern detection must win in the high-noise regime.
"""

from benchmarks.helpers import print_table
from repro.apps.geospatial import HotspotCnnApp
from repro.compute import GridAggregator, ripley_intensity
from repro.data.city import OpenCityData


def test_sec3a_hotspot_cnn_vs_count_baseline(benchmark):
    app = HotspotCnnApp(grid=8, seed=0)

    def train_and_eval():
        app.train(days_per_quadrant=25, epochs=40)
        return {
            "cnn": app.evaluate(days_per_quadrant=15),
            "count_baseline": app.quadrant_count_baseline(
                train_days=25, test_days=15),
        }

    results = benchmark.pedantic(train_and_eval, rounds=1, iterations=1)
    rows = [
        {"method": "CNN on density grid", "accuracy": results["cnn"]},
        {"method": "quadrant-count baseline",
         "accuracy": results["count_baseline"]},
        {"method": "chance", "accuracy": 0.25},
    ]
    print_table("Sec. III-A — hot-quadrant prediction (noisy regime)",
                rows, ["method", "accuracy"])

    assert results["cnn"] > results["count_baseline"]
    assert results["cnn"] > 0.6


def test_sec3a_crime_hotspots_from_open_data(benchmark):
    city = OpenCityData(seed=0)
    records = city.crime_incidents(days=60)
    points = [r["location"] for r in records]
    aggregator = GridAggregator(rows=6, cols=6)

    def analyze():
        return aggregator.hotspots(points, top=3)

    hotspots = benchmark(analyze)
    rows = [{"rank": i + 1, "center": str(h["center"]),
             "incidents": h["count"]} for i, h in enumerate(hotspots)]
    print_table("Sec. III-A — crime hotspots (60 days of open data)",
                rows, ["rank", "center", "incidents"])
    clustering = ripley_intensity(points, radius=0.1)
    print(f"\n  spatial clustering (mean neighbours within 0.1): "
          f"{clustering:.1f}")

    # The hottest cell must sit near district 4's center (rate 2.4).
    top = hotspots[0]["center"]
    assert abs(top[0] - 0.3) < 0.25 and abs(top[1] - 0.3) < 0.25
    assert clustering > 0
