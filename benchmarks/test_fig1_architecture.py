"""E1 — Fig. 1: the four-layer architecture exercised end-to-end.

Regenerates the figure's content as behaviour: every layer participates in
one collection pass (data sources -> hardware topology -> software
substrates -> an application-style aggregation), and the bench reports
per-layer inventory plus end-to-end ingest throughput.
"""

import pytest

from benchmarks.helpers import print_table
from repro.core import CyberInfrastructure, InfraConfig
from repro.data import OpenCityData, TweetGenerator, WazeGenerator


def build_infra():
    infra = CyberInfrastructure(InfraConfig(
        edges_per_fog=4, fogs_per_server=2, servers=2,
        datanodes=4, dfs_replication=2))
    city = OpenCityData(seed=0)
    tweets = TweetGenerator(num_users=100, seed=0)
    waze = WazeGenerator(seed=0)
    crimes = city.crime_incidents(days=20)
    calls = city.emergency_calls(days=20)
    tweet_docs = [t.as_document() for t in tweets.chatter(500)]
    reports = waze.reports(200)
    infra.register_source("crimes", lambda: list(crimes))
    infra.register_source("emergency_calls", lambda: list(calls))
    infra.register_source("tweets", lambda: list(tweet_docs))
    infra.register_source("waze", lambda: list(reports))
    return infra


def test_fig1_four_layer_stack(benchmark):
    infra = build_infra()
    report = benchmark.pedantic(
        infra.run_collection_pipeline, rounds=3, iterations=1)

    layers = infra.describe_layers()
    rows = [{"layer": name, "contents": str(contents)[:70]}
            for name, contents in layers.items()]
    print_table("Fig. 1 — layer inventory", rows, ["layer", "contents"])

    source_rows = [{
        "source": name,
        "ingested": report.records_ingested[name],
        "stored": report.records_stored[name],
    } for name in sorted(report.records_ingested)]
    print_table("Fig. 1 — per-source collection pass", source_rows,
                ["source", "ingested", "stored"])
    print(f"  total records/pass: {report.total_ingested}")

    # Shape assertions: every layer did its job.
    assert layers["hardware"]["edge_devices"] == 16
    assert layers["hardware"]["analysis_servers"] == 2
    assert report.total_ingested > 500
    assert report.records_ingested == report.records_stored
    assert report.analysis_rows > 0
    assert report.viz_bytes > 0
