"""E3 — Fig. 3: the four-tier fog pipeline (edge/fog/server/cloud).

Regenerates the figure's behavioural claim: splitting computation across
tiers with early exits keeps latency low and sharply reduces what crosses
into the server tier, compared with shipping every raw frame to the
analysis server.  Also runs the placement ablation DESIGN.md calls out
(bottom-up split vs all-on-server).
"""

import pytest

from benchmarks.helpers import print_table
from repro.cluster import NetworkTopology, Tier
from repro.fog import FogPipeline, model_split_from_early_exit, place_all_on, place_bottom_up
from repro.fog.split import bottleneck_latency


def build_pipelines():
    topology = NetworkTopology.build_fog_hierarchy(
        edges_per_fog=2, fogs_per_server=2, servers=1)
    edge = topology.machines(Tier.EDGE)[0].name
    stages = model_split_from_early_exit(
        local_flops=2e8, remote_flops=8e9,
        feature_bytes=8_192, input_bytes=640 * 480 * 3,
        local_exit_flops=5e6)
    fog = FogPipeline(place_bottom_up(topology, stages, edge))
    allserver = FogPipeline(place_all_on(topology, stages, "server-0",
                                         ingest_from=edge))
    return fog, allserver


def server_ingress(stats):
    return sum(size for hop, size in stats.bytes_per_hop.items()
               if "server" in hop.split("->")[1])


def test_fig3_exit_fraction_sweep(benchmark):
    fog, allserver = build_pipelines()

    def sweep():
        rows = []
        for exit_probability in (0.0, 0.25, 0.5, 0.75, 0.95):
            stats = fog.simulate_stream(
                num_items=120, arrival_interval_s=0.05,
                exit_probabilities={1: exit_probability}, seed=1)
            rows.append({
                "p_exit_local": exit_probability,
                "mean_ms": 1000 * stats.mean_latency_s,
                "p95_ms": 1000 * stats.p95_latency_s,
                "resolved_fog": stats.resolved_fraction(1),
                "server_in_MB": server_ingress(stats) / 1e6,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Fig. 3 — early-exit sweep on the 4-tier pipeline", rows,
                ["p_exit_local", "mean_ms", "p95_ms", "resolved_fog",
                 "server_in_MB"])

    baseline = allserver.simulate_stream(
        num_items=120, arrival_interval_s=0.05,
        exit_probabilities={1: 0.0}, seed=1)
    print(f"\n  all-on-server baseline: "
          f"mean {1000 * baseline.mean_latency_s:.2f} ms, "
          f"server ingress {server_ingress(baseline) / 1e6:.2f} MB")

    # Shape: more local exits -> lower latency and less server traffic.
    latencies = [r["mean_ms"] for r in rows]
    assert latencies == sorted(latencies, reverse=True)
    ingress = [r["server_in_MB"] for r in rows]
    assert ingress == sorted(ingress, reverse=True)
    # Even with no exits, shipping feature maps beats shipping raw frames.
    assert rows[0]["server_in_MB"] < server_ingress(baseline) / 1e6


def test_fig3_placement_ablation(benchmark):
    fog, allserver = build_pipelines()

    def measure():
        return {
            "fog_bottleneck_ms": 1000 * bottleneck_latency(fog.placement),
            "server_bottleneck_ms":
                1000 * bottleneck_latency(allserver.placement),
        }

    result = benchmark.pedantic(measure, rounds=3, iterations=1)
    rows = [
        {"placement": "bottom-up (Fig. 3)",
         "bottleneck_ms": result["fog_bottleneck_ms"]},
        {"placement": "all-on-server",
         "bottleneck_ms": result["server_bottleneck_ms"]},
    ]
    print_table("Fig. 3 ablation — placement bottleneck latency", rows,
                ["placement", "bottleneck_ms"])
    # The all-server baseline's bottleneck includes the raw-frame edge
    # uplink, which dominates: the Fig. 3 placement wins.
    assert result["fog_bottleneck_ms"] < result["server_bottleneck_ms"]


def test_fig3_fog_node_failure_degradation(benchmark):
    """When a fog node dies, its stage migrates one tier up (the paper's
    supervisory hierarchy); the pipeline keeps running, slower."""
    fog, _ = build_pipelines()
    fog_machine = fog.placement.machines[1]

    def degrade_and_measure():
        degraded_placement = fog.placement.with_failures([fog_machine])
        degraded = FogPipeline(degraded_placement)
        healthy_stats = fog.simulate_stream(
            num_items=60, arrival_interval_s=0.05,
            exit_probabilities={1: 0.5}, seed=7)
        degraded_stats = degraded.simulate_stream(
            num_items=60, arrival_interval_s=0.05,
            exit_probabilities={1: 0.5}, seed=7)
        return healthy_stats, degraded_stats, degraded_placement

    healthy, degraded, placement = benchmark.pedantic(
        degrade_and_measure, rounds=1, iterations=1)
    rows = [
        {"condition": "healthy",
         "mean_ms": 1000 * healthy.mean_latency_s,
         "server_in_MB": server_ingress(healthy) / 1e6,
         "server_busy_s": healthy.machine_busy_s.get("server-0", 0.0)},
        {"condition": f"{fog_machine} failed",
         "mean_ms": 1000 * degraded.mean_latency_s,
         "server_in_MB": server_ingress(degraded) / 1e6,
         "server_busy_s": degraded.machine_busy_s.get("server-0", 0.0)},
    ]
    print_table("Fig. 3 — fog-node failure degradation", rows,
                ["condition", "mean_ms", "server_in_MB", "server_busy_s"])
    print(f"\n  degraded placement: {placement.machines}")

    # The pipeline survives (items complete), but the point of the fog
    # tier is gone: raw frames now flood the regional link into the
    # server, and the server absorbs the local stage's compute.  Latency
    # stays comparable only because the server is much faster — the
    # regression is in shared-resource consumption, not in this one
    # stream's latency.
    assert degraded.completed == healthy.completed == 60
    assert fog_machine not in placement.machines
    assert server_ingress(degraded) > 10 * server_ingress(healthy)
    assert (degraded.machine_busy_s.get("server-0", 0.0)
            > healthy.machine_busy_s.get("server-0", 0.0))


def test_fig3_cameras_per_server_scaling(benchmark):
    """How many concurrent camera streams one analysis server sustains —
    the sizing question behind the Fig. 3 hierarchy, measured with shared
    machine queues (every camera contends for the same server)."""
    from repro.fog import simulate_shared_streams

    topology = NetworkTopology.build_fog_hierarchy(
        edges_per_fog=8, fogs_per_server=1, servers=1)
    edges = [m.name for m in topology.machines(Tier.EDGE)]
    stages = model_split_from_early_exit(
        local_flops=2e8, remote_flops=8e9,
        feature_bytes=8_192, input_bytes=640 * 480 * 3,
        local_exit_flops=5e6)

    def sweep():
        rows = []
        for cameras in (1, 2, 4, 8):
            streams = [{
                "pipeline": FogPipeline(
                    place_bottom_up(topology, stages, edges[i])),
                "num_items": 30,
                "arrival_interval_s": 0.1,
                "exit_probabilities": {1: 0.5},
            } for i in range(cameras)]
            stats = simulate_shared_streams(streams, seed=4)
            mean = sum(s.mean_latency_s for s in stats) / len(stats)
            p95 = max(s.p95_latency_s for s in stats)
            rows.append({
                "cameras": cameras,
                "mean_ms": 1000 * mean,
                "worst_p95_ms": 1000 * p95,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Fig. 3 — concurrent cameras per analysis server", rows,
                ["cameras", "mean_ms", "worst_p95_ms"])

    # Shape: latency grows with contention; completions never drop.
    means = [r["mean_ms"] for r in rows]
    assert means == sorted(means)
    assert means[-1] > means[0]


def test_fig3_unified_registry_dump(benchmark, tmp_path):
    """One fog-pipeline run leaves a single observability dump carrying
    metrics from every layer it touched — streaming ingestion, the
    Spark-style batch layer, the DES cluster clock, the fog pipeline and
    the nn training loop — exported through ``repro.viz``."""
    import json

    import numpy as np

    from repro import nn
    from repro.compute import SparkContext
    from repro.nn.tensor import Tensor
    from repro.runtime import Runtime, using_runtime
    from repro.streaming import (
        FlumeAgent,
        FunctionSource,
        MessageBus,
        topic_sink,
    )
    from repro.viz import registry_to_json

    def run_experiment():
        with using_runtime(Runtime(seed=0)) as runtime:
            # ingestion: frames flow flume -> bus -> consumer
            bus = MessageBus()
            bus.create_topic("frames", partitions=2)
            FlumeAgent(FunctionSource(range(32)),
                       topic_sink(bus, "frames"), batch_size=8).run()
            frames = [r.value for r in
                      bus.consumer("fog", ["frames"]).drain()]

            # batch layer: summarize the consumed frames
            context = SparkContext(default_parallelism=2)
            context.parallelize([(f % 4, f) for f in frames]) \
                .reduceByKey(lambda a, b: a + b).collect()

            # fog + cluster: the Fig. 3 stream under the DES clock
            fog, _ = build_pipelines()
            fog.simulate_stream(num_items=len(frames),
                                arrival_interval_s=0.05,
                                exit_probabilities={1: 0.5}, seed=1)

            # nn: one optimizer step of the training loop
            param = Tensor(np.ones(8))
            optimizer = nn.SGD([param], lr=0.1)
            param.grad = np.ones(8)
            optimizer.step()

            path = tmp_path / "fig3_registry.json"
            registry_to_json(runtime, path=str(path))
            return path

    path = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    payload = json.loads(path.read_text())
    names = set()
    for kind in ("counters", "gauges", "histograms"):
        names.update(payload["metrics"][kind])
    layers = {name.split(".")[0] for name in names}
    assert {"streaming", "compute", "cluster", "fog", "nn"} <= layers

    print_table(
        "Fig. 3 — unified registry dump (metric families per layer)",
        [{"layer": layer,
          "metrics": sum(1 for n in sorted(names)
                         if n.split(".")[0] == layer)}
         for layer in sorted(layers)],
        ["layer", "metrics"],
        json_path=str(path.parent / "fig3_registry_layers.json"))
