"""E7 — Fig. 7: ResNet+LSTM action recognition with the entropy gate.

Regenerates the figure's control flow as a measured tradeoff: sweeping the
entropy threshold moves clips between the device exit (ResNet block 1 +
LSTM1 + FC1) and the server exit (block 2 + LSTM2 + FC2), trading accuracy
against the block-1 feature-map traffic shipped upstream.
"""

import numpy as np

from benchmarks.helpers import print_table
from repro.nn.tensor import Tensor


def test_fig7_entropy_threshold_sweep(trained_action_app, benchmark):
    app = trained_action_app

    def sweep():
        return app.entropy_sweep([0.0, 0.3, 0.6, 1.0, 1.61],
                                 clips_per_class=6)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        row["kb_shipped"] = row.pop("bytes_shipped") / 1024.0
    print_table("Fig. 7 — entropy-threshold sweep", rows,
                ["max_entropy", "accuracy", "local_fraction", "kb_shipped"])

    accuracies = app.exit_accuracies(clips_per_class=6)
    print(f"\n  exit 1 (device) accuracy: {accuracies['local']:.3f}")
    print(f"  exit 2 (server) accuracy: {accuracies['remote']:.3f}")

    # Shape: a zero budget sends everything to the server (max traffic);
    # a huge budget keeps everything local (zero traffic); both exits are
    # well above the 20% chance level.
    assert rows[0]["local_fraction"] == 0.0
    assert rows[-1]["local_fraction"] == 1.0
    fractions = [r["local_fraction"] for r in rows]
    assert fractions == sorted(fractions)
    assert rows[0]["kb_shipped"] > rows[-1]["kb_shipped"] == 0.0
    assert accuracies["local"] > 0.4
    assert accuracies["remote"] > 0.4


def test_fig7_feature_map_vs_raw_traffic(trained_action_app, benchmark):
    app = trained_action_app
    clips, _ = app.clips.dataset(clips_per_class=4)

    def infer():
        return app.model.infer(Tensor(clips), max_entropy=0.5)

    results = benchmark(infer)
    escalated = [r for r in results if r["exit_index"] == 2]
    feature_bytes = sum(r["shipped_bytes"] for r in results)
    raw_bytes = len(escalated) * app.model.raw_clip_bytes(
        frames=clips.shape[1])
    print(f"\n  escalated clips: {len(escalated)}/{len(results)}")
    print(f"  block-1 feature maps shipped: {feature_bytes / 1024:.1f} KB")
    print(f"  raw clips at this toy scale:  {raw_bytes / 1024:.1f} KB")
    print("  (fp32 feature maps only beat raw pixels at camera "
          "resolution; the gating effect — zero bytes for confident "
          "clips — is scale-independent)")
    assert len(results) == len(clips)
