"""Table-printing helper shared by the per-figure benchmarks."""


def print_table(title, rows, columns):
    """Print paper-style rows under a header."""
    print(f"\n=== {title} ===")
    header = "  ".join(f"{c:>16}" for c in columns)
    print(header)
    for row in rows:
        cells = []
        for column in columns:
            value = row[column]
            if isinstance(value, float):
                cells.append(f"{value:>16.4f}")
            else:
                cells.append(f"{str(value):>16}")
        print("  ".join(cells))
