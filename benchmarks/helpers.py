"""Table-printing helper shared by the per-figure benchmarks."""

import json


def print_table(title, rows, columns, json_path=None):
    """Print paper-style rows under a header.

    With ``json_path``, the same table is also written as
    ``{"title", "columns", "rows"}`` JSON so dashboards can ingest the
    benchmark output without scraping stdout.
    """
    print(f"\n=== {title} ===")
    header = "  ".join(f"{c:>16}" for c in columns)
    print(header)
    for row in rows:
        cells = []
        for column in columns:
            value = row[column]
            if isinstance(value, float):
                cells.append(f"{value:>16.4f}")
            else:
                cells.append(f"{str(value):>16}")
        print("  ".join(cells))
    if json_path is not None:
        payload = {
            "title": title,
            "columns": list(columns),
            "rows": [{column: row[column] for column in columns}
                     for row in rows],
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
