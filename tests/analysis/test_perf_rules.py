"""Fixture-snippet tests for the performance rule pack (PERF4xx)."""

import textwrap

from repro.analysis import analyze_source

LIB = "src/repro/fog/example.py"


def check(source, path=LIB):
    return analyze_source(textwrap.dedent(source), path=path)


def rule_ids(findings):
    return [f.rule for f in findings]


class TestHardcodedFloat64:
    def test_asarray_dtype_keyword_flagged(self):
        findings = check("""
            import numpy as np

            def load(x):
                return np.asarray(x, dtype=np.float64)
        """)
        assert rule_ids(findings) == ["PERF401"]

    def test_asarray_dtype_positional_flagged(self):
        findings = check("""
            import numpy as np

            def load(x):
                return np.array(x, np.float64)
        """)
        assert rule_ids(findings) == ["PERF401"]

    def test_astype_flagged(self):
        findings = check("""
            import numpy as np

            def upcast(x):
                return x.astype(np.float64)
        """)
        assert rule_ids(findings) == ["PERF401"]

    def test_astype_string_dtype_flagged(self):
        findings = check("""
            def upcast(x):
                return x.astype("float64")
        """)
        assert rule_ids(findings) == ["PERF401"]

    def test_zeros_dtype_flagged(self):
        findings = check("""
            import numpy as np

            def buffer(n):
                return np.zeros(n, dtype=np.float64)
        """)
        assert rule_ids(findings) == ["PERF401"]

    def test_ensure_float_clean(self):
        findings = check("""
            from repro.nn.dtypes import ensure_float

            def load(x):
                return ensure_float(x)
        """)
        assert findings == []

    def test_input_dtype_clean(self):
        findings = check("""
            import numpy as np

            def match(x, like):
                return np.asarray(x, dtype=like.dtype)
        """)
        assert findings == []

    def test_float32_clean(self):
        findings = check("""
            import numpy as np

            def downcast(x):
                return x.astype(np.float32)
        """)
        assert findings == []

    def test_tensor_core_exempt(self):
        findings = check("""
            import numpy as np

            def canonical(x):
                return np.asarray(x, dtype=np.float64)
        """, path="src/repro/nn/tensor.py")
        assert findings == []

    def test_optimizer_exempt(self):
        findings = check("""
            import numpy as np

            def moments(x):
                return x.astype(np.float64)
        """, path="src/repro/nn/optim.py")
        assert findings == []

    def test_test_code_exempt(self):
        findings = check("""
            import numpy as np

            def fixture(x):
                return np.asarray(x, dtype=np.float64)
        """, path="tests/fog/test_example.py")
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check("""
            import numpy as np

            def load(x):
                return np.asarray(x, dtype=np.float64)  # repro: noqa[PERF401]
        """)
        assert findings == []
