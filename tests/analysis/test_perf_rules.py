"""Fixture-snippet tests for the performance rule pack (PERF4xx)."""

import textwrap

from repro.analysis import analyze_source

LIB = "src/repro/fog/example.py"


def check(source, path=LIB):
    return analyze_source(textwrap.dedent(source), path=path)


def rule_ids(findings):
    return [f.rule for f in findings]


class TestHardcodedFloat64:
    def test_asarray_dtype_keyword_flagged(self):
        findings = check("""
            import numpy as np

            def load(x):
                return np.asarray(x, dtype=np.float64)
        """)
        assert rule_ids(findings) == ["PERF401"]

    def test_asarray_dtype_positional_flagged(self):
        findings = check("""
            import numpy as np

            def load(x):
                return np.array(x, np.float64)
        """)
        assert rule_ids(findings) == ["PERF401"]

    def test_astype_flagged(self):
        findings = check("""
            import numpy as np

            def upcast(x):
                return x.astype(np.float64)
        """)
        assert rule_ids(findings) == ["PERF401"]

    def test_astype_string_dtype_flagged(self):
        findings = check("""
            def upcast(x):
                return x.astype("float64")
        """)
        assert rule_ids(findings) == ["PERF401"]

    def test_zeros_dtype_flagged(self):
        findings = check("""
            import numpy as np

            def buffer(n):
                return np.zeros(n, dtype=np.float64)
        """)
        assert rule_ids(findings) == ["PERF401"]

    def test_ensure_float_clean(self):
        findings = check("""
            from repro.nn.dtypes import ensure_float

            def load(x):
                return ensure_float(x)
        """)
        assert findings == []

    def test_input_dtype_clean(self):
        findings = check("""
            import numpy as np

            def match(x, like):
                return np.asarray(x, dtype=like.dtype)
        """)
        assert findings == []

    def test_float32_clean(self):
        findings = check("""
            import numpy as np

            def downcast(x):
                return x.astype(np.float32)
        """)
        assert findings == []

    def test_tensor_core_exempt(self):
        findings = check("""
            import numpy as np

            def canonical(x):
                return np.asarray(x, dtype=np.float64)
        """, path="src/repro/nn/tensor.py")
        assert findings == []

    def test_optimizer_exempt(self):
        findings = check("""
            import numpy as np

            def moments(x):
                return x.astype(np.float64)
        """, path="src/repro/nn/optim.py")
        assert findings == []

    def test_test_code_exempt(self):
        findings = check("""
            import numpy as np

            def fixture(x):
                return np.asarray(x, dtype=np.float64)
        """, path="tests/fog/test_example.py")
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check("""
            import numpy as np

            def load(x):
                return np.asarray(x, dtype=np.float64)  # repro: noqa[PERF401]
        """)
        assert findings == []


class TestDirectPoolConstruction:
    def test_multiprocessing_pool_flagged(self):
        findings = check("""
            import multiprocessing

            def fan_out(fn, items):
                with multiprocessing.Pool(4) as pool:
                    return pool.map(fn, items)
        """)
        assert rule_ids(findings) == ["PERF402"]

    def test_get_context_flagged(self):
        findings = check("""
            import multiprocessing as mp

            def make_pool():
                return mp.get_context("fork").Pool(2)
        """)
        assert rule_ids(findings) == ["PERF402"]

    def test_process_pool_executor_flagged(self):
        findings = check("""
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(fn, items):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(fn, items))
        """)
        assert rule_ids(findings) == ["PERF402"]

    def test_thread_pool_executor_flagged(self):
        findings = check("""
            import concurrent.futures

            def fan_out(fn, items):
                pool = concurrent.futures.ThreadPoolExecutor(4)
                return list(pool.map(fn, items))
        """)
        assert rule_ids(findings) == ["PERF402"]

    def test_process_flagged(self):
        findings = check("""
            import multiprocessing

            def spawn(fn):
                multiprocessing.Process(target=fn).start()
        """)
        assert rule_ids(findings) == ["PERF402"]

    def test_parallel_engine_exempt(self):
        findings = check("""
            import multiprocessing

            def make_pool(n):
                return multiprocessing.get_context("fork").Pool(n)
        """, path="src/repro/runtime/parallel.py")
        assert findings == []

    def test_executor_use_clean(self):
        findings = check("""
            from repro.runtime import ParallelExecutor

            def fan_out(fn, items):
                return ParallelExecutor(workers=4).map_ordered(fn, items)
        """)
        assert findings == []

    def test_shared_memory_clean(self):
        findings = check("""
            from multiprocessing import shared_memory

            def attach(name):
                return shared_memory.SharedMemory(name=name)
        """)
        assert findings == []

    def test_test_code_exempt(self):
        findings = check("""
            import multiprocessing

            def helper(fn, items):
                with multiprocessing.Pool(2) as pool:
                    return pool.map(fn, items)
        """, path="tests/runtime/test_example.py")
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check("""
            import multiprocessing

            def fan_out(fn, items):
                pool = multiprocessing.Pool(2)  # repro: noqa[PERF402]
                return pool.map(fn, items)
        """)
        assert findings == []


class TestPlanHotPathAllocation:
    def test_empty_in_op_run_flagged(self):
        findings = check("""
            import numpy as np

            class GemmOp:
                def run(self):
                    scratch = np.empty((4, 4), dtype=np.float32)
                    np.matmul(self._a, self._b, out=scratch)
        """)
        assert rule_ids(findings) == ["PERF403"]

    def test_zeros_like_in_plan_execute_flagged(self):
        findings = check("""
            import numpy as np

            class InferencePlan:
                def execute(self, x):
                    out = np.zeros_like(x)
                    return out
        """)
        assert rule_ids(findings) == ["PERF403"]

    def test_closure_inside_run_flagged(self):
        findings = check("""
            import numpy as np

            class ReluOp:
                def run(self):
                    def kernel():
                        return np.zeros(8, dtype=np.float32)
                    return kernel()
        """)
        assert rule_ids(findings) == ["PERF403"]

    def test_bind_time_allocation_clean(self):
        findings = check("""
            import numpy as np

            class GemmOp:
                def bind(self, arena):
                    self._scratch = np.empty((4, 4), dtype=np.float32)

                def run(self):
                    np.matmul(self._a, self._b, out=self._scratch)
        """)
        assert findings == []

    def test_non_plan_class_clean(self):
        findings = check("""
            import numpy as np

            class FrameDecoder:
                def run(self):
                    return np.zeros((2, 2), dtype=np.float32)
        """)
        assert findings == []

    def test_out_parameter_kernels_clean(self):
        findings = check("""
            import numpy as np

            class BiasOp:
                def run(self):
                    np.add(self._gemm, self._bias, out=self._out)
        """)
        assert findings == []

    def test_test_code_exempt(self):
        findings = check("""
            import numpy as np

            class FakeOp:
                def run(self):
                    return np.empty(3, dtype=np.float32)
        """, path="tests/nn/test_example.py")
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check("""
            import numpy as np

            class ProbeOp:
                def run(self):
                    probe = np.empty(3, dtype=np.float32)  # repro: noqa[PERF403]
                    return probe
        """)
        assert findings == []


class TestLabeledMetricInRecordLoop:
    def test_labeled_inc_in_record_loop_flagged(self):
        findings = check("""
            def pump(records, counter):
                for record in records:
                    counter.inc(1, topic="events")
        """, path="src/repro/streaming/example.py")
        assert rule_ids(findings) == ["PERF404"]

    def test_labeled_observe_in_frame_loop_flagged(self):
        findings = check("""
            def drain(frames, latency, now):
                for frame in frames:
                    latency.observe(now - frame, group="fog")
        """, path="src/repro/serving/example.py")
        assert rule_ids(findings) == ["PERF404"]

    def test_async_for_over_messages_flagged(self):
        findings = check("""
            async def relay(messages, gauge):
                async for msg in messages:
                    gauge.set(len(msg), stage="relay")
        """, path="src/repro/fog/example.py")
        assert rule_ids(findings) == ["PERF404"]

    def test_bound_handle_in_loop_clean(self):
        findings = check("""
            def pump(records, counter):
                produced = counter.bind(topic="events")
                for record in records:
                    produced.inc()
        """, path="src/repro/streaming/example.py")
        assert findings == []

    def test_per_iteration_label_clean(self):
        findings = check("""
            def settle(batch, counter):
                for pending in batch:
                    counter.inc(tenant=pending.tenant)
        """, path="src/repro/serving/example.py")
        assert findings == []

    def test_non_record_loop_clean(self):
        findings = check("""
            def sweep(counter, n):
                for index in range(n):
                    counter.inc(1, topic="events")
        """, path="src/repro/streaming/example.py")
        assert findings == []

    def test_outside_data_plane_clean(self):
        findings = check("""
            def train(records, counter):
                for record in records:
                    counter.inc(1, epoch="warmup")
        """, path="src/repro/nn/example.py")
        assert findings == []

    def test_nested_function_boundary_clean(self):
        findings = check("""
            def pump(records, counter):
                for record in records:
                    def flush():
                        counter.inc(1, topic="events")
                    flush()
        """, path="src/repro/streaming/example.py")
        assert rule_ids(findings) == []

    def test_test_code_exempt(self):
        findings = check("""
            def pump(records, counter):
                for record in records:
                    counter.inc(1, topic="events")
        """, path="tests/streaming/test_example.py")
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check("""
            def pump(records, counter):
                for record in records:
                    counter.inc(1, topic="events")  # repro: noqa[PERF404]
        """, path="src/repro/streaming/example.py")
        assert findings == []
