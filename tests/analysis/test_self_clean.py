"""Self-check: the shipped source tree satisfies its own lint rules.

This is the acceptance gate from the linter's point of view — if a
change reintroduces a bare ``random`` call, a ``np.random.default_rng``
fallback, or a malformed metric name anywhere under ``src/``, this test
fails before CI's dedicated lint job even runs.
"""

import json
from pathlib import Path

from repro.analysis import Baseline, analyze_paths
from repro.analysis.baseline import DEFAULT_BASELINE_NAME

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

DETERMINISM_RULES = ["DET101", "DET102", "DET103", "DET104", "DET105"]


def test_src_clean_for_determinism_rules():
    findings, _ = analyze_paths([str(SRC)], select=DETERMINISM_RULES)
    assert findings == [], "\n".join(
        f"{f.path}:{f.line} {f.rule}: {f.message}" for f in findings)


def test_src_clean_for_all_rules():
    findings, _ = analyze_paths([str(SRC)])
    assert findings == [], "\n".join(
        f"{f.path}:{f.line} {f.rule}: {f.message}" for f in findings)


def test_committed_baseline_has_no_determinism_entries():
    path = REPO_ROOT / DEFAULT_BASELINE_NAME
    assert path.exists(), "committed analysis baseline is missing"
    payload = json.loads(path.read_text())
    det = [e for e in payload.get("findings", [])
           if e["rule"] in DETERMINISM_RULES]
    assert det == []
    # and it must round-trip through the Baseline loader
    Baseline.load(path)
