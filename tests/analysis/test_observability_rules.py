"""Fixture-snippet tests for the observability rule pack (OBS2xx)."""

import textwrap

from repro.analysis import analyze_source

LIB = "src/repro/fog/example.py"


def check(source, path=LIB):
    return analyze_source(textwrap.dedent(source), path=path)


def rule_ids(findings):
    return [f.rule for f in findings]


class TestMetricNameFormat:
    def test_two_segment_metric_flagged(self):
        findings = check("""
            def record(registry):
                registry.counter("fog.items").inc()
        """)
        assert rule_ids(findings) == ["OBS201"]

    def test_three_segment_metric_clean(self):
        findings = check("""
            def record(registry):
                registry.counter("fog.pipeline.items_completed").inc()
                registry.gauge("nosql.hbase.memstore_cells").set(3)
                registry.histogram("fog.pipeline.item_latency_s").observe(0.5)
        """)
        assert findings == []

    def test_uppercase_flagged(self):
        findings = check("""
            def record(registry):
                registry.gauge("Fog.Pipeline.Depth").set(1)
        """)
        assert rule_ids(findings) == ["OBS201"]

    def test_span_name_checked(self):
        findings = check("""
            def trace(tracer):
                with tracer.span("fog.stage"):
                    pass
        """)
        assert rule_ids(findings) == ["OBS201"]

    def test_dynamic_name_skipped(self):
        findings = check("""
            def record(registry, name):
                registry.counter(name).inc()
        """)
        assert findings == []

    def test_test_code_exempt(self):
        findings = check("""
            def record(registry):
                registry.counter("x").inc()
        """, path="tests/fog/test_example.py")
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check("""
            def record(registry):
                registry.counter("fog.items").inc()  # repro: noqa[OBS201]
        """)
        assert findings == []


class TestSpanContextManager:
    def test_bare_span_call_flagged(self):
        findings = check("""
            def trace(tracer):
                span = tracer.span("fog.pipeline.stage")
                return span
        """)
        assert rule_ids(findings) == ["OBS202"]

    def test_with_span_clean(self):
        findings = check("""
            def trace(runtime):
                with runtime.tracer.span("fog.pipeline.stage") as span:
                    span.annotate(machine="m0")
        """)
        assert findings == []

    def test_non_tracer_span_ignored(self):
        findings = check("""
            def layout(row):
                return row.span(3)
        """)
        assert findings == []


class TestEventPayload:
    def test_lambda_payload_flagged(self):
        findings = check("""
            def announce(events):
                events.emit("cluster.node.failed", callback=lambda: 1)
        """)
        assert rule_ids(findings) == ["OBS203"]

    def test_set_payload_flagged(self):
        findings = check("""
            def announce(runtime):
                runtime.events.emit("cluster.node.failed", nodes={"a", "b"})
        """)
        assert rule_ids(findings) == ["OBS203"]

    def test_plain_payload_clean(self):
        findings = check("""
            def announce(events):
                events.emit("cluster.node.failed", node="dn-3", count=2,
                            tags=["edge", "rack0"])
        """)
        assert findings == []

    def test_non_event_emit_ignored(self):
        findings = check("""
            def send(socket):
                socket.emit("frame", payload=lambda: 1)
        """)
        assert findings == []
