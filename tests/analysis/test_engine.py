"""Engine, baseline, reporter, and CLI behaviour of repro.analysis."""

import json
import textwrap

import pytest

from repro.analysis import (Baseline, analyze_paths, analyze_source,
                            render_json, render_text)
from repro.analysis.cache import ResultCache, analyzer_fingerprint
from repro.analysis.cli import main
from repro.analysis.core import Severity, all_rules
from repro.analysis.engine import (PARSE_RULE, UnknownRuleError,
                                   collect_files, registered_rule_ids)

VIOLATION = textwrap.dedent("""
    import random

    def roll():
        return random.random()
""")

CLEAN = textwrap.dedent("""
    def double(x):
        return 2 * x
""")


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)


class TestRegistry:
    def test_rules_have_unique_ids_and_descriptions(self):
        rules = all_rules()
        ids = [r.id for r in rules]
        assert len(ids) == len(set(ids))
        assert all(r.description for r in rules)
        assert {"DET101", "DET102", "DET103", "DET104", "DET105",
                "OBS201", "OBS202", "OBS203",
                "API301", "API302"} <= set(ids)

    def test_all_rules_returns_fresh_instances(self):
        assert all_rules()[0] is not all_rules()[0]


class TestEngine:
    def test_findings_sorted_by_location(self):
        findings = analyze_source(VIOLATION)
        assert findings == sorted(findings, key=lambda f: f.sort_key())

    def test_blanket_noqa(self):
        findings = analyze_source("import random  # repro: noqa\n")
        assert findings == []

    def test_noqa_other_rule_does_not_suppress(self):
        findings = analyze_source("import random  # repro: noqa[OBS201]\n")
        assert [f.rule for f in findings] == ["DET101"]

    def test_collect_files_skips_pycache(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/mod.py": CLEAN,
            "src/repro/__pycache__/mod.cpython-311.py": CLEAN,
        })
        files = collect_files([str(tmp_path)])
        assert len(files) == 1

    def test_parse_error_reported_not_raised(self, tmp_path):
        write_tree(tmp_path, {"src/repro/bad.py": "def broken(:\n"})
        findings, _ = analyze_paths([str(tmp_path)])
        assert [f.rule for f in findings] == [PARSE_RULE]
        assert findings[0].severity is Severity.ERROR

    def test_select_and_ignore(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        only_det, _ = analyze_paths([str(tmp_path)], select=["DET101"])
        assert {f.rule for f in only_det} == {"DET101"}
        none_left, _ = analyze_paths([str(tmp_path)], ignore=["DET101"])
        assert none_left == []


class TestBaseline:
    def test_baselined_findings_excluded(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        findings, contexts = analyze_paths([str(tmp_path)])
        assert findings
        baseline = Baseline.from_findings(findings, contexts)
        new, baselined, stale = baseline.apply(findings, contexts)
        assert new == []
        assert len(baselined) == len(findings)
        assert stale == []

    def test_new_finding_exceeds_baseline_count(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        findings, contexts = analyze_paths([str(tmp_path)])
        baseline = Baseline.from_findings(findings, contexts)
        # add a second identical violation on a new line
        write_tree(tmp_path, {
            "src/repro/mod.py": VIOLATION + "\n\ndef roll2():\n"
                                "    return random.random()\n"})
        updated, contexts = analyze_paths([str(tmp_path)])
        new, baselined, stale = baseline.apply(updated, contexts)
        assert len(baselined) == len(findings)
        assert len(new) == 1

    def test_line_shift_does_not_invalidate(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        findings, contexts = analyze_paths([str(tmp_path)])
        baseline = Baseline.from_findings(findings, contexts)
        write_tree(tmp_path, {
            "src/repro/mod.py": "GREETING = 'hi'\n\n\n" + VIOLATION})
        shifted, contexts = analyze_paths([str(tmp_path)])
        new, baselined, stale = baseline.apply(shifted, contexts)
        assert new == []
        assert stale == []

    def test_stale_entries_surfaced(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        findings, contexts = analyze_paths([str(tmp_path)])
        baseline = Baseline.from_findings(findings, contexts)
        write_tree(tmp_path, {"src/repro/mod.py": CLEAN})
        cleaned, contexts = analyze_paths([str(tmp_path)])
        new, baselined, stale = baseline.apply(cleaned, contexts)
        assert new == [] and baselined == []
        assert len(stale) == len(findings)

    def test_round_trip_persistence(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        findings, contexts = analyze_paths([str(tmp_path)])
        baseline = Baseline.from_findings(findings, contexts)
        target = tmp_path / "baseline.json"
        baseline.save(target)
        assert Baseline.load(target).entries == baseline.entries

    def test_unsupported_version_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(target)


class TestReporters:
    def test_text_report_lists_location_and_rule(self):
        findings = analyze_source(VIOLATION)
        report = render_text(findings)
        assert "DET101" in report
        assert "src/repro/example.py:2:1" in report
        assert "error(s)" in report

    def test_json_report_parses(self):
        findings = analyze_source(VIOLATION)
        payload = json.loads(render_json(findings))
        assert payload["summary"]["total"] == len(findings)
        assert payload["findings"][0]["rule"] == "DET101"


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/mod.py": CLEAN})
        assert main([str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        assert main([str(tmp_path)]) == 1
        assert "DET101" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        assert main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] >= 1

    def test_write_then_respect_baseline(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        baseline = tmp_path / "baseline.json"
        assert main([str(tmp_path), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert baseline.exists()
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "grandfathered" in out

    def test_no_baseline_flag_reinstates_findings(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        baseline = tmp_path / "baseline.json"
        main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"])
        assert main([str(tmp_path), "--baseline", str(baseline),
                     "--no-baseline"]) == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET102" in out and "OBS201" in out and "API301" in out


MULTI_VIOLATION = textwrap.dedent("""
    import random
    import time

    def snapshot(machines):
        started = time.time()
        return started, list(set(machines))
""")

WARNING_ONLY_TREE = {
    "src/repro/mystery/mod.py": CLEAN,      # ARCH505 (warning) only
}


class TestEngineWholeProgram:
    def test_multiple_rule_families_dispatch_on_one_module(self):
        findings = analyze_source(MULTI_VIOLATION)
        assert {"DET101", "DET104", "DET105"} <= {f.rule for f in findings}

    def test_suppressing_one_rule_keeps_the_other_on_same_line(self):
        source = ("import time\n\n"
                  "def q():\n"
                  "    return time.time(), list({'a', 'b'})"
                  "  # repro: noqa[DET105]\n")
        findings = analyze_source(source)
        assert [f.rule for f in findings] == ["DET104"]

    def test_parse_error_alongside_real_findings(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/bad.py": "def broken(:\n",
            "src/repro/mod.py": VIOLATION,
        })
        findings, _ = analyze_paths([str(tmp_path)])
        rules = {f.rule for f in findings}
        assert PARSE_RULE in rules and "DET101" in rules

    def test_collect_files_dedupes_resolved_paths(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": CLEAN})
        root = str(tmp_path)
        dotted = str(tmp_path / "." / "src" / "..")
        files = collect_files([root, root + "/", dotted,
                               str(tmp_path / "src" / "repro" / "mod.py")])
        assert len(files) == 1

    def test_double_listed_tree_does_not_double_findings(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        once, _ = analyze_paths([str(tmp_path)])
        twice, _ = analyze_paths([str(tmp_path), str(tmp_path)])
        assert twice == once

    def test_unknown_select_code_raises(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": CLEAN})
        with pytest.raises(UnknownRuleError) as err:
            analyze_paths([str(tmp_path)], select=["DET101", "NOPE"])
        assert "NOPE" in str(err.value)

    def test_unknown_ignore_code_raises(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": CLEAN})
        with pytest.raises(UnknownRuleError):
            analyze_paths([str(tmp_path)], ignore=["det999"])


class TestParallelAndCache:
    def _tree(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/mod.py": VIOLATION,
            "src/repro/runtime/core2.py": "from repro.apps.x import main\n",
            "src/repro/apps/x.py": "def main():\n    return 0\n",
        })
        return str(tmp_path)

    def test_workers_match_serial(self, tmp_path):
        root = self._tree(tmp_path)
        serial, _ = analyze_paths([root])
        parallel, _ = analyze_paths([root], workers=2)
        assert serial  # both module- and graph-rule findings present
        assert parallel == serial

    def test_cache_warm_run_identical_and_hits(self, tmp_path):
        root = self._tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        fp = analyzer_fingerprint(registered_rule_ids())
        cold_cache = ResultCache(cache_path, fp)
        cold, _ = analyze_paths([root], cache=cold_cache)
        assert cold_cache.misses > 0 and cache_path.exists()
        warm_cache = ResultCache(cache_path, fp)
        warm, _ = analyze_paths([root], cache=warm_cache)
        assert warm == cold
        assert warm_cache.misses == 0 and warm_cache.hits > 0

    def test_cache_invalidated_by_file_edit(self, tmp_path):
        root = self._tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        fp = analyzer_fingerprint(registered_rule_ids())
        analyze_paths([root], cache=ResultCache(cache_path, fp))
        # fix the violation; the stale cached finding must not resurface
        write_tree(tmp_path, {"src/repro/mod.py": CLEAN})
        after_cache = ResultCache(cache_path, fp)
        after, _ = analyze_paths([root], cache=after_cache)
        assert "DET101" not in {f.rule for f in after}
        assert after_cache.misses >= 1

    def test_cache_rejected_on_fingerprint_change(self, tmp_path):
        root = self._tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        analyze_paths([root], cache=ResultCache(
            cache_path, analyzer_fingerprint(registered_rule_ids())))
        other = ResultCache(cache_path,
                            analyzer_fingerprint(["DET101"]))
        assert other.get_module("src/repro/mod.py", "anything") is None

    def test_corrupt_cache_discarded(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        cache = ResultCache(cache_path, "fp")
        assert cache.get_project("sha") is None


class TestCliNewFlags:
    def test_unknown_code_exits_two(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": CLEAN})
        with pytest.raises(SystemExit) as err:
            main([str(tmp_path), "--select", "NOPE"])
        assert err.value.code == 2

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        write_tree(tmp_path, WARNING_ONLY_TREE)
        assert main([str(tmp_path)]) == 0
        capsys.readouterr()
        assert main([str(tmp_path), "--strict"]) == 1
        assert "ARCH505" in capsys.readouterr().out

    def test_workers_flag(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        assert main([str(tmp_path), "--workers", "2"]) == 1
        assert "DET101" in capsys.readouterr().out

    def test_cache_flag_round_trip(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        cache_file = str(tmp_path / "cache.json")
        assert main([str(tmp_path), "--cache", cache_file]) == 1
        cold = capsys.readouterr().out
        assert main([str(tmp_path), "--cache", cache_file]) == 1
        warm = capsys.readouterr().out
        assert warm == cold
