"""Engine, baseline, reporter, and CLI behaviour of repro.analysis."""

import json
import textwrap

import pytest

from repro.analysis import (Baseline, analyze_paths, analyze_source,
                            render_json, render_text)
from repro.analysis.cli import main
from repro.analysis.core import Severity, all_rules
from repro.analysis.engine import PARSE_RULE, collect_files

VIOLATION = textwrap.dedent("""
    import random

    def roll():
        return random.random()
""")

CLEAN = textwrap.dedent("""
    def double(x):
        return 2 * x
""")


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)


class TestRegistry:
    def test_rules_have_unique_ids_and_descriptions(self):
        rules = all_rules()
        ids = [r.id for r in rules]
        assert len(ids) == len(set(ids))
        assert all(r.description for r in rules)
        assert {"DET101", "DET102", "DET103", "DET104", "DET105",
                "OBS201", "OBS202", "OBS203",
                "API301", "API302"} <= set(ids)

    def test_all_rules_returns_fresh_instances(self):
        assert all_rules()[0] is not all_rules()[0]


class TestEngine:
    def test_findings_sorted_by_location(self):
        findings = analyze_source(VIOLATION)
        assert findings == sorted(findings, key=lambda f: f.sort_key())

    def test_blanket_noqa(self):
        findings = analyze_source("import random  # repro: noqa\n")
        assert findings == []

    def test_noqa_other_rule_does_not_suppress(self):
        findings = analyze_source("import random  # repro: noqa[OBS201]\n")
        assert [f.rule for f in findings] == ["DET101"]

    def test_collect_files_skips_pycache(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/mod.py": CLEAN,
            "src/repro/__pycache__/mod.cpython-311.py": CLEAN,
        })
        files = collect_files([str(tmp_path)])
        assert len(files) == 1

    def test_parse_error_reported_not_raised(self, tmp_path):
        write_tree(tmp_path, {"src/repro/bad.py": "def broken(:\n"})
        findings, _ = analyze_paths([str(tmp_path)])
        assert [f.rule for f in findings] == [PARSE_RULE]
        assert findings[0].severity is Severity.ERROR

    def test_select_and_ignore(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        only_det, _ = analyze_paths([str(tmp_path)], select=["DET101"])
        assert {f.rule for f in only_det} == {"DET101"}
        none_left, _ = analyze_paths([str(tmp_path)], ignore=["DET101"])
        assert none_left == []


class TestBaseline:
    def test_baselined_findings_excluded(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        findings, contexts = analyze_paths([str(tmp_path)])
        assert findings
        baseline = Baseline.from_findings(findings, contexts)
        new, baselined, stale = baseline.apply(findings, contexts)
        assert new == []
        assert len(baselined) == len(findings)
        assert stale == []

    def test_new_finding_exceeds_baseline_count(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        findings, contexts = analyze_paths([str(tmp_path)])
        baseline = Baseline.from_findings(findings, contexts)
        # add a second identical violation on a new line
        write_tree(tmp_path, {
            "src/repro/mod.py": VIOLATION + "\n\ndef roll2():\n"
                                "    return random.random()\n"})
        updated, contexts = analyze_paths([str(tmp_path)])
        new, baselined, stale = baseline.apply(updated, contexts)
        assert len(baselined) == len(findings)
        assert len(new) == 1

    def test_line_shift_does_not_invalidate(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        findings, contexts = analyze_paths([str(tmp_path)])
        baseline = Baseline.from_findings(findings, contexts)
        write_tree(tmp_path, {
            "src/repro/mod.py": "GREETING = 'hi'\n\n\n" + VIOLATION})
        shifted, contexts = analyze_paths([str(tmp_path)])
        new, baselined, stale = baseline.apply(shifted, contexts)
        assert new == []
        assert stale == []

    def test_stale_entries_surfaced(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        findings, contexts = analyze_paths([str(tmp_path)])
        baseline = Baseline.from_findings(findings, contexts)
        write_tree(tmp_path, {"src/repro/mod.py": CLEAN})
        cleaned, contexts = analyze_paths([str(tmp_path)])
        new, baselined, stale = baseline.apply(cleaned, contexts)
        assert new == [] and baselined == []
        assert len(stale) == len(findings)

    def test_round_trip_persistence(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        findings, contexts = analyze_paths([str(tmp_path)])
        baseline = Baseline.from_findings(findings, contexts)
        target = tmp_path / "baseline.json"
        baseline.save(target)
        assert Baseline.load(target).entries == baseline.entries

    def test_unsupported_version_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(target)


class TestReporters:
    def test_text_report_lists_location_and_rule(self):
        findings = analyze_source(VIOLATION)
        report = render_text(findings)
        assert "DET101" in report
        assert "src/repro/example.py:2:1" in report
        assert "error(s)" in report

    def test_json_report_parses(self):
        findings = analyze_source(VIOLATION)
        payload = json.loads(render_json(findings))
        assert payload["summary"]["total"] == len(findings)
        assert payload["findings"][0]["rule"] == "DET101"


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/mod.py": CLEAN})
        assert main([str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        assert main([str(tmp_path)]) == 1
        assert "DET101" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        assert main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] >= 1

    def test_write_then_respect_baseline(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        baseline = tmp_path / "baseline.json"
        assert main([str(tmp_path), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert baseline.exists()
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "grandfathered" in out

    def test_no_baseline_flag_reinstates_findings(self, tmp_path):
        write_tree(tmp_path, {"src/repro/mod.py": VIOLATION})
        baseline = tmp_path / "baseline.json"
        main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"])
        assert main([str(tmp_path), "--baseline", str(baseline),
                     "--no-baseline"]) == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET102" in out and "OBS201" in out and "API301" in out
