"""ProjectGraph construction: naming, edges, resolution, cycles, calls."""

import textwrap

from repro.analysis.context import ModuleContext
from repro.analysis.graph import (ProjectGraph, build_graph,
                                  module_name_for_path)


def make_graph(files):
    contexts = {}
    for rel_path, source in files.items():
        contexts[rel_path] = ModuleContext(rel_path,
                                           textwrap.dedent(source))
    return build_graph(contexts)


class TestModuleNaming:
    def test_src_rooted(self):
        assert module_name_for_path(
            "src/repro/fog/pipeline.py") == "repro.fog.pipeline"

    def test_nested_checkout_uses_last_src(self):
        assert module_name_for_path(
            "work/src/project/src/repro/nn/tensor.py") == "repro.nn.tensor"

    def test_init_names_the_package(self):
        assert module_name_for_path(
            "src/repro/nn/__init__.py") == "repro.nn"

    def test_non_src_path_dots_its_shape(self):
        assert module_name_for_path(
            "tests/fog/test_x.py") == "tests.fog.test_x"

    def test_package_attribution(self):
        graph = make_graph({"src/repro/fog/pipeline.py": "x = 1\n"})
        assert graph.modules["repro.fog.pipeline"].package == "fog"


class TestImportEdges:
    def test_from_package_import_submodule_targets_submodule(self):
        graph = make_graph({
            "src/repro/nn/__init__.py": "from repro.nn import functional\n",
            "src/repro/nn/functional.py": "def relu(x):\n    return x\n",
            "src/repro/fog/pipeline.py":
                "from repro.nn import functional as F\n",
        })
        edges = graph.modules["repro.fog.pipeline"].imports
        assert [e.target for e in edges] == ["repro.nn.functional"]

    def test_relative_import_resolved(self):
        graph = make_graph({
            "src/repro/fog/__init__.py": "",
            "src/repro/fog/util.py": "def helper():\n    return 1\n",
            "src/repro/fog/pipeline.py": "from .util import helper\n",
        })
        edges = graph.modules["repro.fog.pipeline"].imports
        assert edges[0].target == "repro.fog.util"
        assert edges[0].symbol == "helper"

    def test_deferred_import_marked_not_toplevel(self):
        graph = make_graph({
            "src/repro/fog/pipeline.py": """
                import json

                def lazy():
                    import pickle
                    return pickle
            """,
        })
        by_target = {e.target: e.toplevel
                     for e in graph.modules["repro.fog.pipeline"].imports}
        assert by_target == {"json": True, "pickle": False}


class TestResolution:
    def test_cross_module_function(self):
        graph = make_graph({
            "src/repro/data/loader.py": "def load(path):\n    return path\n",
            "src/repro/fog/pipeline.py": "from repro.data.loader import load\n",
        })
        symbol = graph.resolve("repro.fog.pipeline", "load")
        assert symbol is not None
        assert (symbol.module, symbol.name, symbol.kind) == (
            "repro.data.loader", "load", "function")

    def test_reexport_chain_followed(self):
        graph = make_graph({
            "src/repro/data/loader.py": "def load(path):\n    return path\n",
            "src/repro/data/__init__.py": "from repro.data.loader import load\n",
            "src/repro/fog/pipeline.py": "from repro.data import load\n",
        })
        symbol = graph.resolve("repro.fog.pipeline", "load")
        assert symbol is not None and symbol.module == "repro.data.loader"

    def test_binding_cycle_terminates(self):
        graph = make_graph({
            "src/repro/a.py": "from repro.b import ghost\n",
            "src/repro/b.py": "from repro.a import ghost\n",
        })
        assert graph.resolve("repro.a", "ghost") is None

    def test_module_attribute_call_target(self):
        graph = make_graph({
            "src/repro/data/loader.py": "def load(path):\n    return path\n",
            "src/repro/fog/pipeline.py": """
                from repro.data import loader

                def run(p):
                    return loader.load(p)
            """,
            "src/repro/data/__init__.py": "",
        })
        import ast
        tree = graph.modules["repro.fog.pipeline"].ctx.tree
        call = next(n for n in ast.walk(tree) if isinstance(n, ast.Call))
        symbol = graph.resolve_call_target("repro.fog.pipeline", call.func)
        assert symbol is not None and symbol.module == "repro.data.loader"


class TestCycles:
    def test_toplevel_cycle_detected(self):
        graph = make_graph({
            "src/repro/a.py": "import repro.b\n",
            "src/repro/b.py": "import repro.a\n",
        })
        assert graph.import_cycles() == [["repro.a", "repro.b"]]

    def test_deferred_import_breaks_cycle(self):
        graph = make_graph({
            "src/repro/a.py": "import repro.b\n",
            "src/repro/b.py": "def back():\n    import repro.a\n",
        })
        assert graph.import_cycles() == []

    def test_acyclic_chain_clean(self):
        graph = make_graph({
            "src/repro/a.py": "import repro.b\n",
            "src/repro/b.py": "import repro.c\n",
            "src/repro/c.py": "x = 1\n",
        })
        assert graph.import_cycles() == []


class TestCallGraph:
    def test_nested_def_gets_edge_from_encloser(self):
        graph = make_graph({
            "src/repro/fog/pipeline.py": """
                def outer():
                    def inner():
                        return 1
                    return inner
            """,
        })
        calls = graph.call_graph()
        assert ("repro.fog.pipeline", "outer.inner") in \
            calls[("repro.fog.pipeline", "outer")]

    def test_callers_reaching_builds_evidence_chain(self):
        graph = make_graph({
            "src/repro/runtime/clock.py": """
                import time

                def pace():
                    time.sleep(1)
            """,
            "src/repro/fog/pipeline.py": """
                from repro.runtime.clock import pace

                def serve():
                    pace()
            """,
        })
        chains = graph.callers_reaching("time.sleep")
        key = ("repro.fog.pipeline", "serve")
        assert key in chains
        assert chains[key] == [key, ("repro.runtime.clock", "pace")]

    def test_def_site_lines(self):
        graph = make_graph({
            "src/repro/fog/pipeline.py": "\n\ndef serve():\n    return 1\n",
        })
        graph.call_graph()
        assert graph.def_site(("repro.fog.pipeline", "serve")) == 3
