"""Fixture-snippet tests for the API-hygiene rule pack (API3xx)."""

import textwrap

from repro.analysis import analyze_source

LIB = "src/repro/fog/example.py"


def check(source, path=LIB):
    return analyze_source(textwrap.dedent(source), path=path)


def rule_ids(findings):
    return [f.rule for f in findings]


class TestMutableDefault:
    def test_list_literal_flagged(self):
        findings = check("""
            def push(item, queue=[]):
                queue.append(item)
                return queue
        """)
        assert rule_ids(findings) == ["API301"]

    def test_dict_and_set_literals_flagged(self):
        findings = check("""
            def merge(extra={}, seen=set()):
                return extra, seen
        """)
        assert rule_ids(findings) == ["API301", "API301"]

    def test_kwonly_default_flagged(self):
        findings = check("""
            def push(item, *, queue=[]):
                return queue
        """)
        assert rule_ids(findings) == ["API301"]

    def test_none_default_clean(self):
        findings = check("""
            def push(item, queue=None):
                queue = queue if queue is not None else []
                return queue
        """)
        assert findings == []

    def test_applies_to_test_code(self):
        findings = check("def helper(acc=[]):\n    return acc\n",
                         path="tests/fog/test_example.py")
        assert rule_ids(findings) == ["API301"]


class TestImplicitOptional:
    def test_plain_annotation_flagged(self):
        findings = check("""
            def load(path: str = None):
                return path
        """)
        assert rule_ids(findings) == ["API302"]

    def test_np_generator_annotation_flagged(self):
        findings = check("""
            import numpy as np

            def init(shape, rng: np.random.Generator = None):
                return shape
        """)
        assert rule_ids(findings) == ["API302"]

    def test_optional_annotation_clean(self):
        findings = check("""
            from typing import Optional

            def load(path: Optional[str] = None):
                return path
        """)
        assert findings == []

    def test_union_none_clean(self):
        findings = check("""
            from typing import Union

            def load(path: Union[str, None] = None):
                return path
        """)
        assert findings == []

    def test_pipe_none_clean(self):
        findings = check("""
            def load(path: "str | None" = None):
                return path
        """)
        assert findings == []

    def test_unannotated_clean(self):
        findings = check("""
            def load(path=None):
                return path
        """)
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check(
            "def load(path: str = None):  # repro: noqa[API302]\n"
            "    return path\n")
        assert findings == []


class TestBrokerInternals:
    def test_reading_topics_table_flagged(self):
        findings = check("""
            def depth(bus):
                return len(bus._topics)
        """)
        assert rule_ids(findings) == ["API303"]

    def test_mutating_group_offsets_flagged(self):
        findings = check("""
            def rewind(bus, group, topic):
                bus._group_offsets[(group, topic, 0)] = 0
        """)
        assert rule_ids(findings) == ["API303"]

    def test_positions_and_segments_flagged(self):
        findings = check("""
            def peek(bus):
                return bus._positions, bus._segments
        """)
        assert rule_ids(findings) == ["API303", "API303"]

    def test_flagged_in_test_code_too(self):
        findings = check("def probe(bus):\n    return bus._topics\n",
                         path="tests/streaming/test_example.py")
        assert rule_ids(findings) == ["API303"]

    def test_public_api_clean(self):
        findings = check("""
            def healthy(bus, group, topic):
                return (bus.lag(group, topic),
                        bus.committed_offset(group, topic, 0),
                        bus.partition_assignment(group, topic),
                        bus.topic_names())
        """)
        assert findings == []

    def test_streaming_package_exempt(self):
        findings = check("def inside(self):\n    return self._topics\n",
                         path="src/repro/streaming/broker.py")
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check(
            "def probe(bus):\n"
            "    return bus._topics  # repro: noqa[API303]\n")
        assert findings == []


class TestServingPath:
    def test_serve_batched_outside_serving_flagged(self):
        findings = check("""
            def handle(deployment, frames, policy):
                return deployment.serve_batched(frames, policy)
        """, path="src/repro/core/example.py")
        assert rule_ids(findings) == ["API304"]

    def test_serve_streams_outside_serving_flagged(self):
        findings = check("""
            def handle(deployment, streams, policy):
                return deployment.serve_streams(streams, policy)
        """, path="src/repro/apps/example.py")
        assert rule_ids(findings) == ["API304"]

    def test_serving_package_exempt(self):
        findings = check("""
            def serve(self, stacked, policy):
                return self.deployment.serve_batched(stacked, policy)
        """, path="src/repro/serving/gateway.py")
        assert findings == []

    def test_fog_package_exempt(self):
        findings = check("""
            def serve(deployment, frames, policy):
                return deployment.serve_batched(frames, policy)
        """, path="src/repro/fog/example.py")
        assert findings == []

    def test_tests_and_benchmarks_exempt(self):
        snippet = ("def probe(deployment, frames, policy):\n"
                   "    return deployment.serve_batched(frames, policy)\n")
        assert check(snippet, path="tests/fog/test_example.py") == []
        assert check(snippet, path="benchmarks/perf/bench_example.py") == []

    def test_gateway_surface_clean(self):
        findings = check("""
            async def handle(gateway, frames):
                return await gateway.submit(frames, tenant="cam")
        """, path="src/repro/core/example.py")
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check(
            "def probe(deployment, frames, policy):\n"
            "    return deployment.serve_batched(frames, policy)"
            "  # repro: noqa[API304]\n",
            path="src/repro/core/example.py")
        assert findings == []
