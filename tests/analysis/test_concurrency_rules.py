"""Fixture-tree tests for the concurrency rule pack (CONC6xx).

The headline case is cross-module: a worker function *defined* in module
A and *shipped* to ``map_ordered`` in module B is resolved through the
project graph and judged at its def site — the thing a per-file linter
cannot do.
"""

import textwrap

from repro.analysis import analyze_paths


def run(tmp_path, files, select):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    findings, _ = analyze_paths([str(tmp_path)], select=select)
    return findings


class TestWorkerGlobalMutation:
    def test_cross_module_worker_caught_at_def_site(self, tmp_path):
        # worker defined in tasks.py, shipped in driver.py
        findings = run(tmp_path, {
            "src/repro/compute/tasks.py": """
                RESULTS = []

                def worker(item):
                    RESULTS.append(item)
                    return item
            """,
            "src/repro/compute/driver.py": """
                from repro.compute.tasks import worker

                def launch(executor, items):
                    return executor.map_ordered(worker, items)
            """,
        }, ["CONC601"])
        assert [f.rule for f in findings] == ["CONC601"]
        assert findings[0].path.endswith("src/repro/compute/tasks.py")
        assert "RESULTS" in findings[0].message

    def test_global_statement_flagged(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/compute/driver.py": """
                COUNT = 0

                def worker(item):
                    global COUNT
                    COUNT += 1
                    return item

                def launch(executor, items):
                    return executor.map_ordered(worker, items)
            """,
        }, ["CONC601"])
        assert "CONC601" in [f.rule for f in findings]

    def test_local_shadow_clean(self, tmp_path):
        # near miss: same name, same method, but a fresh local list
        findings = run(tmp_path, {
            "src/repro/compute/driver.py": """
                RESULTS = []

                def worker(item):
                    RESULTS = []
                    RESULTS.append(item)
                    return RESULTS

                def launch(executor, items):
                    return executor.map_ordered(worker, items)
            """,
        }, ["CONC601"])
        assert findings == []

    def test_unshipped_function_clean(self, tmp_path):
        # mutating a module global is fine when the fn never crosses a fork
        findings = run(tmp_path, {
            "src/repro/compute/driver.py": """
                RESULTS = []

                def collect(item):
                    RESULTS.append(item)
                    return item
            """,
        }, ["CONC601"])
        assert findings == []


class TestSharedViewWrite:
    def test_subscript_store_flagged(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/compute/driver.py": """
                def worker(item):
                    item[0] = 0.0
                    return item.sum()

                def launch(executor, items):
                    return executor.map_ordered(worker, items)
            """,
        }, ["CONC602"])
        assert [f.rule for f in findings] == ["CONC602"]

    def test_inplace_method_flagged(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/compute/driver.py": """
                def worker(item):
                    item.fill(0.0)
                    return item

                def launch(executor, items):
                    return executor.map_ordered(worker, items)
            """,
        }, ["CONC602"])
        assert [f.rule for f in findings] == ["CONC602"]

    def test_lambda_worker_flagged(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/compute/driver.py": """
                def launch(executor, items):
                    return executor.map_ordered(
                        lambda item: item.sort(), items)
            """,
        }, ["CONC602"])
        assert [f.rule for f in findings] == ["CONC602"]

    def test_copy_first_escape_clean(self, tmp_path):
        # the sanctioned pattern: rebind to a private copy, then scribble
        findings = run(tmp_path, {
            "src/repro/compute/driver.py": """
                import numpy as np

                def worker(item):
                    item = np.copy(item)
                    item[0] = 0.0
                    return item.sum()

                def launch(executor, items):
                    return executor.map_ordered(worker, items)
            """,
        }, ["CONC602"])
        assert findings == []

    def test_read_only_use_clean(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/compute/driver.py": """
                def worker(item):
                    return item.sum() + item.mean()

                def launch(executor, items):
                    return executor.map_ordered(worker, items)
            """,
        }, ["CONC602"])
        assert findings == []


class TestWorkerRuntimeMutation:
    def test_nested_def_broker_produce_flagged(self, tmp_path):
        # a closure defined inside the launcher resolves through the
        # shipping module's own tree
        findings = run(tmp_path, {
            "src/repro/streaming/jobs.py": """
                def launch(executor, broker, items):
                    def worker(item):
                        broker.produce("results", item)
                        return item
                    return executor.map_ordered(worker, items)
            """,
        }, ["CONC603"])
        assert [f.rule for f in findings] == ["CONC603"]
        assert "produce" in findings[0].message

    def test_named_worker_broker_commit_flagged(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/streaming/jobs.py": """
                def worker(item, broker=None):
                    broker.commit("grp", "topic", 0, item)
                    return item

                def launch(executor, items):
                    return executor.map_ordered(worker, items)
            """,
        }, ["CONC603"])
        assert [f.rule for f in findings] == ["CONC603"]
        assert "commit" in findings[0].message

    def test_registry_reset_flagged(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/compute/driver.py": """
                def worker(item, registry=None):
                    registry.reset()
                    return item

                def launch(executor, items):
                    return executor.map_ordered(worker, items)
            """,
        }, ["CONC603"])
        assert [f.rule for f in findings] == ["CONC603"]

    def test_gensym_flagged(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/compute/driver.py": """
                def worker(item, runtime=None):
                    name = runtime.gensym()
                    return (name, item)

                def launch(executor, items):
                    return executor.map_ordered(worker, items)
            """,
        }, ["CONC603"])
        assert [f.rule for f in findings] == ["CONC603"]

    def test_parent_side_produce_clean(self, tmp_path):
        # producing *after* map_ordered returns is exactly right
        findings = run(tmp_path, {
            "src/repro/streaming/jobs.py": """
                def worker(item):
                    return item * 2

                def launch(executor, broker, items):
                    results = executor.map_ordered(worker, items)
                    for result in results:
                        broker.produce("results", result)
                    return results
            """,
        }, ["CONC603"])
        assert findings == []


class TestWallPacing:
    def test_direct_sleep_flagged(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/fog/pipeline.py": """
                import time

                def serve():
                    time.sleep(0.1)
            """,
        }, ["CONC604"])
        assert [f.rule for f in findings] == ["CONC604"]

    def test_clock_home_exempt(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/runtime/core.py": """
                import time

                def pace(seconds):
                    time.sleep(seconds)
            """,
        }, ["CONC604"])
        assert findings == []

    def test_indirect_reach_through_clock_home_flagged(self, tmp_path):
        # the sleep itself is sanctioned, but a DES-layer caller is not
        findings = run(tmp_path, {
            "src/repro/runtime/core.py": """
                import time

                def pace(seconds):
                    time.sleep(seconds)
            """,
            "src/repro/fog/pipeline.py": """
                from repro.runtime.core import pace

                def serve():
                    pace(0.1)
            """,
        }, ["CONC604"])
        assert [f.rule for f in findings] == ["CONC604"]
        assert findings[0].path.endswith("src/repro/fog/pipeline.py")
        assert "reaches time.sleep()" in findings[0].message
        assert "repro.runtime.core:pace" in findings[0].message

    def test_non_des_package_indirect_clean(self, tmp_path):
        # viz is layered but not DES-clocked -- wait, it is not in
        # DES_PACKAGES, so an indirect reach from it is tolerated
        findings = run(tmp_path, {
            "src/repro/runtime/core.py": """
                import time

                def pace(seconds):
                    time.sleep(seconds)
            """,
            "src/repro/viz/render.py": """
                from repro.runtime.core import pace

                def animate():
                    pace(0.1)
            """,
        }, ["CONC604"])
        assert findings == []

    def test_test_code_exempt(self, tmp_path):
        findings = run(tmp_path, {
            "tests/fog/test_pipeline.py": """
                import time

                def test_slowly():
                    time.sleep(0.01)
            """,
        }, ["CONC604"])
        assert findings == []
