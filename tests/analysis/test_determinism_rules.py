"""Fixture-snippet tests for the determinism rule pack (DET1xx).

Each rule gets a positive case (violation found), a suppressed case
(``# repro: noqa[RULE]`` silences it), and a scope case (sanctioned
module or non-library path is exempt).
"""

import textwrap

from repro.analysis import analyze_source

LIB = "src/repro/fog/example.py"         # library path: determinism applies
TEST = "tests/fog/test_example.py"       # test path: determinism exempt


def check(source, path=LIB):
    return analyze_source(textwrap.dedent(source), path=path)


def rule_ids(findings):
    return [f.rule for f in findings]


class TestBareRandom:
    def test_import_and_use_flagged(self):
        findings = check("""
            import random

            def roll():
                return random.random()
        """)
        assert rule_ids(findings) == ["DET101", "DET101"]
        assert findings[0].line == 2

    def test_from_import_flagged(self):
        findings = check("from random import Random\n")
        assert rule_ids(findings) == ["DET101"]

    def test_aliased_import_resolved(self):
        findings = check("""
            import random as rnd

            def roll():
                return rnd.random()
        """)
        assert rule_ids(findings) == ["DET101", "DET101"]

    def test_rng_home_exempt(self):
        findings = check("import random\n", path="src/repro/runtime/rng.py")
        assert findings == []

    def test_test_code_exempt(self):
        findings = check("import random\n", path=TEST)
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check("import random  # repro: noqa[DET101]\n")
        assert findings == []


class TestNumpyGlobalRng:
    def test_default_rng_flagged(self):
        findings = check("""
            import numpy as np

            def make():
                return np.random.default_rng(0)
        """)
        assert rule_ids(findings) == ["DET102"]

    def test_legacy_globals_flagged(self):
        findings = check("""
            import numpy as np

            def legacy():
                np.random.seed(0)
                return np.random.rand(3)
        """)
        assert rule_ids(findings) == ["DET102", "DET102"]

    def test_from_import_resolved(self):
        findings = check("""
            from numpy.random import default_rng

            def make():
                return default_rng(7)
        """)
        assert rule_ids(findings) == ["DET102"]

    def test_generator_annotation_not_flagged(self):
        findings = check("""
            from typing import Optional

            import numpy as np

            def use(rng: Optional[np.random.Generator] = None):
                return rng
        """)
        assert findings == []

    def test_rng_home_exempt(self):
        findings = check("import numpy as np\nr = np.random.default_rng(0)\n",
                         path="src/repro/runtime/rng.py")
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check(
            "import numpy as np\n"
            "r = np.random.default_rng(0)  # repro: noqa[DET102]\n")
        assert findings == []


class TestRngOrFallback:
    def test_or_fallback_flagged(self):
        findings = check("""
            def build(rng=None):
                rng = rng or make_generator()
                return rng
        """)
        assert rule_ids(findings) == ["DET103"]

    def test_suffixed_name_flagged(self):
        findings = check("""
            def build(audio_rng=None):
                return audio_rng or make_generator()
        """)
        assert rule_ids(findings) == ["DET103"]

    def test_unrelated_or_untouched(self):
        findings = check("""
            def pick(options=None):
                return options or []
        """)
        assert findings == []

    def test_resolve_rng_pattern_clean(self):
        findings = check("""
            from repro.runtime.rng import resolve_rng

            def build(rng=None):
                return resolve_rng(rng, "fog.example.stream")
        """)
        assert findings == []


class TestWallClock:
    def test_time_calls_flagged(self):
        findings = check("""
            import time

            def stamp():
                return time.time(), time.perf_counter()
        """)
        assert rule_ids(findings) == ["DET104", "DET104"]

    def test_datetime_now_flagged(self):
        findings = check("""
            import datetime

            def stamp():
                return datetime.datetime.now()
        """)
        assert rule_ids(findings) == ["DET104"]

    def test_clock_home_exempt(self):
        findings = check("import time\nt = time.perf_counter()\n",
                         path="src/repro/runtime/core.py")
        assert findings == []

    def test_sleep_not_flagged(self):
        findings = check("import time\n\n\ndef nap():\n    time.sleep(1)\n")
        assert findings == []


class TestSetIterationOrder:
    def test_for_over_set_flagged(self):
        findings = check("""
            def names(machines):
                out = []
                for name in set(machines):
                    out.append(name)
                return out
        """)
        assert rule_ids(findings) == ["DET105"]

    def test_comprehension_over_set_flagged(self):
        findings = check("""
            def table(machines):
                return {name: 0 for name in set(machines)}
        """)
        assert rule_ids(findings) == ["DET105"]

    def test_list_of_set_flagged(self):
        findings = check("""
            def names(machines):
                return list(set(machines))
        """)
        assert rule_ids(findings) == ["DET105"]

    def test_sorted_set_clean(self):
        findings = check("""
            def names(machines):
                return sorted(set(machines))
        """)
        assert findings == []

    def test_sorted_iteration_clean(self):
        findings = check("""
            def names(machines):
                return [n for n in sorted(set(machines))]
        """)
        assert findings == []
