"""Fixture-snippet tests for the determinism rule pack (DET1xx).

Each rule gets a positive case (violation found), a suppressed case
(``# repro: noqa[RULE]`` silences it), and a scope case (sanctioned
module or non-library path is exempt).
"""

import textwrap

from repro.analysis import analyze_source

LIB = "src/repro/fog/example.py"         # library path: determinism applies
TEST = "tests/fog/test_example.py"       # test path: determinism exempt


def check(source, path=LIB):
    return analyze_source(textwrap.dedent(source), path=path)


def rule_ids(findings):
    return [f.rule for f in findings]


class TestBareRandom:
    def test_import_and_use_flagged(self):
        findings = check("""
            import random

            def roll():
                return random.random()
        """)
        assert rule_ids(findings) == ["DET101", "DET101"]
        assert findings[0].line == 2

    def test_from_import_flagged(self):
        findings = check("from random import Random\n")
        assert rule_ids(findings) == ["DET101"]

    def test_aliased_import_resolved(self):
        findings = check("""
            import random as rnd

            def roll():
                return rnd.random()
        """)
        assert rule_ids(findings) == ["DET101", "DET101"]

    def test_rng_home_exempt(self):
        findings = check("import random\n", path="src/repro/runtime/rng.py")
        assert findings == []

    def test_test_code_exempt(self):
        findings = check("import random\n", path=TEST)
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check("import random  # repro: noqa[DET101]\n")
        assert findings == []


class TestNumpyGlobalRng:
    def test_default_rng_flagged(self):
        findings = check("""
            import numpy as np

            def make():
                return np.random.default_rng(0)
        """)
        assert rule_ids(findings) == ["DET102"]

    def test_legacy_globals_flagged(self):
        findings = check("""
            import numpy as np

            def legacy():
                np.random.seed(0)
                return np.random.rand(3)
        """)
        assert rule_ids(findings) == ["DET102", "DET102"]

    def test_from_import_resolved(self):
        findings = check("""
            from numpy.random import default_rng

            def make():
                return default_rng(7)
        """)
        assert rule_ids(findings) == ["DET102"]

    def test_generator_annotation_not_flagged(self):
        findings = check("""
            from typing import Optional

            import numpy as np

            def use(rng: Optional[np.random.Generator] = None):
                return rng
        """)
        assert findings == []

    def test_rng_home_exempt(self):
        findings = check("import numpy as np\nr = np.random.default_rng(0)\n",
                         path="src/repro/runtime/rng.py")
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check(
            "import numpy as np\n"
            "r = np.random.default_rng(0)  # repro: noqa[DET102]\n")
        assert findings == []


class TestRngOrFallback:
    def test_or_fallback_flagged(self):
        findings = check("""
            def build(rng=None):
                rng = rng or make_generator()
                return rng
        """)
        assert rule_ids(findings) == ["DET103"]

    def test_suffixed_name_flagged(self):
        findings = check("""
            def build(audio_rng=None):
                return audio_rng or make_generator()
        """)
        assert rule_ids(findings) == ["DET103"]

    def test_unrelated_or_untouched(self):
        findings = check("""
            def pick(options=None):
                return options or []
        """)
        assert findings == []

    def test_resolve_rng_pattern_clean(self):
        findings = check("""
            from repro.runtime.rng import resolve_rng

            def build(rng=None):
                return resolve_rng(rng, "fog.example.stream")
        """)
        assert findings == []


class TestWallClock:
    def test_time_calls_flagged(self):
        findings = check("""
            import time

            def stamp():
                return time.time(), time.perf_counter()
        """)
        assert rule_ids(findings) == ["DET104", "DET104"]

    def test_datetime_now_flagged(self):
        findings = check("""
            import datetime

            def stamp():
                return datetime.datetime.now()
        """)
        assert rule_ids(findings) == ["DET104"]

    def test_clock_home_exempt(self):
        findings = check("import time\nt = time.perf_counter()\n",
                         path="src/repro/runtime/core.py")
        assert findings == []

    def test_sleep_not_flagged(self):
        findings = check("import time\n\n\ndef nap():\n    time.sleep(1)\n")
        assert findings == []


class TestSetIterationOrder:
    def test_for_over_set_flagged(self):
        findings = check("""
            def names(machines):
                out = []
                for name in set(machines):
                    out.append(name)
                return out
        """)
        assert rule_ids(findings) == ["DET105"]

    def test_comprehension_over_set_flagged(self):
        findings = check("""
            def table(machines):
                return {name: 0 for name in set(machines)}
        """)
        assert rule_ids(findings) == ["DET105"]

    def test_list_of_set_flagged(self):
        findings = check("""
            def names(machines):
                return list(set(machines))
        """)
        assert rule_ids(findings) == ["DET105"]

    def test_sorted_set_clean(self):
        findings = check("""
            def names(machines):
                return sorted(set(machines))
        """)
        assert findings == []

    def test_sorted_iteration_clean(self):
        findings = check("""
            def names(machines):
                return [n for n in sorted(set(machines))]
        """)
        assert findings == []


class TestShadowedRng:
    def test_fresh_rng_in_rng_function_flagged(self):
        findings = check("""
            import numpy as np

            def sample(shape, rng):
                fresh = np.random.default_rng(0)
                return fresh.normal(0, 1, shape)
        """, path=TEST)
        assert rule_ids(findings) == ["DET106"]

    def test_applies_to_test_code(self):
        # library_only=False: a test seeding `rng` but drawing from a
        # fresh generator is not testing what it says it tests
        findings = check("""
            import numpy as np

            def _build(rng=None):
                rng = np.random.default_rng(3)
                return rng
        """, path=TEST)
        assert rule_ids(findings) == ["DET106"]

    def test_resolve_rng_fallback_clean(self):
        findings = check("""
            from repro.runtime.rng import resolve_rng

            def sample(shape, rng=None):
                rng = resolve_rng(rng, "tests.sample")
                return rng.normal(0, 1, shape)
        """, path=TEST)
        assert findings == []

    def test_function_without_rng_param_not_det106(self):
        # near miss: fresh generator, but no rng contract to betray
        findings = check("""
            import numpy as np

            def sample(shape):
                return np.random.default_rng(0).normal(0, 1, shape)
        """, path=TEST)
        assert "DET106" not in rule_ids(findings)

    def test_nested_function_scope_is_separate(self):
        # the nested def takes no rng; the outer scope never constructs
        findings = check("""
            import numpy as np

            def outer(rng):
                def inner(seed):
                    return np.random.default_rng(seed)
                return inner
        """, path=TEST)
        assert "DET106" not in rule_ids(findings)

    def test_noqa_suppresses(self):
        findings = check("""
            import numpy as np

            def sample(rng):
                return np.random.default_rng(0)  # repro: noqa[DET106]
        """, path=TEST)
        assert findings == []


class TestWallClockTaint:
    def test_direct_timestamp_keyword_flagged(self):
        findings = check("""
            import time

            def stamp(Record):
                return Record(topic="t", timestamp=time.time(), value=1)
        """, path=TEST)
        assert rule_ids(findings) == ["DET107"]

    def test_taint_flows_through_assignments(self):
        # the poisoned value travels two hops before reaching the sink
        findings = check("""
            import time

            def stamp(Record):
                started = time.time()
                when = started
                return Record(topic="t", timestamp=when, value=1)
        """, path=TEST)
        assert rule_ids(findings) == ["DET107"]

    def test_attribute_assignment_flagged(self):
        findings = check("""
            import time

            def backdate(record):
                record.timestamp = time.time() - 60.0
        """, path=TEST)
        assert rule_ids(findings) == ["DET107"]

    def test_event_payload_flagged(self):
        findings = check("""
            import time

            def tick(runtime):
                runtime.events.emit("tick", at=time.time())
        """, path=TEST)
        assert rule_ids(findings) == ["DET107"]

    def test_loop_carried_taint_found(self):
        # the read happens textually *after* the propagation; the
        # two-pass fixpoint still catches the loop-carried flow
        findings = check("""
            import time

            def poll(Record, n):
                last = 0.0
                records = []
                for _ in range(n):
                    records.append(Record(topic="t", timestamp=last))
                    last = time.time()
                return records
        """, path=TEST)
        assert rule_ids(findings) == ["DET107"]

    def test_runtime_clock_clean(self):
        # near miss: same shape, but the value comes from the runtime
        findings = check("""
            def stamp(Record, runtime):
                return Record(topic="t", timestamp=runtime.now(), value=1)
        """, path=TEST)
        assert findings == []

    def test_wall_value_in_non_sink_clean(self):
        # measuring a duration into a local is DET104's business (and
        # only in library code), not a taint sink
        findings = check("""
            import time

            def measure(fn):
                start = time.time()
                fn()
                return time.time() - start
        """, path=TEST)
        assert "DET107" not in rule_ids(findings)

    def test_noqa_suppresses(self):
        findings = check("""
            import time

            def stamp(Record):
                return Record(timestamp=time.time())  # repro: noqa[DET107]
        """, path=TEST)
        assert findings == []
