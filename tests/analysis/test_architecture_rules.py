"""Fixture-tree tests for the architecture rule pack (ARCH5xx).

Graph rules need a multi-file project, so every case builds a small
tree on disk and runs :func:`analyze_paths` with the rule selected.
Each rule gets a true positive and a near-miss true negative.
"""

import textwrap

from repro.analysis import analyze_paths


def run(tmp_path, files, select):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    findings, _ = analyze_paths([str(tmp_path)], select=select)
    return findings


class TestUpwardImport:
    def test_runtime_importing_apps_flagged(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/runtime/core.py": "from repro.apps.city import main\n",
            "src/repro/apps/city.py": "def main():\n    return 0\n",
        }, ["ARCH501"])
        assert [f.rule for f in findings] == ["ARCH501"]
        assert "layer 0" in findings[0].message
        assert findings[0].path.endswith("src/repro/runtime/core.py")

    def test_downward_import_clean(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/apps/city.py": "from repro.runtime.core import now\n",
            "src/repro/runtime/core.py": "def now():\n    return 0\n",
        }, ["ARCH501"])
        assert findings == []

    def test_same_layer_sibling_clean(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/streaming/broker.py": "from repro.dfs.client import read\n",
            "src/repro/dfs/client.py": "def read(p):\n    return p\n",
        }, ["ARCH501"])
        assert findings == []

    def test_deferred_upward_import_still_flagged(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/nn/layers.py": """
                def misuse():
                    from repro.fog.pipeline import serve
                    return serve
            """,
            "src/repro/fog/pipeline.py": "def serve():\n    return 1\n",
        }, ["ARCH501"])
        assert [f.rule for f in findings] == ["ARCH501"]

    def test_noqa_suppresses_graph_finding(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/runtime/core.py":
                "from repro.apps.city import main  # repro: noqa[ARCH501]\n",
            "src/repro/apps/city.py": "def main():\n    return 0\n",
        }, ["ARCH501"])
        assert findings == []

    def test_test_code_exempt(self, tmp_path):
        findings = run(tmp_path, {
            "tests/runtime/test_core.py": "from repro.apps.city import main\n",
            "src/repro/apps/city.py": "def main():\n    return 0\n",
        }, ["ARCH501"])
        assert findings == []


class TestImportCycle:
    def test_toplevel_cycle_flagged_once(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/fog/a.py": "import repro.fog.b\n",
            "src/repro/fog/b.py": "import repro.fog.a\n",
        }, ["ARCH502"])
        assert [f.rule for f in findings] == ["ARCH502"]
        assert "repro.fog.a -> repro.fog.b -> repro.fog.a" \
            in findings[0].message

    def test_deferred_import_not_a_cycle(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/fog/a.py": "import repro.fog.b\n",
            "src/repro/fog/b.py":
                "def back():\n    import repro.fog.a\n    return repro.fog.a\n",
        }, ["ARCH502"])
        assert findings == []


class TestAnalysisStdlibOnly:
    def test_toplevel_third_party_import_flagged(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/analysis/helper.py": "import numpy\n",
        }, ["ARCH503"])
        assert [f.rule for f in findings] == ["ARCH503"]

    def test_project_import_outside_analysis_flagged(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/analysis/helper.py":
                "from repro.runtime.parallel import ParallelExecutor\n",
            "src/repro/runtime/parallel.py":
                "class ParallelExecutor:\n    pass\n",
        }, ["ARCH503"])
        assert [f.rule for f in findings] == ["ARCH503"]

    def test_deferred_gated_import_clean(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/analysis/helper.py": """
                import json

                def make_executor():
                    try:
                        from repro.runtime.parallel import ParallelExecutor
                    except ImportError:
                        return None
                    return ParallelExecutor()
            """,
            "src/repro/runtime/parallel.py":
                "class ParallelExecutor:\n    pass\n",
        }, ["ARCH503"])
        assert findings == []


class TestPrivateCrossImport:
    def test_cross_package_underscore_flagged(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/fog/pipeline.py":
                "from repro.streaming.broker import _compact\n",
            "src/repro/streaming/broker.py":
                "def _compact():\n    return 1\n",
        }, ["ARCH504"])
        assert [f.rule for f in findings] == ["ARCH504"]

    def test_same_package_underscore_clean(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/streaming/groups.py":
                "from repro.streaming.broker import _compact\n",
            "src/repro/streaming/broker.py":
                "def _compact():\n    return 1\n",
        }, ["ARCH504"])
        assert findings == []

    def test_dunder_import_clean(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/fog/pipeline.py":
                "from repro.streaming.broker import __version__\n",
            "src/repro/streaming/broker.py": "__version__ = '1'\n",
        }, ["ARCH504"])
        assert findings == []


class TestUnplacedPackage:
    def test_unknown_package_warned_once(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/mystery/alpha.py": "x = 1\n",
            "src/repro/mystery/beta.py": "y = 2\n",
        }, ["ARCH505"])
        assert [f.rule for f in findings] == ["ARCH505"]
        assert "mystery" in findings[0].message

    def test_bare_module_under_repro_clean(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/helpers.py": "x = 1\n",
        }, ["ARCH505"])
        assert findings == []

    def test_placed_package_clean(self, tmp_path):
        findings = run(tmp_path, {
            "src/repro/fog/pipeline.py": "x = 1\n",
        }, ["ARCH505"])
        assert findings == []
