"""The live observability endpoint over a real loopback socket."""

import asyncio
import json

import numpy as np

from repro.serving import GatewayConfig, ObservabilityServer, ServingGateway

from tests.serving.conftest import camera_frames


async def fetch(host, port, target, method="GET"):
    """One HTTP exchange; returns (status_code, body_bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"{method} {target} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, body


def serve_and_fetch(rt, targets, gateway=None, method="GET"):
    async def main():
        async with ObservabilityServer(runtime=rt, gateway=gateway) as server:
            return [await fetch(server.host, server.port, t, method=method)
                    for t in targets]
    return asyncio.run(main())


class TestRoutes:
    def test_healthz_reports_gateway_stats(self, rt, deployment, policy):
        gateway = ServingGateway(deployment, policy,
                                 GatewayConfig(coalesce_window_s=0.0))

        async def main():
            async with ObservabilityServer(runtime=rt,
                                           gateway=gateway) as server:
                async with gateway.running():
                    await gateway.submit(camera_frames(0, 3), tenant="cam")
                    return await fetch(server.host, server.port, "/healthz")
        status, body = asyncio.run(main())
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["answered"] == 1 and payload["submitted"] == 1

    def test_healthz_without_gateway_is_minimal(self, rt):
        (status, body), = serve_and_fetch(rt, ["/healthz"])
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_metrics_returns_the_full_runtime_dump(self, rt):
        rt.registry.counter("demo.hits", help="x").inc(7)
        (status, body), = serve_and_fetch(rt, ["/metrics"])
        payload = json.loads(body)
        assert status == 200
        assert payload["seed"] == 11
        assert payload["metrics"]["counters"]["demo.hits"][""] == 7.0

    def test_stream_emits_n_snapshots(self, rt):
        rt.registry.counter("demo.hits", help="x").inc(1)
        (status, body), = serve_and_fetch(
            rt, ["/metrics/stream?frames=3&interval_s=0"])
        assert status == 200
        lines = body.decode().strip().splitlines()
        assert len(lines) == 3
        snapshots = [json.loads(line) for line in lines]
        assert [s["sequence"] for s in snapshots] == [0, 1, 2]
        assert all(s["metrics"]["counters"]["demo.hits"][""] == 1.0
                   for s in snapshots)

    def test_stream_rejects_out_of_bounds_queries(self, rt):
        responses = serve_and_fetch(
            rt, ["/metrics/stream?frames=0",
                 "/metrics/stream?frames=nope",
                 "/metrics/stream?interval_s=9999"])
        assert [status for status, _ in responses] == [400, 400, 400]

    def test_spans_returns_the_parent_child_forest(self, rt):
        with rt.tracer.span("outer"):
            with rt.tracer.span("inner"):
                pass
        (status, body), = serve_and_fetch(rt, ["/spans"])
        forest = json.loads(body)
        assert status == 200
        assert [node["name"] for node in forest] == ["outer"]
        assert [child["name"] for child in forest[0]["children"]] == ["inner"]

    def test_unknown_route_is_404(self, rt):
        (status, body), = serve_and_fetch(rt, ["/nope"])
        assert status == 404

    def test_non_get_is_405(self, rt):
        (status, _), = serve_and_fetch(rt, ["/healthz"], method="POST")
        assert status == 405

    def test_ephemeral_port_binding(self, rt):
        async def main():
            server = ObservabilityServer(runtime=rt, port=0)
            host, port = await server.start()
            try:
                assert port != 0
                status, _ = await fetch(host, port, "/healthz")
                assert status == 200
            finally:
                await server.close()
        asyncio.run(main())
