"""Broker → gateway ingress: camera topics drained through the serving plane."""

import asyncio

import numpy as np
import pytest

from repro.serving import (
    GatewayConfig,
    ServingGateway,
    pump_topic,
    serve_camera_topic,
)
from repro.streaming.broker import Broker

from tests.serving.conftest import camera_frames

TOPIC = "camera.frames"
GROUP = "fog-serving"


def camera_bus(rt):
    bus = Broker(runtime=rt)
    bus.create_topic(TOPIC, partitions=2, share_ndarrays=True)
    return bus


def publish(bus, camera, frames):
    bus.produce_batch(TOPIC, [frame for frame in frames],
                      key_fn=lambda frame: camera)


class TestServeCameraTopic:
    def test_every_frame_is_decided_and_committed(self, rt, deployment,
                                                  policy):
        bus = camera_bus(rt)
        publish(bus, "cam-a", camera_frames(0, 6))
        publish(bus, "cam-b", camera_frames(1, 4))
        served = serve_camera_topic(deployment, policy, bus, TOPIC)
        assert sorted(served) == ["cam-a", "cam-b"]
        assert sum(len(d.predictions) for d in served["cam-a"]) == 6
        assert sum(len(d.predictions) for d in served["cam-b"]) == 4
        assert bus.lag(GROUP, TOPIC) == 0

    def test_matches_the_raw_deployment_path(self, rt, deployment, policy):
        bus = camera_bus(rt)
        frames = camera_frames(2, 5)
        publish(bus, "cam-a", frames)
        served = serve_camera_topic(deployment, policy, bus, TOPIC)
        direct = deployment.serve_batched(np.stack(list(frames)), policy)
        assert np.array_equal(served["cam-a"][0].predictions,
                              direct.predictions)

    def test_second_drain_is_empty(self, rt, deployment, policy):
        bus = camera_bus(rt)
        publish(bus, "cam-a", camera_frames(3, 3))
        assert serve_camera_topic(deployment, policy, bus, TOPIC)
        assert serve_camera_topic(deployment, policy, bus, TOPIC) == {}


class TestPumpTopic:
    def test_shed_cameras_are_counted_and_still_committed(self, rt,
                                                          deployment, policy):
        bus = camera_bus(rt)
        publish(bus, "cam-a", camera_frames(0, 4))
        publish(bus, "cam-b", camera_frames(1, 4))
        # cam-a (sorted first) fills the queue; cam-b is shed for overload
        config = GatewayConfig(coalesce_window_s=0.0, max_queue_rows=4)

        async def main():
            gateway = ServingGateway(deployment, policy, config, runtime=rt)
            async with gateway.running():
                return await pump_topic(gateway, bus, TOPIC)
        served, shed = asyncio.run(main())
        assert sorted(served) == ["cam-a"]
        assert shed == {"cam-b": 1}
        assert bus.lag(GROUP, TOPIC) == 0      # sheds are deliberate drops

    def test_batch_failure_aborts_without_committing(self, rt, policy):
        class ExplodingDeployment:
            def serve_batched(self, x, policy, batch_size=None):
                raise RuntimeError("fabric down")

        bus = camera_bus(rt)
        publish(bus, "cam-a", camera_frames(0, 3))

        async def main():
            gateway = ServingGateway(ExplodingDeployment(), policy,
                                     GatewayConfig(coalesce_window_s=0.0),
                                     runtime=rt)
            async with gateway.running():
                return await pump_topic(gateway, bus, TOPIC)
        with pytest.raises(RuntimeError, match="fabric down"):
            asyncio.run(main())
        assert bus.lag(GROUP, TOPIC) == 3      # poisoned poll is redelivered


class TestPipelinedPump:
    def test_multiple_polls_all_served_and_committed(self, rt, deployment,
                                                     policy):
        # poll_size 2 forces four pipelined poll→submit→commit rounds
        bus = camera_bus(rt)
        publish(bus, "cam-a", camera_frames(0, 8))

        async def main():
            gateway = ServingGateway(
                deployment, policy,
                GatewayConfig(coalesce_window_s=0.0, max_batch_rows=2,
                              max_queue_rows=64), runtime=rt)
            async with gateway.running():
                return await pump_topic(gateway, bus, TOPIC, poll_size=2)

        served, shed = asyncio.run(main())
        assert shed == {}
        assert sum(len(d.predictions) for d in served["cam-a"]) == 8
        assert len(served["cam-a"]) == 4       # one decision per poll
        assert bus.lag(GROUP, TOPIC) == 0

    def test_failure_in_later_poll_keeps_earlier_commits(self, rt,
                                                         deployment, policy):
        """Read-ahead must not over-commit: when poll N fails, poll N-1
        stays committed and everything from poll N on is redelivered."""
        bus = camera_bus(rt)
        publish(bus, "cam-a", camera_frames(0, 6))
        calls = {"n": 0}
        real = deployment.serve_batched

        def flaky(x, policy, batch_size=None):
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("fabric down")
            return real(x, policy, batch_size=batch_size)

        deployment.serve_batched = flaky

        async def main():
            gateway = ServingGateway(
                deployment, policy,
                GatewayConfig(coalesce_window_s=0.0, max_batch_rows=2,
                              max_queue_rows=64), runtime=rt)
            async with gateway.running():
                return await pump_topic(gateway, bus, TOPIC, poll_size=2)

        with pytest.raises(RuntimeError, match="fabric down"):
            asyncio.run(main())
        # first poll (2 frames) committed; the poisoned poll and the
        # prefetched one behind it are both redelivered
        assert bus.lag(GROUP, TOPIC) == 4

    def test_poll_spans_are_sampled(self, rt, deployment, policy):
        bus = camera_bus(rt)
        publish(bus, "cam-a", camera_frames(0, 8))

        async def main():
            gateway = ServingGateway(
                deployment, policy,
                GatewayConfig(coalesce_window_s=0.0, max_batch_rows=8,
                              max_queue_rows=64), runtime=rt)
            async with gateway.running():
                return await pump_topic(gateway, bus, TOPIC, poll_size=2)

        asyncio.run(main())
        # 6 polls issued (4 full, 1 trailing, 1 empty prefetch) but only
        # every 16th is a real span: exactly the first
        assert len(rt.tracer.spans("serving.ingest.poll")) == 1
