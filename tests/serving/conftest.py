"""Shared fixtures for the serving-plane tests: a tiny deployed model."""

import numpy as np
import pytest

from repro import nn
from repro.fog.deployment import TwoTierDeployment
from repro.fog.policies import ScoreThresholdPolicy
from repro.nn.models.earlyexit import EarlyExitNetwork
from repro.runtime import Runtime, using_runtime


def build_model(rng=None, num_classes=3):
    return EarlyExitNetwork(
        local_stage=nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng), nn.ReLU()),
        local_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(4, num_classes, rng=rng)),
        remote_stage=nn.Sequential(
            nn.Conv2d(4, 8, 3, padding=1, rng=rng), nn.ReLU()),
        remote_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(8, num_classes, rng=rng)))


def camera_frames(seed, n):
    return np.random.default_rng(seed).normal(size=(n, 1, 8, 8))


@pytest.fixture
def rt():
    with using_runtime(Runtime(seed=11)) as runtime:
        yield runtime


@pytest.fixture
def deployment(rt):
    trained = build_model(rt.rng.np_child("serving.model"))
    deployed = TwoTierDeployment(build_model,
                                 ["local_stage", "local_head"],
                                 ["remote_stage", "remote_head"])
    deployed.deploy(trained)
    return deployed


@pytest.fixture
def policy():
    return ScoreThresholdPolicy(0.45)
