"""The serving gateway: coalescing, shedding, slicing, exactly-once answers."""

import asyncio

import numpy as np
import pytest

from repro.serving import (
    SHED_QUEUE_FULL,
    SHED_RATE_LIMIT,
    SHED_SHUTDOWN,
    GatewayConfig,
    ServingGateway,
    ShedError,
    split_decisions,
)
from repro.serving.gateway import VOLATILE_METRIC_PREFIXES

from tests.serving.conftest import camera_frames


def drive(gateway, submissions):
    """Run the gateway over ``submissions`` [(tenant, frames), ...].

    All submissions are in flight concurrently; returns one outcome per
    submission (decisions or the raised exception).
    """
    async def main():
        async with gateway.running():
            return await asyncio.gather(
                *(gateway.submit(frames, tenant=tenant)
                  for tenant, frames in submissions),
                return_exceptions=True)
    return asyncio.run(main())


class TestCoalescing:
    def test_answers_match_the_direct_path(self, rt, deployment, policy):
        frames = camera_frames(0, 12)
        gateway = ServingGateway(deployment, policy,
                                 GatewayConfig(coalesce_window_s=0.0))
        results = drive(gateway, [("t", frames[i:i + 3])
                                  for i in range(0, 12, 3)])
        direct = deployment.serve_batched(frames, policy)
        merged = np.concatenate([r.predictions for r in results])
        assert np.array_equal(merged, direct.predictions)
        assert np.array_equal(
            np.concatenate([r.exit_index for r in results]),
            direct.exit_index)

    def test_concurrent_requests_coalesce_into_one_batch(self, rt, deployment,
                                                         policy):
        gateway = ServingGateway(deployment, policy,
                                 GatewayConfig(coalesce_window_s=0.0,
                                               max_batch_rows=64))
        drive(gateway, [("t", camera_frames(i, 2)) for i in range(5)])
        assert gateway.stats()["batches"] == 1

    def test_max_batch_rows_splits_batches(self, rt, deployment, policy):
        gateway = ServingGateway(deployment, policy,
                                 GatewayConfig(coalesce_window_s=0.0,
                                               max_batch_rows=4))
        drive(gateway, [("t", camera_frames(i, 2)) for i in range(5)])
        assert gateway.stats()["batches"] == 3          # 4 + 4 + 2 rows

    def test_oversized_request_forms_its_own_batch(self, rt, deployment,
                                                   policy):
        gateway = ServingGateway(deployment, policy,
                                 GatewayConfig(coalesce_window_s=0.0,
                                               max_batch_rows=2,
                                               max_queue_rows=64))
        results = drive(gateway, [("t", camera_frames(0, 6))])
        assert len(results[0].predictions) == 6
        assert gateway.stats()["batches"] == 1

    def test_zero_row_request_is_answered(self, rt, deployment, policy):
        gateway = ServingGateway(deployment, policy,
                                 GatewayConfig(coalesce_window_s=0.0))
        results = drive(gateway, [("t", camera_frames(0, 0)),
                                  ("t", camera_frames(1, 3))])
        assert len(results[0].predictions) == 0
        assert results[0].local_logits.shape == (0, 3)
        assert len(results[1].predictions) == 3

    def test_positive_window_still_answers_everything(self, rt, deployment,
                                                      policy):
        gateway = ServingGateway(deployment, policy,
                                 GatewayConfig(coalesce_window_s=0.005))
        results = drive(gateway, [("t", camera_frames(i, 2))
                                  for i in range(4)])
        assert all(len(r.predictions) == 2 for r in results)
        assert gateway.answered == 4


class TestShedding:
    def test_queue_full_sheds_the_overflow(self, rt, deployment, policy):
        gateway = ServingGateway(deployment, policy,
                                 GatewayConfig(coalesce_window_s=0.0,
                                               max_queue_rows=4))
        results = drive(gateway, [("t", camera_frames(i, 2))
                                  for i in range(5)])
        shed = [r for r in results if isinstance(r, ShedError)]
        answered = [r for r in results if not isinstance(r, BaseException)]
        assert shed and all(e.reason == SHED_QUEUE_FULL for e in shed)
        assert len(shed) + len(answered) == 5
        stats = gateway.stats()
        assert stats["submitted"] == stats["answered"] + stats["shed"]

    def test_rate_limit_sheds_per_tenant(self, rt, deployment, policy):
        gateway = ServingGateway(
            deployment, policy,
            GatewayConfig(coalesce_window_s=0.0, tenant_rate=1.0,
                          tenant_burst=2.0))
        results = drive(gateway, [("a", camera_frames(0, 2)),
                                  ("a", camera_frames(1, 2)),
                                  ("b", camera_frames(2, 2))])
        assert not isinstance(results[0], BaseException)
        assert isinstance(results[1], ShedError)
        assert results[1].reason == SHED_RATE_LIMIT
        assert not isinstance(results[2], BaseException)   # own bucket

    def test_submit_after_close_sheds_shutdown(self, rt, deployment, policy):
        gateway = ServingGateway(deployment, policy)

        async def main():
            async with gateway.running():
                pass
            with pytest.raises(ShedError) as caught:
                await gateway.submit(camera_frames(0, 2), tenant="t")
            return caught.value
        error = asyncio.run(main())
        assert error.reason == SHED_SHUTDOWN

    def test_close_drains_admitted_work(self, rt, deployment, policy):
        gateway = ServingGateway(deployment, policy,
                                 GatewayConfig(coalesce_window_s=0.0))

        async def main():
            await gateway.start()
            tasks = [asyncio.ensure_future(
                gateway.submit(camera_frames(i, 2), tenant="t"))
                for i in range(3)]
            await asyncio.sleep(0)          # let the submissions enqueue
            await gateway.close()
            return await asyncio.gather(*tasks)
        results = asyncio.run(main())
        assert all(len(r.predictions) == 2 for r in results)


class TestFailures:
    def test_batch_failure_resolves_every_member(self, rt, policy):
        class ExplodingDeployment:
            def serve_batched(self, x, policy, batch_size=None):
                raise RuntimeError("fabric down")

        gateway = ServingGateway(ExplodingDeployment(), policy,
                                 GatewayConfig(coalesce_window_s=0.0))
        results = drive(gateway, [("t", camera_frames(i, 2))
                                  for i in range(3)])
        assert all(isinstance(r, RuntimeError) for r in results)
        stats = gateway.stats()
        assert stats["failed"] == 3
        assert stats["submitted"] == stats["failed"] + stats["answered"]

    def test_failure_does_not_poison_later_batches(self, rt, deployment,
                                                   policy):
        class FlakyDeployment:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def serve_batched(self, x, policy, batch_size=None):
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("first batch dies")
                return self.inner.serve_batched(x, policy,
                                                batch_size=batch_size)

        gateway = ServingGateway(FlakyDeployment(deployment), policy,
                                 GatewayConfig(coalesce_window_s=0.0,
                                               max_batch_rows=2))
        results = drive(gateway, [("t", camera_frames(i, 2))
                                  for i in range(3)])
        assert isinstance(results[0], RuntimeError)
        assert all(len(r.predictions) == 2 for r in results[1:])


class TestSplitDecisions:
    def test_roundtrips_concatenate(self, rt, deployment, policy):
        frames = camera_frames(3, 9)
        whole = deployment.serve_batched(frames, policy)
        parts = split_decisions(whole, [4, 0, 5])
        assert [len(p) for p in parts] == [4, 0, 5]
        for part, start in zip(parts, (0, 4, 4)):
            stop = start + len(part)
            assert np.array_equal(part.predictions,
                                  whole.predictions[start:stop])
            expected_remote = [int(r) - start for r in whole.remote_rows
                               if start <= r < stop]
            assert part.remote_rows.tolist() == expected_remote
            if expected_remote:
                assert part.remote_logits is not None
                assert len(part.remote_logits) == len(expected_remote)
            else:
                assert part.remote_logits is None

    def test_row_count_mismatch_is_an_error(self, rt, deployment, policy):
        whole = deployment.serve_batched(camera_frames(4, 4), policy)
        with pytest.raises(ValueError):
            split_decisions(whole, [2, 3])


class TestConfigAndMetrics:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(coalesce_window_s=-1.0)
        with pytest.raises(ValueError):
            GatewayConfig(max_batch_rows=0)
        with pytest.raises(ValueError):
            GatewayConfig(max_queue_rows=0)
        with pytest.raises(ValueError):
            GatewayConfig(batch_size=0)

    def test_gateway_metrics_are_recorded(self, rt, deployment, policy):
        gateway = ServingGateway(deployment, policy,
                                 GatewayConfig(coalesce_window_s=0.0))
        drive(gateway, [("t", camera_frames(i, 2)) for i in range(3)])
        dump = rt.registry.dump()
        counters = dump["counters"]
        assert counters["serving.gateway.submitted"]["tenant=t"] == 3
        assert counters["serving.gateway.answered"]["tenant=t"] == 3
        assert counters["serving.gateway.rows_served"][""] == 6
        assert dump["gauges"]["serving.gateway.queue_rows"][""] == 0
        latency = dump["histograms"]["serving.gateway.latency_s"]
        assert latency["tenant=t"]["count"] == 3
        assert any("serving.gateway.latency_s".startswith(p)
                   for p in VOLATILE_METRIC_PREFIXES)

    def test_batch_spans_nest(self, rt, deployment, policy):
        gateway = ServingGateway(deployment, policy,
                                 GatewayConfig(coalesce_window_s=0.0))
        drive(gateway, [("t", camera_frames(0, 2))])
        batch = rt.tracer.spans("serving.gateway.batch")
        infer = rt.tracer.spans("serving.gateway.infer")
        assert len(batch) == 1 and len(infer) == 1
        assert infer[0].parent_id == batch[0].span_id
