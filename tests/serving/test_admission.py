"""Admission control: token buckets and queue bounds under a fake clock."""

import pytest

from repro.serving.admission import (
    SHED_QUEUE_FULL,
    SHED_RATE_LIMIT,
    AdmissionController,
    ShedError,
    TokenBucket,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        assert bucket.available() == 5.0
        assert bucket.try_acquire(5.0)
        assert not bucket.try_acquire(1.0)

    def test_refills_at_rate_up_to_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        assert bucket.try_acquire(5.0)
        clock.now = 0.2                     # 2 tokens back
        assert bucket.try_acquire(2.0)
        assert not bucket.try_acquire(0.5)
        clock.now = 100.0                   # capped at burst
        assert bucket.available() == 5.0

    def test_clock_going_backwards_does_not_refund(self):
        clock = FakeClock(start=10.0)
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire(2.0)
        clock.now = 5.0
        assert bucket.available() == 0.0

    def test_validation(self):
        clock = FakeClock()
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0, clock=clock)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0, clock=clock)
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        with pytest.raises(ValueError):
            bucket.try_acquire(-1.0)


class TestAdmissionController:
    def test_admits_within_bounds(self):
        controller = AdmissionController(max_queue_rows=10,
                                         clock=FakeClock())
        assert controller.admit("a", 4, queued_rows=0) is None
        assert controller.admit("a", 10, queued_rows=0) is None

    def test_queue_full(self):
        controller = AdmissionController(max_queue_rows=10,
                                         clock=FakeClock())
        assert controller.admit("a", 4, queued_rows=8) == SHED_QUEUE_FULL

    def test_oversized_request_is_never_admissible(self):
        controller = AdmissionController(max_queue_rows=10,
                                         clock=FakeClock())
        assert controller.admit("a", 11, queued_rows=0) == SHED_QUEUE_FULL

    def test_rate_limit_per_tenant(self):
        controller = AdmissionController(max_queue_rows=100, tenant_rate=1.0,
                                         tenant_burst=4.0, clock=FakeClock())
        assert controller.admit("a", 4, queued_rows=0) is None
        assert controller.admit("a", 1, queued_rows=0) == SHED_RATE_LIMIT
        # an independent tenant has its own bucket
        assert controller.admit("b", 4, queued_rows=0) is None

    def test_queue_check_does_not_burn_tokens(self):
        controller = AdmissionController(max_queue_rows=4, tenant_rate=1.0,
                                         tenant_burst=4.0, clock=FakeClock())
        assert controller.admit("a", 4, queued_rows=4) == SHED_QUEUE_FULL
        # the overload shed above must not have consumed tenant tokens
        assert controller.admit("a", 4, queued_rows=0) is None

    def test_zero_row_request_skips_the_bucket(self):
        controller = AdmissionController(max_queue_rows=4, tenant_rate=1.0,
                                         tenant_burst=1.0, clock=FakeClock())
        assert controller.admit("a", 1, queued_rows=0) is None
        assert controller.admit("a", 0, queued_rows=0) is None

    def test_default_burst_is_one_second_of_rate(self):
        controller = AdmissionController(max_queue_rows=100, tenant_rate=8.0,
                                         clock=FakeClock())
        assert controller.bucket("a").burst == 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_rows=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_rows=1, tenant_burst=4.0)


def test_shed_error_carries_tenant_and_reason():
    error = ShedError("cam-a", SHED_RATE_LIMIT, "4 rows")
    assert error.tenant == "cam-a"
    assert error.reason == SHED_RATE_LIMIT
    assert "cam-a" in str(error) and "rate_limit" in str(error)
