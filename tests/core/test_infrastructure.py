"""Tests for the assembled cyberinfrastructure (Figs. 1 and 4)."""

import json

import pytest

from repro.core import CyberInfrastructure, InfraConfig
from repro.data import OpenCityData, TweetGenerator, WazeGenerator


def small_infra():
    return CyberInfrastructure(InfraConfig(
        edges_per_fog=2, fogs_per_server=2, servers=1,
        datanodes=3, dfs_replication=2))


class TestConfig:
    def test_defaults_valid(self):
        CyberInfrastructure()

    def test_rejects_impossible_replication(self):
        with pytest.raises(ValueError):
            InfraConfig(datanodes=1, dfs_replication=3)


class TestLayers:
    def test_hardware_layer_counts(self):
        infra = small_infra()
        layers = infra.describe_layers()
        hardware = layers["hardware"]
        assert hardware["edge_devices"] == 4
        assert hardware["fog_nodes"] == 2
        assert hardware["analysis_servers"] == 1
        assert hardware["cloud_nodes"] == 1
        assert hardware["yarn_vcores"] == 8

    def test_software_layer_inventory(self):
        infra = small_infra()
        infra.htable("videos", families=("meta",))
        infra.collection("tweets")
        layers = infra.describe_layers()
        assert "videos" in layers["software"]["htables"]
        assert "tweets" in layers["software"]["collections"]

    def test_application_layer_lists_apps(self):
        apps = small_infra().describe_layers()["application"]["supported"]
        assert "vehicle-detection" in apps
        assert "social-network-analysis" in apps

    def test_htable_reuse(self):
        infra = small_infra()
        assert infra.htable("t") is infra.htable("t")


class TestSources:
    def test_register_creates_topic(self):
        infra = small_infra()
        infra.register_source("tweets", lambda: [])
        assert "tweets" in infra.bus.topic_names()
        assert infra.source_names() == ["tweets"]

    def test_duplicate_source_rejected(self):
        infra = small_infra()
        infra.register_source("tweets", lambda: [])
        with pytest.raises(ValueError):
            infra.register_source("tweets", lambda: [])

    def test_pipeline_without_sources_rejected(self):
        with pytest.raises(RuntimeError):
            small_infra().run_collection_pipeline()


class TestCollectionPipeline:
    def build(self):
        infra = small_infra()
        city = OpenCityData(seed=0)
        tweets = TweetGenerator(seed=0)
        waze = WazeGenerator(seed=0)
        crime_records = city.crime_incidents(days=5)
        infra.register_source("crimes", lambda: crime_records)
        infra.register_source(
            "tweets", lambda: [t.as_document() for t in tweets.chatter(40)])
        infra.register_source("waze", lambda: waze.reports(30))
        return infra, crime_records

    def test_all_records_ingested_and_stored(self):
        infra, crime_records = self.build()
        report = infra.run_collection_pipeline()
        assert report.records_ingested["crimes"] == len(crime_records)
        assert report.records_stored["crimes"] == len(crime_records)
        assert report.records_ingested["tweets"] == 40
        assert report.records_ingested["waze"] == 30
        assert report.total_ingested == len(crime_records) + 70

    def test_records_queryable_after_pipeline(self):
        infra, crime_records = self.build()
        infra.run_collection_pipeline()
        stored = infra.collection("crimes").count({"kind": "crime"})
        assert stored == len(crime_records)

    def test_bus_carries_copies(self):
        infra, crime_records = self.build()
        infra.run_collection_pipeline()
        consumer = infra.bus.consumer("analytics", ["crimes"])
        assert len(consumer.drain()) == len(crime_records)

    def test_analysis_aggregates_districts(self):
        infra, _ = self.build()
        report = infra.run_collection_pipeline(analysis_field="district")
        assert report.analysis_rows == 6  # six districts

    def test_visualization_produced(self):
        infra, _ = self.build()
        report = infra.run_collection_pipeline()
        assert report.viz_bytes > 0
        assert infra.last_visualization.startswith("<svg")

    def test_pipeline_idempotent_topics(self):
        infra, _ = self.build()
        infra.run_collection_pipeline()
        report = infra.run_collection_pipeline()
        assert report.total_ingested > 0  # second pass re-collects
