"""Tests for the assembled cyberinfrastructure (Figs. 1 and 4)."""

import json

import numpy as np
import pytest

from repro import nn
from repro.core import CyberInfrastructure, InfraConfig
from repro.data import OpenCityData, TweetGenerator, WazeGenerator
from repro.fog import TwoTierDeployment
from repro.fog.policies import ScoreThresholdPolicy
from repro.nn.models.earlyexit import EarlyExitNetwork


def small_infra():
    return CyberInfrastructure(InfraConfig(
        edges_per_fog=2, fogs_per_server=2, servers=1,
        datanodes=3, dfs_replication=2))


class TestConfig:
    def test_defaults_valid(self):
        CyberInfrastructure()

    def test_rejects_impossible_replication(self):
        with pytest.raises(ValueError):
            InfraConfig(datanodes=1, dfs_replication=3)


class TestLayers:
    def test_hardware_layer_counts(self):
        infra = small_infra()
        layers = infra.describe_layers()
        hardware = layers["hardware"]
        assert hardware["edge_devices"] == 4
        assert hardware["fog_nodes"] == 2
        assert hardware["analysis_servers"] == 1
        assert hardware["cloud_nodes"] == 1
        assert hardware["yarn_vcores"] == 8

    def test_software_layer_inventory(self):
        infra = small_infra()
        infra.htable("videos", families=("meta",))
        infra.collection("tweets")
        layers = infra.describe_layers()
        assert "videos" in layers["software"]["htables"]
        assert "tweets" in layers["software"]["collections"]

    def test_application_layer_lists_apps(self):
        apps = small_infra().describe_layers()["application"]["supported"]
        assert "vehicle-detection" in apps
        assert "social-network-analysis" in apps

    def test_htable_reuse(self):
        infra = small_infra()
        assert infra.htable("t") is infra.htable("t")


class TestSources:
    def test_register_creates_topic(self):
        infra = small_infra()
        infra.register_source("tweets", lambda: [])
        assert "tweets" in infra.bus.topic_names()
        assert infra.source_names() == ["tweets"]

    def test_duplicate_source_rejected(self):
        infra = small_infra()
        infra.register_source("tweets", lambda: [])
        with pytest.raises(ValueError):
            infra.register_source("tweets", lambda: [])

    def test_pipeline_without_sources_rejected(self):
        with pytest.raises(RuntimeError):
            small_infra().run_collection_pipeline()


class TestCollectionPipeline:
    def build(self):
        infra = small_infra()
        city = OpenCityData(seed=0)
        tweets = TweetGenerator(seed=0)
        waze = WazeGenerator(seed=0)
        crime_records = city.crime_incidents(days=5)
        infra.register_source("crimes", lambda: crime_records)
        infra.register_source(
            "tweets", lambda: [t.as_document() for t in tweets.chatter(40)])
        infra.register_source("waze", lambda: waze.reports(30))
        return infra, crime_records

    def test_all_records_ingested_and_stored(self):
        infra, crime_records = self.build()
        report = infra.run_collection_pipeline()
        assert report.records_ingested["crimes"] == len(crime_records)
        assert report.records_stored["crimes"] == len(crime_records)
        assert report.records_ingested["tweets"] == 40
        assert report.records_ingested["waze"] == 30
        assert report.total_ingested == len(crime_records) + 70

    def test_records_queryable_after_pipeline(self):
        infra, crime_records = self.build()
        infra.run_collection_pipeline()
        stored = infra.collection("crimes").count({"kind": "crime"})
        assert stored == len(crime_records)

    def test_bus_carries_copies(self):
        infra, crime_records = self.build()
        infra.run_collection_pipeline()
        consumer = infra.bus.consumer("analytics", ["crimes"])
        assert len(consumer.drain()) == len(crime_records)

    def test_analysis_aggregates_districts(self):
        infra, _ = self.build()
        report = infra.run_collection_pipeline(analysis_field="district")
        assert report.analysis_rows == 6  # six districts

    def test_visualization_produced(self):
        infra, _ = self.build()
        report = infra.run_collection_pipeline()
        assert report.viz_bytes > 0
        assert infra.last_visualization.startswith("<svg")

    def test_pipeline_idempotent_topics(self):
        infra, _ = self.build()
        infra.run_collection_pipeline()
        report = infra.run_collection_pipeline()
        assert report.total_ingested > 0  # second pass re-collects


def camera_network(seed):
    rng = np.random.default_rng(seed)
    return EarlyExitNetwork(
        local_stage=nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng), nn.ReLU()),
        local_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(4, 3, rng=rng)),
        remote_stage=nn.Sequential(
            nn.Conv2d(4, 8, 3, padding=1, rng=rng), nn.ReLU()),
        remote_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(8, 3, rng=rng)))


def camera_deployment():
    deployment = TwoTierDeployment(
        lambda: camera_network(seed=99),
        local_modules=["local_stage", "local_head"],
        remote_modules=["remote_stage", "remote_head"])
    deployment.deploy(camera_network(seed=1))
    return deployment


def camera_frames(seed, n):
    rng = np.random.default_rng(seed)
    return [rng.normal(0.0, 1.0, (1, 8, 8)) for _ in range(n)]


class TestCameraFogGlue:
    """Camera frames ride the broker into the two-tier fog deployment."""

    def test_frames_topic_is_bounded_and_shared(self):
        infra = small_infra()
        topic = infra.attach_camera_feed()
        config = infra.bus.topic_config(topic)
        assert config.share_ndarrays
        assert config.max_partition_records == \
            infra.config.camera_partition_capacity
        infra.attach_camera_feed()  # idempotent

    def test_publish_then_serve_decides_every_frame(self):
        infra = small_infra()
        assert infra.publish_camera_frames("cam-a", camera_frames(0, 6)) == 6
        assert infra.publish_camera_frames("cam-b", camera_frames(1, 4)) == 4
        served = infra.serve_camera_streams(
            camera_deployment(), ScoreThresholdPolicy(0.45))
        assert sorted(served) == ["cam-a", "cam-b"]
        assert sum(len(d.predictions) for d in served["cam-a"]) == 6
        assert sum(len(d.predictions) for d in served["cam-b"]) == 4
        assert infra.bus.lag("fog-serving", infra.CAMERA_TOPIC) == 0

    def test_offsets_commit_so_second_serve_is_empty(self):
        infra = small_infra()
        infra.publish_camera_frames("cam-a", camera_frames(2, 3))
        deployment = camera_deployment()
        policy = ScoreThresholdPolicy(0.45)
        assert infra.serve_camera_streams(deployment, policy)
        assert infra.serve_camera_streams(deployment, policy) == {}

    def test_serving_matches_direct_deployment_call(self):
        infra = small_infra()
        frames = camera_frames(3, 5)
        infra.publish_camera_frames("cam-a", frames)
        deployment = camera_deployment()
        policy = ScoreThresholdPolicy(0.45)
        direct = deployment.serve_streams([np.stack(frames)], policy)
        served = infra.serve_camera_streams(deployment, policy)
        assert np.array_equal(served["cam-a"][0].predictions,
                              direct[0].predictions)
        assert np.array_equal(served["cam-a"][0].exit_index,
                              direct[0].exit_index)
