"""Tests for storage/ingest capacity planning."""

import pytest

from repro.core.capacity import AnnotationProfile, CapacityPlanner
from repro.data import Camera, CameraRegistry, build_dotd_registry


def small_registry(fps=10, cameras=4):
    return CameraRegistry([
        Camera(f"c{i}", "X", "I-0", 0.0, 0.0, fps, 100, 100)
        for i in range(cameras)
    ])


class TestAnnotationProfile:
    def test_validates(self):
        with pytest.raises(ValueError):
            AnnotationProfile(annotated_fraction=1.5)
        with pytest.raises(ValueError):
            AnnotationProfile(bytes_per_annotation=0)


class TestRawTier:
    def test_rates_from_registry(self):
        planner = CapacityPlanner(small_registry())
        # 4 cameras x 10 fps x 100*100*3 bytes
        assert planner.raw_bytes_per_second == 4 * 10 * 30_000
        assert planner.frames_per_second == 40

    def test_retention_formula(self):
        planner = CapacityPlanner(small_registry())
        one_minute = planner.raw_bytes_per_second * 60
        assert planner.raw_retention_seconds(one_minute) == pytest.approx(60)

    def test_retention_inverse(self):
        planner = CapacityPlanner(small_registry())
        storage = planner.raw_storage_for_retention(3600)
        assert planner.raw_retention_seconds(storage) == pytest.approx(3600)

    def test_empty_registry_infinite_retention(self):
        planner = CapacityPlanner(CameraRegistry([]))
        assert planner.raw_retention_seconds(1e9) == float("inf")

    def test_validates(self):
        planner = CapacityPlanner(small_registry())
        with pytest.raises(ValueError):
            planner.raw_retention_seconds(-1)
        with pytest.raises(ValueError):
            planner.raw_storage_for_retention(-1)
        with pytest.raises(ValueError):
            planner.annotated_storage_for_days(-1)


class TestAnnotatedTier:
    def test_annotation_rate(self):
        profile = AnnotationProfile(annotated_fraction=0.1,
                                    bytes_per_annotation=100)
        planner = CapacityPlanner(small_registry(), profile)
        assert planner.annotation_bytes_per_second == 40 * 0.1 * 100

    def test_compression_factor_is_large(self):
        planner = CapacityPlanner(small_registry())
        # Raw pixels vs sparse 512-byte annotations: orders of magnitude.
        assert planner.compression_factor > 1000

    def test_zero_annotation_rate_infinite_compression(self):
        profile = AnnotationProfile(annotated_fraction=0.0)
        planner = CapacityPlanner(small_registry(), profile)
        assert planner.compression_factor == float("inf")


class TestPaperScaleReport:
    def test_dotd_sizing_story(self):
        planner = CapacityPlanner(build_dotd_registry(seed=0))
        report = planner.report(raw_buffer_bytes=10e12, retention_days=365)
        assert report["cameras"] > 200
        # ~3.8 GB/s raw: a 10 TB buffer holds well under a day of video —
        # the paper's reason raw data cannot be kept long-term.
        assert report["raw_buffer_hours"] < 24
        # ...while a year of annotations (a few TB) fits in a modest
        # store, versus ~120 PB/year of raw video: a ~36,000x reduction.
        assert report["annotated_gb_per_year"] < 5000
        assert report["compression_factor"] > 10_000
