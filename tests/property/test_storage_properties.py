"""Property-based tests for the DFS, HBase and document-store substrates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfs import DistributedFileSystem
from repro.nosql import Collection, HTable

FILE_CONTENT = st.binary(min_size=0, max_size=500)
ROW_KEYS = st.text(alphabet="abcdef", min_size=1, max_size=4)
VALUES = st.binary(min_size=0, max_size=20)


@settings(max_examples=25, deadline=None)
@given(st.dictionaries(st.text(alphabet="abc/", min_size=1, max_size=8),
                       FILE_CONTENT, min_size=1, max_size=8),
       st.integers(8, 64))
def test_dfs_roundtrip_arbitrary_files(files, block_size):
    dfs = DistributedFileSystem.with_datanodes(
        4, replication=2, block_size=block_size)
    for path, content in files.items():
        dfs.create("/" + path, content)
    for path, content in files.items():
        assert dfs.read("/" + path) == content


@settings(max_examples=20, deadline=None)
@given(FILE_CONTENT, st.integers(0, 3), st.integers(8, 32))
def test_dfs_reads_survive_up_to_replication_minus_one_failures(
        content, failures, block_size):
    replication = 3
    dfs = DistributedFileSystem.with_datanodes(
        6, replication=replication, block_size=block_size)
    dfs.create("/file", content)
    victims = [f"datanode-{i}" for i in range(min(failures, replication - 1))]
    for victim in victims:
        dfs.fail_datanode(victim)
    assert dfs.read("/file") == content


@settings(max_examples=20, deadline=None)
@given(st.lists(FILE_CONTENT, min_size=1, max_size=5), st.integers(0, 1000))
def test_dfs_re_replication_restores_full_health(contents, seed):
    dfs = DistributedFileSystem.with_datanodes(
        6, replication=2, block_size=32)
    for index, content in enumerate(contents):
        dfs.create(f"/f{index}", content)
    rng = np.random.default_rng(seed)
    victim = f"datanode-{int(rng.integers(6))}"
    dfs.fail_datanode(victim)
    dfs.re_replicate()
    assert dfs.under_replicated() == []
    for index, content in enumerate(contents):
        assert dfs.read(f"/f{index}") == content


class HBaseModel:
    """Reference model: latest-write-wins dict."""

    def __init__(self):
        self.state = {}

    def put(self, row, qualifier, value):
        self.state[(row, qualifier)] = value

    def delete(self, row, qualifier):
        self.state.pop((row, qualifier), None)

    def get(self, row, qualifier):
        return self.state.get((row, qualifier))


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), ROW_KEYS, ROW_KEYS, VALUES),
        st.tuples(st.just("delete"), ROW_KEYS, ROW_KEYS),
        st.tuples(st.just("flush")),
        st.tuples(st.just("compact")),
    ),
    min_size=1, max_size=30)


@settings(max_examples=30, deadline=None)
@given(OPS)
def test_htable_matches_reference_model(operations):
    dfs = DistributedFileSystem.with_datanodes(3, replication=2)
    table = HTable("t", dfs, families=("d",), memstore_flush_cells=7)
    model = HBaseModel()
    touched = set()
    for operation in operations:
        if operation[0] == "put":
            _, row, qualifier, value = operation
            table.put(row, "d", qualifier, value)
            model.put(row, qualifier, value)
            touched.add((row, qualifier))
        elif operation[0] == "delete":
            _, row, qualifier = operation
            table.delete(row, "d", qualifier)
            model.delete(row, qualifier)
            touched.add((row, qualifier))
        elif operation[0] == "flush":
            table.flush()
        elif operation[0] == "compact":
            table.flush()
            table.compact()
    for row, qualifier in touched:
        assert table.get_value(row, "d", qualifier) == model.get(row, qualifier)


DOCS = st.lists(
    st.fixed_dictionaries({
        "kind": st.sampled_from(["crime", "traffic", "tweet"]),
        "severity": st.integers(0, 10),
        "district": st.integers(1, 4),
    }),
    min_size=0, max_size=25)


@settings(max_examples=30, deadline=None)
@given(DOCS, st.integers(0, 10))
def test_mongo_range_query_matches_naive_filter(docs, cutoff):
    collection = Collection("c")
    collection.insert_many(docs)
    found = collection.find({"severity": {"$gte": cutoff}})
    expected = [d for d in docs if d["severity"] >= cutoff]
    assert len(found) == len(expected)


@settings(max_examples=30, deadline=None)
@given(DOCS, st.sampled_from(["crime", "traffic", "tweet"]))
def test_mongo_index_equivalent_to_scan(docs, kind):
    plain = Collection("plain")
    plain.insert_many(docs)
    indexed = Collection("indexed")
    indexed.insert_many(docs)
    indexed.create_index("kind")
    scan_ids = {d["_id"] for d in plain.find({"kind": kind})}
    index_ids = {d["_id"] for d in indexed.find({"kind": kind})}
    assert scan_ids == index_ids


@settings(max_examples=25, deadline=None)
@given(DOCS)
def test_mongo_delete_then_count_zero(docs):
    collection = Collection("c")
    collection.insert_many(docs)
    removed = collection.delete({"kind": "crime"})
    assert collection.count({"kind": "crime"}) == 0
    assert removed == sum(1 for d in docs if d["kind"] == "crime")
    assert len(collection) == len(docs) - removed


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 1, allow_nan=False),
                          st.floats(0, 1, allow_nan=False)),
                min_size=0, max_size=30),
       st.floats(0.05, 0.5, allow_nan=False))
def test_mongo_geo_index_matches_scan(points, radius):
    docs = [{"location": [x, y]} for x, y in points]
    plain = Collection("plain")
    plain.insert_many(docs)
    indexed = Collection("indexed")
    indexed.insert_many(docs)
    indexed.create_geo_index("location", cell_size=0.13)
    query = {"location": {"$near": [0.5, 0.5], "$maxDistance": radius}}
    assert ({d["_id"] for d in plain.find(query)}
            == {d["_id"] for d in indexed.find(query)})
