"""Seeded chaos properties for the fault-tolerant fog pipeline.

Every example runs a full stream simulation under a hypothesis-chosen
failure schedule and asserts the two invariants the failure model
guarantees regardless of what crashes when:

- *conservation*: every arrival is exactly once completed, degraded, or
  dropped — nothing is lost or double-counted;
- *replayability*: the same seeds produce a byte-identical
  ``runtime.dump()``.

``REPRO_CHAOS_SEED`` (set by the CI chaos step, default 0) shifts the
entire space of drawn schedules so each CI seed explores different
chaos, while any single invocation stays deterministic.
"""

import json
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import NetworkTopology
from repro.fog import (
    FailureSpec,
    FaultPolicy,
    FogPipeline,
    model_split_from_early_exit,
    place_bottom_up,
    simulate_shared_streams,
)
from repro.runtime import Runtime

BASE_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def build_pipeline():
    topology = NetworkTopology.build_fog_hierarchy(
        edges_per_fog=2, fogs_per_server=2, servers=1)
    stages = model_split_from_early_exit(
        local_flops=2e8, remote_flops=8e9,
        feature_bytes=8_192, input_bytes=64 * 64 * 3,
        local_exit_flops=1e6, remote_exit_flops=1e6)
    return FogPipeline(place_bottom_up(topology, stages, "edge-0-0-0"))


failure_specs = st.builds(
    FailureSpec,
    seed=st.integers(0, 2**16).map(lambda s: s + BASE_SEED),
    mean_time_to_failure_s=st.floats(0.02, 1.0),
    mean_time_to_repair_s=st.one_of(st.none(), st.floats(0.05, 1.0)),
    max_failures=st.integers(1, 10),
)

fault_policies = st.builds(
    FaultPolicy,
    stage_timeout_s=st.one_of(st.none(), st.floats(0.5, 5.0)),
    max_attempts=st.integers(1, 4),
    backoff_base_s=st.floats(0.0, 0.05),
)


def run_once(spec, policy, num_items, exit_seed):
    runtime = Runtime(seed=BASE_SEED)
    pipeline = build_pipeline()
    stats = pipeline.simulate_stream(
        num_items, 0.03, exit_probabilities={1: 0.5},
        seed=exit_seed, runtime=runtime,
        failures=spec, fault_policy=policy)
    return runtime, stats


@settings(max_examples=20, deadline=None)
@given(spec=failure_specs, policy=fault_policies,
       num_items=st.integers(1, 40), exit_seed=st.integers(0, 100))
def test_every_item_exactly_once_accounted(spec, policy, num_items,
                                           exit_seed):
    _, stats = run_once(spec, policy, num_items, exit_seed)
    assert stats.completed + stats.degraded + stats.dropped == num_items
    assert stats.accounted == num_items
    assert min(stats.completed, stats.degraded, stats.dropped) >= 0


@settings(max_examples=8, deadline=None)
@given(spec=failure_specs, policy=fault_policies,
       num_items=st.integers(1, 25), exit_seed=st.integers(0, 100))
def test_same_seeds_byte_identical_dump(spec, policy, num_items, exit_seed):
    first, _ = run_once(spec, policy, num_items, exit_seed)
    second, _ = run_once(spec, policy, num_items, exit_seed)
    assert (json.dumps(first.dump(), sort_keys=True)
            == json.dumps(second.dump(), sort_keys=True))


@settings(max_examples=6, deadline=None)
@given(spec=failure_specs, num_items=st.integers(2, 20),
       exit_seed=st.integers(0, 100))
def test_shared_streams_conserve_items_under_chaos(spec, num_items,
                                                   exit_seed):
    runtime = Runtime(seed=BASE_SEED)
    streams = [
        {"pipeline": build_pipeline(), "num_items": num_items,
         "arrival_interval_s": 0.03, "exit_probabilities": {1: 0.5}},
        {"pipeline": build_pipeline(), "num_items": num_items,
         "arrival_interval_s": 0.05, "exit_probabilities": {1: 0.2}},
    ]
    all_stats = simulate_shared_streams(
        streams, seed=exit_seed, runtime=runtime, failures=spec,
        fault_policy=FaultPolicy(stage_timeout_s=2.0))
    for stats in all_stats:
        assert stats.accounted == num_items
