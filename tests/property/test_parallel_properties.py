"""Worker-count invariance of the parallel engine, under hypothesis.

Every example builds one seeded workload and runs it at worker counts
{1, 2, 4}; the engine's determinism contract says the worker count is
*unobservable*:

- RDD actions return identical values;
- batched early-exit inference returns identical
  :class:`BatchExitDecisions`;
- the normalized registry dump (:func:`deterministic_dump`) is
  byte-identical.

``REPRO_CHAOS_SEED`` (set by the CI chaos step, default 0) shifts the
drawn workload space per CI seed; fork cost keeps example counts low.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.compute.rdd import SparkContext
from repro.fog.policies import ScoreThresholdPolicy, run_policy_batched
from repro.nn.models.earlyexit import EarlyExitNetwork
from repro.runtime import (
    ParallelExecutor,
    Runtime,
    deterministic_dump,
    fork_available,
    using_runtime,
)

BASE_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
WORKER_SWEEP = (1, 2, 4)

pytestmark = pytest.mark.skipif(not fork_available(),
                                reason="platform lacks fork")

seeds = st.integers(0, 2**16).map(lambda s: s + BASE_SEED)


def normalized_dump(rt):
    return json.dumps(deterministic_dump(rt), sort_keys=True)


def build_early_exit(rng, num_classes=4):
    return EarlyExitNetwork(
        local_stage=nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng), nn.ReLU()),
        local_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(4, num_classes, rng=rng)),
        remote_stage=nn.Sequential(
            nn.Conv2d(4, 8, 3, padding=1, rng=rng), nn.ReLU()),
        remote_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(8, num_classes, rng=rng)))


@settings(max_examples=5, deadline=None)
@given(seed=seeds, n=st.integers(8, 40), partitions=st.integers(1, 6),
       modulus=st.integers(2, 5))
def test_rdd_actions_invariant_under_worker_count(seed, n, partitions,
                                                  modulus):
    outcomes = {}
    for workers in WORKER_SWEEP:
        with using_runtime(Runtime(seed=seed)) as rt:
            sc = SparkContext(workers=workers)
            base = sc.parallelize(range(n), partitions).cache()
            pairs = base.map(lambda x: (x % modulus, x))
            outcomes[workers] = {
                "collect": base.collect(),
                "count": base.filter(lambda x: x % 2 == 0).count(),
                "reduce": base.reduce(lambda a, b: a + b),
                "byKey": sorted(
                    pairs.reduceByKey(lambda a, b: a + b).collect()),
                "shuffles": sc.shuffle_count,
                "dump": normalized_dump(rt),
            }
    assert outcomes[1] == outcomes[2] == outcomes[4]


@settings(max_examples=5, deadline=None)
@given(seed=seeds, n=st.integers(4, 24),
       threshold=st.floats(0.35, 0.99),
       batch_size=st.integers(1, 8))
def test_exit_decisions_invariant_under_worker_count(seed, n, threshold,
                                                     batch_size):
    policy = ScoreThresholdPolicy(threshold)
    decisions, dumps = {}, {}
    for workers in WORKER_SWEEP:
        with using_runtime(Runtime(seed=seed)) as rt:
            rng = rt.rng.np_child("prop.parallel.model")
            model = build_early_exit(rng)
            x = rt.rng.np_child("prop.parallel.x").normal(
                0.0, 1.0, (n, 1, 8, 8))
            decisions[workers] = run_policy_batched(
                model, x, policy, batch_size=batch_size,
                executor=ParallelExecutor(workers=workers))
            dumps[workers] = normalized_dump(rt)
    first = decisions[WORKER_SWEEP[0]]
    for workers in WORKER_SWEEP[1:]:
        other = decisions[workers]
        assert np.array_equal(first.predictions, other.predictions)
        assert np.array_equal(first.exit_index, other.exit_index)
        assert np.array_equal(first.confidence, other.confidence)
    assert dumps[1] == dumps[2] == dumps[4]
