"""Chaos properties of the serving gateway, under hypothesis.

Two invariants the serving plane must never lose:

- **answered-or-shed exactly once** — under seeded deployment crashes
  (a :class:`~repro.fog.pipeline.FailureSpec`-driven schedule) plus
  rate-limit and queue-full shed pressure, every submission resolves to
  exactly one outcome: its decisions, a :class:`ShedError`, or the
  injected crash.  Nothing hangs, nothing resolves twice, and the
  gateway's own accounting (``submitted == answered + shed + failed``)
  matches the caller's view.
- **worker-count invariance** — serving the same request sequence over
  deployments whose executors use 1, 2, or 4 workers returns identical
  decisions and a byte-identical :func:`deterministic_dump` (volatile
  latency families dropped), extending the parallel-engine contract
  through the gateway.

``REPRO_CHAOS_SEED`` (set by the CI chaos sweep, default 0) shifts the
drawn workload space per CI seed.
"""

import asyncio
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fog.deployment import TwoTierDeployment
from repro.fog.pipeline import FailureSpec
from repro.fog.policies import ScoreThresholdPolicy
from repro.nn.models.earlyexit import BatchExitDecisions
from repro.runtime import (
    ParallelExecutor,
    Runtime,
    deterministic_dump,
    fork_available,
    using_runtime,
)
from repro.serving import (
    VOLATILE_METRIC_PREFIXES,
    GatewayConfig,
    ServingGateway,
    ShedError,
)

from tests.serving.conftest import build_model

BASE_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
WORKER_SWEEP = (1, 2, 4)

seeds = st.integers(0, 2**16).map(lambda s: s + BASE_SEED)


class CrashingDeployment:
    """Wrap a deployment; crash on a FailureSpec-seeded call schedule."""

    def __init__(self, inner, spec: FailureSpec, total_calls: int):
        self.inner = inner
        self.calls = 0
        rng = np.random.default_rng(spec.seed)
        failures = min(spec.max_failures or 0, total_calls)
        self.crash_calls = set(
            int(i) for i in rng.choice(total_calls, size=failures,
                                       replace=False)) if failures else set()

    def serve_batched(self, x, policy, batch_size=None):
        call = self.calls
        self.calls += 1
        if call in self.crash_calls:
            raise RuntimeError(f"injected crash on call {call}")
        return self.inner.serve_batched(x, policy, batch_size=batch_size)


def deploy(rt):
    trained = build_model(rt.rng.np_child("prop.serving.model"))
    deployment = TwoTierDeployment(build_model,
                                   ["local_stage", "local_head"],
                                   ["remote_stage", "remote_head"])
    deployment.deploy(trained)
    return deployment


def submit_all(gateway, requests):
    """Drive all requests concurrently; one outcome per request."""
    async def main():
        async with gateway.running():
            return await asyncio.gather(
                *(gateway.submit(frames, tenant=tenant)
                  for tenant, frames in requests),
                return_exceptions=True)
    return asyncio.run(main())


@settings(max_examples=8, deadline=None)
@given(seed=seeds)
def test_answered_or_shed_exactly_once_under_chaos(seed):
    with using_runtime(Runtime(seed=seed)) as rt:
        draw = rt.rng.np_child("prop.serving.requests")
        requests = [(f"cam-{int(draw.integers(0, 3))}",
                     draw.normal(size=(int(draw.integers(0, 5)), 1, 8, 8)))
                    for _ in range(12)]
        spec = FailureSpec(seed=seed, max_failures=2)
        crashy = CrashingDeployment(deploy(rt), spec, total_calls=12)
        gateway = ServingGateway(
            crashy, ScoreThresholdPolicy(0.45),
            GatewayConfig(coalesce_window_s=0.0, max_batch_rows=6,
                          max_queue_rows=16, tenant_rate=200.0,
                          tenant_burst=12.0))
        outcomes = submit_all(gateway, requests)

        assert len(outcomes) == len(requests)    # every submit resolved once
        answered = shed = failed = 0
        for (tenant, frames), outcome in zip(requests, outcomes):
            if isinstance(outcome, ShedError):
                shed += 1
                assert outcome.tenant == tenant
            elif isinstance(outcome, RuntimeError):
                failed += 1
                assert "injected crash" in str(outcome)
            else:
                answered += 1
                assert isinstance(outcome, BatchExitDecisions)
                assert len(outcome) == frames.shape[0]
        assert answered + shed + failed == len(requests)
        stats = gateway.stats()
        assert stats["submitted"] == len(requests)
        assert stats["answered"] == answered
        assert stats["shed"] == shed
        assert stats["failed"] == failed
        assert stats["queue_rows"] == 0 and stats["queue_requests"] == 0


@pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
@settings(max_examples=3, deadline=None)
@given(seed=seeds)
def test_gateway_dump_identical_across_worker_counts(seed):
    request_sizes = [3, 1, 4, 2, 3]
    dumps, predictions = [], []
    for workers in WORKER_SWEEP:
        with using_runtime(Runtime(seed=seed)) as rt:
            deployment = deploy(rt)
            deployment.executor = ParallelExecutor(workers=workers,
                                                   runtime=rt)
            draw = rt.rng.np_child("prop.serving.frames")
            requests = [("cam", draw.normal(size=(rows, 1, 8, 8)))
                        for rows in request_sizes]
            gateway = ServingGateway(
                deployment, ScoreThresholdPolicy(0.45),
                GatewayConfig(coalesce_window_s=0.0, max_batch_rows=8,
                              batch_size=2))
            outcomes = submit_all(gateway, requests)
            assert not any(isinstance(o, BaseException) for o in outcomes)
            predictions.append(np.concatenate(
                [o.predictions for o in outcomes]))
            dumps.append(json.dumps(
                deterministic_dump(
                    rt, drop_metric_prefixes=VOLATILE_METRIC_PREFIXES),
                sort_keys=True))
    assert np.array_equal(predictions[0], predictions[1])
    assert np.array_equal(predictions[0], predictions[2])
    assert dumps[0] == dumps[1] == dumps[2]
