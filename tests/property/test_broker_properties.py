"""Seeded chaos properties for the streaming broker.

Three guarantees, each asserted under hypothesis-drawn schedules:

- *exactly-once committed output under rebalance churn*: members join,
  leave, poll, and commit in arbitrary interleavings; fenced commits are
  discarded and redelivered, and the committed output still ends up with
  every produced record exactly once;
- *group-size invariance*: the same workload consumed by 1, 2, or 3
  group members leaves a byte-identical :func:`deterministic_dump` once
  the broker's own delivery-attempt telemetry (which legitimately varies
  with membership) is dropped;
- *chaos-fed fog serving*: records polled from the broker and fed
  through a failure-injected fog stream are all accounted exactly once,
  and their offsets commit only after the batch survives.

``REPRO_CHAOS_SEED`` (set by the CI chaos sweep, default 0) shifts the
drawn schedules while keeping any single invocation deterministic.
"""

import json
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import NetworkTopology
from repro.fog import (
    FailureSpec,
    FaultPolicy,
    FogPipeline,
    model_split_from_early_exit,
    place_bottom_up,
)
from repro.runtime import Runtime
from repro.runtime.parallel import deterministic_dump
from repro.streaming import Broker, FlumeAgent, FunctionSource, broker_sink
from repro.streaming.broker import (
    VOLATILE_METRIC_PREFIXES,
    VOLATILE_SPAN_PREFIXES,
    RebalanceError,
)

BASE_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

MAX_MEMBERS = 4


def normalized_dump(runtime):
    return json.dumps(
        deterministic_dump(runtime,
                           drop_metric_prefixes=VOLATILE_METRIC_PREFIXES,
                           drop_span_prefixes=VOLATILE_SPAN_PREFIXES),
        sort_keys=True)


actions = st.lists(
    st.one_of(
        st.tuples(st.just("join"), st.just(0)),
        st.tuples(st.just("leave"), st.integers(0, MAX_MEMBERS - 1)),
        st.tuples(st.just("poll"), st.integers(0, MAX_MEMBERS - 1)),
        st.tuples(st.just("commit"), st.integers(0, MAX_MEMBERS - 1)),
    ),
    min_size=4, max_size=40)


class Member:
    """A consumer plus its uncommitted buffer, with fencing discipline:
    anything buffered across a rebalance is discarded — the broker
    redelivers it — so only commit-confirmed records reach the output."""

    def __init__(self, broker, group):
        self.broker = broker
        self.group = group
        self.consumer = broker.consumer(group, ["events"], auto_commit=False)
        self.buffer = []

    def _drop_if_fenced(self):
        if self.consumer.generation != self.broker.group_generation(self.group):
            self.buffer.clear()

    def poll(self, n=7):
        self._drop_if_fenced()
        batch = self.consumer.poll(n)
        self.buffer.extend(r.value for r in batch)
        return len(batch)

    def commit(self, committed):
        try:
            self.consumer.commit()
        except RebalanceError:
            self.consumer.seek_to_committed()
            self.buffer.clear()
            return
        committed.extend(self.buffer)
        self.buffer.clear()

    def leave(self):
        self.consumer.close()
        self.buffer.clear()


@settings(max_examples=20, deadline=None)
@given(schedule=actions, num_records=st.integers(5, 80),
       partitions=st.integers(1, 4), churn_seed=st.integers(0, 2**16))
def test_rebalance_churn_commits_exactly_once(schedule, num_records,
                                              partitions, churn_seed):
    runtime = Runtime(seed=BASE_SEED + churn_seed)
    broker = Broker(runtime=runtime)
    broker.create_topic("events", partitions=partitions)
    for i in range(num_records):
        broker.produce("events", i, key=f"k{i % 5}" if i % 2 else None)

    committed = []
    members = [Member(broker, "g")]
    for action, index in schedule:
        if action == "join" and len(members) < MAX_MEMBERS:
            members.append(Member(broker, "g"))
        elif action == "leave" and len(members) > 1:
            members.pop(index % len(members)).leave()
        elif action == "poll":
            members[index % len(members)].poll()
        elif action == "commit":
            members[index % len(members)].commit(committed)

    # quiesce: no more membership changes, so polls cannot be fenced —
    # every member drains and commits its assigned partitions
    progressed = True
    while progressed:
        progressed = False
        for member in members:
            if member.poll():
                progressed = True
            member.commit(committed)
    assert sorted(committed) == list(range(num_records))
    assert broker.lag("g", "events") == 0


@settings(max_examples=10, deadline=None)
@given(group_sizes=st.permutations([1, 2, 3]), num_records=st.integers(5, 60),
       batch=st.integers(1, 12))
def test_dump_invariant_across_group_sizes(group_sizes, num_records, batch):
    def run(members_count):
        runtime = Runtime(seed=BASE_SEED)
        broker = Broker(runtime=runtime)
        broker.create_topic("events", partitions=4)
        agent = FlumeAgent(FunctionSource(range(num_records)),
                           broker_sink(broker, "events"),
                           batch_size=batch, runtime=runtime)
        agent.run()
        members = [Member(broker, "g") for _ in range(members_count)]
        committed = []
        progressed = True
        while progressed:
            progressed = False
            for member in members:
                if member.poll():
                    progressed = True
                member.commit(committed)
        assert sorted(committed) == list(range(num_records))
        return normalized_dump(runtime)

    dumps = {size: run(size) for size in group_sizes}
    assert len(set(dumps.values())) == 1


failure_specs = st.builds(
    FailureSpec,
    seed=st.integers(0, 2**16).map(lambda s: s + BASE_SEED),
    mean_time_to_failure_s=st.floats(0.02, 1.0),
    mean_time_to_repair_s=st.one_of(st.none(), st.floats(0.05, 1.0)),
    max_failures=st.integers(1, 10),
)


def build_pipeline():
    topology = NetworkTopology.build_fog_hierarchy(
        edges_per_fog=2, fogs_per_server=2, servers=1)
    stages = model_split_from_early_exit(
        local_flops=2e8, remote_flops=8e9,
        feature_bytes=8_192, input_bytes=64 * 64 * 3,
        local_exit_flops=1e6, remote_exit_flops=1e6)
    return FogPipeline(place_bottom_up(topology, stages, "edge-0-0-0"))


@settings(max_examples=6, deadline=None)
@given(spec=failure_specs, num_items=st.integers(2, 24),
       exit_seed=st.integers(0, 100))
def test_broker_fed_fog_stream_accounts_every_record_under_chaos(
        spec, num_items, exit_seed):
    """End-to-end at-least-once: frames ride the broker into a
    failure-injected fog stream; offsets commit only after the whole
    batch is accounted, and every produced frame is committed exactly
    once."""
    runtime = Runtime(seed=BASE_SEED)
    broker = Broker(runtime=runtime)
    broker.create_topic("frames", partitions=2)
    for i in range(num_items):
        broker.produce("frames", i)

    consumer = broker.consumer("fog", ["frames"], auto_commit=False)
    served = []
    while True:
        batch = consumer.poll(8)
        if not batch:
            break
        stats = build_pipeline().simulate_stream(
            len(batch), 0.03, exit_probabilities={1: 0.5},
            seed=exit_seed, runtime=runtime, failures=spec,
            fault_policy=FaultPolicy(stage_timeout_s=2.0))
        assert stats.accounted == len(batch)
        consumer.commit()
        served.extend(r.value for r in batch)
    assert sorted(served) == list(range(num_items))
    assert broker.lag("fog", "frames") == 0


class BatchMember(Member):
    """A member that drains through the columnar ``poll_batch`` path."""

    def poll(self, n=7):
        self._drop_if_fenced()
        batch = self.consumer.poll_batch(n)
        self.buffer.extend(batch.values)
        return len(batch)


@settings(max_examples=20, deadline=None)
@given(schedule=actions, num_records=st.integers(5, 80),
       partitions=st.integers(1, 4), churn_seed=st.integers(0, 2**16))
def test_batch_poll_rebalance_churn_commits_exactly_once(
        schedule, num_records, partitions, churn_seed):
    """The exactly-once contract survives the columnar fast path: the
    rebalance-churn schedule of the per-record property, but every poll
    rides ``poll_batch`` and reads the value column directly."""
    runtime = Runtime(seed=BASE_SEED + churn_seed)
    broker = Broker(runtime=runtime)
    broker.create_topic("events", partitions=partitions)
    chunk = max(1, num_records // 3)
    for start in range(0, num_records, chunk):
        broker.produce_batch(
            "events", list(range(start, min(start + chunk, num_records))),
            key_fn=lambda i: f"k{i % 5}" if i % 2 else None)

    committed = []
    members = [BatchMember(broker, "g")]
    for action, index in schedule:
        if action == "join" and len(members) < MAX_MEMBERS:
            members.append(BatchMember(broker, "g"))
        elif action == "leave" and len(members) > 1:
            members.pop(index % len(members)).leave()
        elif action == "poll":
            members[index % len(members)].poll()
        elif action == "commit":
            members[index % len(members)].commit(committed)

    progressed = True
    while progressed:
        progressed = False
        for member in members:
            if member.poll():
                progressed = True
            member.commit(committed)
    assert sorted(committed) == list(range(num_records))
    assert broker.lag("g", "events") == 0


@settings(max_examples=10, deadline=None)
@given(num_records=st.integers(1, 60), chunk=st.integers(1, 16),
       partitions=st.integers(1, 4), dump_seed=st.integers(0, 2**16))
def test_batch_and_record_paths_dump_identically(num_records, chunk,
                                                 partitions, dump_seed):
    """The columnar path is an optimization, not a behaviour change:
    the normalized registry dump is byte-identical whether records rode
    ``produce_batch``/``poll_batch`` or ``produce``/``poll``."""
    def run(batch_path):
        runtime = Runtime(seed=BASE_SEED + dump_seed)
        broker = Broker(runtime=runtime)
        broker.create_topic("events", partitions=partitions)
        values = list(range(num_records))
        if batch_path:
            for start in range(0, num_records, chunk):
                broker.produce_batch("events", values[start:start + chunk])
        else:
            for value in values:
                broker.produce("events", value)
        consumer = broker.consumer("g", ["events"], auto_commit=False)
        out = []
        while True:
            if batch_path:
                got = list(consumer.poll_batch(chunk).values)
            else:
                got = [r.value for r in consumer.poll(chunk)]
            if not got:
                break
            out.extend(got)
            consumer.commit()
        assert sorted(out) == values
        return normalized_dump(runtime)

    assert run(True) == run(False)
