"""Property-based tests for DStreams, grid aggregation and the
parameter server."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compute import GridAggregator, StreamingContext, assign_districts
from repro.nn.distributed import ParameterServer
from repro import nn
from repro.streaming import MessageBus

UNIT_POINTS = st.lists(
    st.tuples(st.floats(0, 1, allow_nan=False),
              st.floats(0, 1, allow_nan=False)),
    min_size=0, max_size=40)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(), min_size=0, max_size=60),
       st.integers(1, 20), st.integers(1, 4))
def test_dstream_conserves_records(values, batch_size, partitions):
    bus = MessageBus()
    bus.create_topic("t", partitions=partitions)
    for value in values:
        bus.produce("t", value)
    context = StreamingContext(bus, batch_max_records=batch_size)
    seen = []
    context.stream("t").foreach_batch(seen.extend)
    consumed = context.run_until_idle()
    assert consumed == len(values)
    assert sorted(seen) == sorted(values)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(-10, 10), min_size=0, max_size=50),
       st.integers(1, 15))
def test_dstream_filter_partition_is_exact(values, batch_size):
    bus = MessageBus()
    bus.create_topic("t", partitions=2)
    for value in values:
        bus.produce("t", value)
    context = StreamingContext(bus, batch_max_records=batch_size)
    negatives, nonnegatives = [], []
    stream = context.stream("t")
    stream.filter(lambda x: x < 0).foreach_batch(negatives.extend)
    stream.filter(lambda x: x >= 0).foreach_batch(nonnegatives.extend)
    context.run_until_idle()
    assert sorted(negatives + nonnegatives) == sorted(values)
    assert all(x < 0 for x in negatives)


@settings(max_examples=30, deadline=None)
@given(UNIT_POINTS, st.integers(1, 6), st.integers(1, 6))
def test_grid_aggregation_conserves_counts(points, rows, cols):
    grid = GridAggregator(rows=rows, cols=cols).aggregate(points)
    assert grid.sum() == len(points)
    assert (grid >= 0).all()


@settings(max_examples=30, deadline=None)
@given(UNIT_POINTS)
def test_grid_density_bounded(points):
    density = GridAggregator(rows=4, cols=4).density(points)
    assert (density >= 0).all()
    assert density.max() <= 1.0 + 1e-12


@settings(max_examples=30, deadline=None)
@given(UNIT_POINTS)
def test_hotspots_ordered_and_within_grid(points):
    aggregator = GridAggregator(rows=5, cols=5)
    hotspots = aggregator.hotspots(points, top=5)
    counts = [h["count"] for h in hotspots]
    assert counts == sorted(counts, reverse=True)
    for spot in hotspots:
        assert 0 <= spot["center"][0] <= 1
        assert 0 <= spot["center"][1] <= 1


@settings(max_examples=30, deadline=None)
@given(UNIT_POINTS)
def test_assign_districts_picks_true_nearest(points):
    centers = {1: (0.2, 0.2), 2: (0.8, 0.8), 3: (0.2, 0.8)}
    labels = assign_districts(points, centers)
    for point, label in zip(points, labels):
        chosen = np.hypot(point[0] - centers[label][0],
                          point[1] - centers[label][1])
        for other in centers.values():
            distance = np.hypot(point[0] - other[0], point[1] - other[1])
            assert chosen <= distance + 1e-12


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(-1, 1, allow_nan=False), min_size=1, max_size=8),
       st.floats(0.01, 0.5, allow_nan=False))
def test_parameter_server_applies_exact_sgd(gradient_values, lr):
    model = nn.Sequential(nn.Linear(len(gradient_values), 1,
                                    rng=np.random.default_rng(0)))
    server = ParameterServer(model, lr=lr)
    before = dict(model.named_parameters())["layer0.weight"].data.copy()
    gradient = np.array(gradient_values).reshape(1, -1)
    server.push({"layer0.weight": gradient}, 0)
    after = dict(model.named_parameters())["layer0.weight"].data
    np.testing.assert_allclose(after, before - lr * gradient, atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 8))
def test_parameter_server_version_counts_pushes(pushes):
    model = nn.Sequential(nn.Linear(2, 1))
    server = ParameterServer(model)
    for _ in range(pushes):
        server.push({"layer0.bias": np.zeros(1)}, 0)
    assert server.version == pushes
    assert server.updates_applied == pushes
