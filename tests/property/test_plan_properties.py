"""Plan-execution invariance, under hypothesis.

Captured inference plans are a pure execution-strategy change: for every
seeded workload, batched early-exit serving with plans enabled must be
indistinguishable from eager serving — at every worker count in
{1, 2, 4}:

- :class:`BatchExitDecisions` are identical (plans on vs off, and across
  worker counts);
- the normalized registry dump (:func:`deterministic_dump`) is
  byte-identical — ``nn.plan.*`` cache counters are per-worker execution
  detail and are excluded from the dump by construction.

``REPRO_CHAOS_SEED`` (set by the CI chaos step, default 0) shifts the
drawn workload space per CI seed; fork cost keeps example counts low.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.fog.policies import ScoreThresholdPolicy, run_policy_batched
from repro.nn.models.earlyexit import EarlyExitNetwork
from repro.runtime import (
    ParallelExecutor,
    Runtime,
    deterministic_dump,
    fork_available,
    using_runtime,
)

BASE_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
WORKER_SWEEP = (1, 2, 4)
PLAN_SWEEP = (False, True)

pytestmark = pytest.mark.skipif(not fork_available(),
                                reason="platform lacks fork")

seeds = st.integers(0, 2**16).map(lambda s: s + BASE_SEED)


def normalized_dump(rt):
    return json.dumps(deterministic_dump(rt), sort_keys=True)


def build_early_exit(rng, num_classes=4):
    return EarlyExitNetwork(
        local_stage=nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng), nn.ReLU()),
        local_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(4, num_classes, rng=rng)),
        remote_stage=nn.Sequential(
            nn.Conv2d(4, 8, 3, padding=1, rng=rng), nn.ReLU()),
        remote_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(8, num_classes, rng=rng)))


def serve(seed, n, threshold, batch_size, workers, plans):
    with using_runtime(Runtime(seed=seed)) as rt:
        rng = rt.rng.np_child("prop.plan.model")
        model = build_early_exit(rng)
        if plans:
            model.enable_plans()
        x = rt.rng.np_child("prop.plan.x").normal(0.0, 1.0, (n, 1, 8, 8))
        decisions = run_policy_batched(
            model, x, ScoreThresholdPolicy(threshold),
            batch_size=batch_size,
            executor=ParallelExecutor(workers=workers))
        return decisions, normalized_dump(rt)


@settings(max_examples=5, deadline=None)
@given(seed=seeds, n=st.integers(4, 24),
       threshold=st.floats(0.35, 0.99),
       batch_size=st.integers(1, 8))
def test_decisions_and_dumps_invariant_under_plans_and_workers(
        seed, n, threshold, batch_size):
    decisions, dumps = {}, {}
    for plans in PLAN_SWEEP:
        for workers in WORKER_SWEEP:
            decisions[plans, workers], dumps[plans, workers] = serve(
                seed, n, threshold, batch_size, workers, plans)
    first = decisions[False, 1]
    for key, other in decisions.items():
        assert np.array_equal(first.predictions, other.predictions), key
        assert np.array_equal(first.exit_index, other.exit_index), key
        assert np.array_equal(first.confidence, other.confidence), key
        assert np.array_equal(first.local_logits, other.local_logits), key
    assert len(set(dumps.values())) == 1


@settings(max_examples=5, deadline=None)
@given(seed=seeds, n=st.integers(2, 16), rows=st.integers(1, 16))
def test_plan_prefix_rows_match_eager_bitwise(seed, n, rows):
    """A plan captured at one batch size serves any row prefix bitwise."""
    rows = min(rows, n)
    with using_runtime(Runtime(seed=seed)) as rt:
        rng = rt.rng.np_child("prop.plan.model")
        model = nn.fuse_for_inference(nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng),
            nn.BatchNorm2d(4), nn.ReLU(),
            nn.GlobalAvgPool2d(), nn.Linear(4, 3, rng=rng),
        ), dtype=np.float32)
        x = rt.rng.np_child("prop.plan.x").normal(
            0.0, 1.0, (n, 1, 8, 8)).astype(np.float32)
        plan = nn.capture_plan(model, x)
        with nn.eval_mode(model), nn.no_grad():
            expected = model(nn.Tensor(x[:rows])).data
        assert np.array_equal(plan.run(x[:rows]), expected)
