"""Property-based tests for the RDD engine, message bus and graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compute import Graph, SparkContext
from repro.streaming import MessageBus

INTS = st.lists(st.integers(-50, 50), min_size=0, max_size=40)
PAIRS = st.lists(st.tuples(st.sampled_from("abcd"), st.integers(-5, 5)),
                 min_size=0, max_size=30)


@settings(max_examples=30, deadline=None)
@given(INTS, st.integers(1, 6))
def test_rdd_collect_preserves_multiset(data, partitions):
    rdd = SparkContext().parallelize(data, partitions)
    assert sorted(rdd.collect()) == sorted(data)
    assert rdd.count() == len(data)


@settings(max_examples=30, deadline=None)
@given(INTS, st.integers(1, 6))
def test_rdd_map_filter_match_python(data, partitions):
    rdd = SparkContext().parallelize(data, partitions)
    out = rdd.map(lambda x: x * 3).filter(lambda x: x % 2 == 0).collect()
    expected = [x * 3 for x in data if (x * 3) % 2 == 0]
    assert sorted(out) == sorted(expected)


@settings(max_examples=30, deadline=None)
@given(PAIRS, st.integers(1, 5))
def test_rdd_reduce_by_key_matches_python(pairs, partitions):
    rdd = SparkContext().parallelize(pairs, partitions)
    result = dict(rdd.reduceByKey(lambda a, b: a + b).collect())
    expected = {}
    for key, value in pairs:
        expected[key] = expected.get(key, 0) + value
    assert result == expected


@settings(max_examples=30, deadline=None)
@given(INTS)
def test_rdd_distinct_is_set(data):
    out = SparkContext().parallelize(data).distinct().collect()
    assert sorted(out) == sorted(set(data))


@settings(max_examples=30, deadline=None)
@given(INTS)
def test_rdd_sort_by_sorts(data):
    out = SparkContext().parallelize(data).sortBy(lambda x: x).collect()
    assert out == sorted(data)


@settings(max_examples=30, deadline=None)
@given(PAIRS, PAIRS)
def test_rdd_join_matches_python(left, right):
    context = SparkContext()
    joined = context.parallelize(left).join(
        context.parallelize(right)).collect()
    expected = [(k, (lv, rv)) for k, lv in left for rk, rv in right
                if rk == k]
    assert sorted(joined) == sorted(expected)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("xyz"), st.integers(0, 99)),
                min_size=0, max_size=40),
       st.integers(1, 6))
def test_bus_preserves_per_key_order(messages, partitions):
    bus = MessageBus()
    bus.create_topic("t", partitions=partitions)
    for key, value in messages:
        bus.produce("t", value, key=key)
    consumed = bus.consumer("g", ["t"]).drain()
    for key in "xyz":
        got = [r.value for r in consumed if r.key == key]
        expected = [v for k, v in messages if k == key]
        assert got == expected


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(), min_size=0, max_size=40),
       st.integers(1, 4), st.integers(2, 4))
def test_bus_every_group_sees_every_record(values, partitions, groups):
    bus = MessageBus()
    bus.create_topic("t", partitions=partitions)
    for value in values:
        bus.produce("t", value)
    for group in range(groups):
        consumed = bus.consumer(f"g{group}", ["t"]).drain()
        assert sorted(r.value for r in consumed) == sorted(values)


def random_graph(edge_seed, n=8, p=0.35):
    rng = np.random.default_rng(edge_seed)
    vertices = {i: None for i in range(n)}
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)
             if rng.random() < p]
    return Graph(vertices, edges)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_pagerank_is_distribution(seed):
    graph = random_graph(seed)
    ranks = graph.pagerank(iterations=50)
    np.testing.assert_allclose(sum(ranks.values()), 1.0, atol=1e-6)
    assert all(rank >= 0 for rank in ranks.values())


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 7))
def test_neighborhood_monotone_in_depth(seed, vertex):
    graph = random_graph(seed)
    previous = set()
    for depth in range(4):
        current = graph.n_degree_neighborhood(vertex, depth)
        assert previous <= current
        previous = current


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_components_partition_vertices(seed):
    graph = random_graph(seed, p=0.15)
    components = graph.connected_components()
    assert set(components) == set(graph.vertices)
    # Every edge joins same-component vertices.
    for src, dst, _ in graph.edges:
        assert components[src] == components[dst]


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_triangle_count_matches_networkx(seed):
    import networkx as nx
    graph = random_graph(seed)
    nx_graph = nx.Graph([(s, d) for s, d, _ in graph.edges])
    nx_graph.add_nodes_from(graph.vertices)
    expected = sum(nx.triangles(nx_graph).values()) // 3
    assert graph.triangle_count() == expected


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 7), st.integers(0, 7))
def test_shortest_path_symmetric(seed, a, b):
    graph = random_graph(seed)
    assert (graph.shortest_path_length(a, b)
            == graph.shortest_path_length(b, a))
