"""Property-based tests for conv primitives, softmax and detection math."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import functional as F
from repro.nn.models.yolo import (
    Detection,
    box_iou,
    non_max_suppression,
)
from repro.nn.tensor import Tensor

SMALL_FLOATS = st.floats(min_value=-3.0, max_value=3.0,
                         allow_nan=False, allow_infinity=False)
UNIT = st.floats(min_value=0.05, max_value=0.95,
                 allow_nan=False, allow_infinity=False)
SIZES = st.floats(min_value=0.05, max_value=0.4,
                  allow_nan=False, allow_infinity=False)


def images(max_side=6):
    shapes = st.tuples(st.integers(1, 2), st.integers(1, 2),
                       st.integers(3, max_side), st.integers(3, max_side))
    return hnp.arrays(np.float64, shapes, elements=SMALL_FLOATS)


@settings(max_examples=25, deadline=None)
@given(images(), st.integers(1, 3), st.integers(1, 2), st.integers(0, 1))
def test_im2col_col2im_adjoint(x, kernel, stride, padding):
    """<im2col(x), y> == <x, col2im(y)> — the defining adjoint identity
    that makes the conv backward pass correct."""
    n, c, h, w = x.shape
    if h + 2 * padding < kernel or w + 2 * padding < kernel:
        return
    cols, out_h, out_w = F.im2col(x, kernel, stride, padding)
    rng = np.random.default_rng(0)
    y = rng.normal(0, 1, cols.shape)
    lhs = float((cols * y).sum())
    rhs = float((x * F.col2im(y, x.shape, kernel, stride, padding)).sum())
    np.testing.assert_allclose(lhs, rhs, rtol=1e-10, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(images(max_side=6))
def test_conv_linearity(x):
    rng = np.random.default_rng(1)
    w = Tensor(rng.normal(0, 1, (2, x.shape[1], 3, 3)))
    if x.shape[2] < 3 or x.shape[3] < 3:
        return
    a = F.conv2d(Tensor(x), w).data
    b = F.conv2d(Tensor(2.0 * x), w).data
    np.testing.assert_allclose(b, 2.0 * a, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(2, 6)),
                  elements=SMALL_FLOATS))
def test_softmax_is_distribution(logits):
    probs = F.softmax(Tensor(logits)).data
    assert (probs >= 0).all()
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-9)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(2, 6)),
                  elements=SMALL_FLOATS),
       st.floats(min_value=-5, max_value=5, allow_nan=False))
def test_softmax_shift_invariance(logits, shift):
    base = F.softmax(Tensor(logits)).data
    shifted = F.softmax(Tensor(logits + shift)).data
    np.testing.assert_allclose(base, shifted, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(2, 6)),
                  elements=SMALL_FLOATS))
def test_entropy_bounds(logits):
    probs = F.softmax(Tensor(logits)).data
    entropy = F.entropy(probs)
    classes = logits.shape[-1]
    assert (entropy >= -1e-9).all()
    assert (entropy <= np.log(classes) + 1e-9).all()


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 8), st.integers(1, 20))
def test_one_hot_argmax_roundtrip(num_classes, n):
    rng = np.random.default_rng(n)
    indices = rng.integers(0, num_classes, n)
    encoded = F.one_hot(indices, num_classes)
    np.testing.assert_array_equal(encoded.argmax(axis=1), indices)
    np.testing.assert_allclose(encoded.sum(axis=1), 1.0)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, st.tuples(st.integers(2, 6), st.integers(2, 5)),
                  elements=SMALL_FLOATS))
def test_cross_entropy_at_least_log_prob_of_truth(logits):
    targets = np.zeros(logits.shape[0], dtype=int)
    loss = F.cross_entropy(Tensor(logits), targets).item()
    assert loss >= -1e-9  # cross-entropy is nonnegative


def boxes():
    return st.builds(
        lambda cx, cy, w, h, c, s: Detection(cx, cy, w, h, c, s),
        UNIT, UNIT, SIZES, SIZES, st.integers(0, 2), UNIT)


@settings(max_examples=50, deadline=None)
@given(boxes(), boxes())
def test_iou_symmetric_and_bounded(a, b):
    ab = box_iou(a, b)
    ba = box_iou(b, a)
    np.testing.assert_allclose(ab, ba, atol=1e-12)
    assert 0.0 <= ab <= 1.0 + 1e-12


@settings(max_examples=50, deadline=None)
@given(boxes())
def test_iou_identity(a):
    np.testing.assert_allclose(box_iou(a, a), 1.0, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(st.lists(boxes(), max_size=8),
       st.floats(min_value=0.1, max_value=0.9, allow_nan=False))
def test_nms_output_properties(detections, threshold):
    kept = non_max_suppression(detections, iou_threshold=threshold)
    # Output is a subset, sorted by score, with no same-class pair above
    # the IoU threshold.
    assert len(kept) <= len(detections)
    scores = [d.score for d in kept]
    assert scores == sorted(scores, reverse=True)
    for i, a in enumerate(kept):
        for b in kept[i + 1:]:
            if a.class_id == b.class_id:
                assert box_iou(a, b) < threshold
