"""Property-based tests for checkpoint serialization across architectures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.tensor import Tensor


def build_mlp(widths, seed):
    layers = []
    rng = np.random.default_rng(seed)
    for in_width, out_width in zip(widths, widths[1:]):
        layers.append(nn.Linear(in_width, out_width, rng=rng))
        layers.append(nn.ReLU())
    return nn.Sequential(*layers[:-1])  # drop trailing activation


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(1, 6), min_size=2, max_size=4),
       st.integers(0, 1000))
def test_state_bytes_roundtrip_random_mlps(widths, seed):
    source = build_mlp(widths, seed)
    target = build_mlp(widths, seed + 1)
    payload = nn.state_to_bytes(source)
    nn.state_from_bytes(target, payload)
    x = Tensor(np.random.default_rng(seed).normal(0, 1, (3, widths[0])))
    np.testing.assert_allclose(source(x).data, target(x).data)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(1, 6), min_size=2, max_size=4),
       st.integers(0, 1000))
def test_state_dict_is_complete(widths, seed):
    model = build_mlp(widths, seed)
    state = model.state_dict()
    expected_params = sum(
        widths[i] * widths[i + 1] + widths[i + 1]
        for i in range(len(widths) - 1))
    assert sum(v.size for v in state.values()) == expected_params


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 100))
def test_mismatched_architecture_rejected(a, b, seed):
    source = nn.Linear(a, b, rng=np.random.default_rng(seed))
    target = nn.Linear(a + 1, b, rng=np.random.default_rng(seed))
    payload = nn.state_to_bytes(source)
    with pytest.raises(ValueError):
        nn.state_from_bytes(target, payload)
