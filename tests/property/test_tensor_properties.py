"""Property-based tests for the autograd core."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.tensor import Tensor, concatenate, stack
from tests.nn.gradcheck import numeric_grad

SMALL_FLOATS = st.floats(min_value=-3.0, max_value=3.0,
                         allow_nan=False, allow_infinity=False)


def arrays(max_side=4, min_dims=1, max_dims=3):
    shapes = hnp.array_shapes(min_dims=min_dims, max_dims=max_dims,
                              min_side=1, max_side=max_side)
    return hnp.arrays(np.float64, shapes, elements=SMALL_FLOATS)


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_addition_commutes(values):
    a = Tensor(values)
    b = Tensor(values[::-1].copy().reshape(values.shape))
    np.testing.assert_allclose((a + b).data, (b + a).data)


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_double_negation_identity(values):
    np.testing.assert_allclose((-(-Tensor(values))).data, values)


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_sum_gradient_is_ones(values):
    x = Tensor(values, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(values))


@settings(max_examples=30, deadline=None)
@given(arrays(max_side=3, max_dims=2))
def test_elementwise_gradients_match_numeric(values):
    def fn(arr):
        t = Tensor(arr, requires_grad=True)
        out = (t.tanh() * t.sigmoid() + (t * t)).sum()
        return t, out

    x, out = fn(values.copy())
    out.backward()
    numeric = numeric_grad(
        lambda arr: float(fn(arr)[1].data), values.copy())
    np.testing.assert_allclose(x.grad, numeric, atol=1e-5, rtol=1e-4)


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_reshape_roundtrip_preserves_grad(values):
    x = Tensor(values, requires_grad=True)
    flat = x.reshape(values.size)
    restored = flat.reshape(*values.shape)
    (restored * 2.0).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(values, 2.0))


@settings(max_examples=40, deadline=None)
@given(arrays(max_dims=2, min_dims=2))
def test_transpose_involution(values):
    x = Tensor(values)
    np.testing.assert_allclose(x.T.T.data, values)


@settings(max_examples=40, deadline=None)
@given(arrays(max_dims=2), st.floats(min_value=0.5, max_value=2.0))
def test_scalar_multiplication_scales_gradient(values, scale):
    x = Tensor(values, requires_grad=True)
    (x * scale).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(values, scale))


@settings(max_examples=30, deadline=None)
@given(st.lists(arrays(max_dims=1, max_side=4), min_size=2, max_size=4))
def test_concatenate_length_and_gradient(chunks):
    tensors = [Tensor(c, requires_grad=True) for c in chunks]
    out = concatenate(tensors, axis=0)
    assert out.shape[0] == sum(len(c) for c in chunks)
    out.sum().backward()
    for tensor, chunk in zip(tensors, chunks):
        np.testing.assert_allclose(tensor.grad, np.ones_like(chunk))


@settings(max_examples=30, deadline=None)
@given(arrays(max_dims=1), st.integers(min_value=2, max_value=4))
def test_stack_shape_and_grad_isolation(values, copies):
    tensors = [Tensor(values.copy(), requires_grad=True)
               for _ in range(copies)]
    out = stack(tensors, axis=0)
    assert out.shape == (copies,) + values.shape
    out[0].sum().backward()
    np.testing.assert_allclose(tensors[0].grad, np.ones_like(values))
    for other in tensors[1:]:
        np.testing.assert_allclose(other.grad, np.zeros_like(values))


@settings(max_examples=30, deadline=None)
@given(arrays(min_dims=2, max_dims=2, max_side=3),
       arrays(min_dims=2, max_dims=2, max_side=3))
def test_matmul_linearity_in_first_argument(a_values, b_values):
    # (2A) @ B == 2 (A @ B) for compatible shapes.
    k = a_values.shape[1]
    b = Tensor(np.resize(b_values, (k, 2)))
    a = Tensor(a_values)
    np.testing.assert_allclose(
        ((a * 2.0) @ b).data, 2.0 * (a @ b).data, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_mean_equals_sum_over_size(values):
    x = Tensor(values)
    np.testing.assert_allclose(x.mean().data, x.sum().data / values.size)


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_relu_output_nonnegative_and_bounded(values):
    out = Tensor(values).relu().data
    assert (out >= 0).all()
    assert (out <= np.abs(values)).all()


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_sigmoid_in_unit_interval(values):
    out = Tensor(values).sigmoid().data
    assert (out > 0).all() and (out < 1).all()


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_clip_respects_bounds(values):
    out = Tensor(values).clip(-1.0, 1.0).data
    assert (out >= -1.0).all() and (out <= 1.0).all()
