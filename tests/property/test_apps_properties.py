"""Property-based tests for application-layer components."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.drl import PTZCameraEnv
from repro.apps.social.triangulation import MultimodalTriangulation
from repro.apps.social.network import SocialNetworkAnalysis
from repro.compute.graphx import Graph
from repro.data import TweetCollector
from repro.data.social import Tweet


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 6), min_size=1, max_size=60),
       st.integers(0, 1000))
def test_ptz_env_invariants_under_any_action_sequence(actions, seed):
    env = PTZCameraEnv(episode_length=len(actions), seed=seed)
    observation = env.reset()
    total_steps = 0
    done = False
    for action in actions:
        if done:
            break
        observation, reward, done = env.step(action)
        total_steps += 1
        # invariants: camera and incident stay in the unit square,
        # zoom within bounds, observation well-formed
        assert 0.0 <= env.cam[0] <= 1.0 and 0.0 <= env.cam[1] <= 1.0
        assert 0.0 <= env.incident[0] <= 1.0
        assert 0 <= env.zoom <= env.MAX_ZOOM
        assert observation.shape == (5,)
        assert np.isfinite(observation).all()
        assert np.isfinite(reward)
    assert done
    assert total_steps == len(actions)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(["shots", "music", "traffic", "police"]),
                min_size=0, max_size=30),
       st.sampled_from([["shots"], ["police", "shots"], ["music"]]))
def test_collector_accepts_exactly_matching_tweets(words, keywords):
    tweets = [Tweet(tweet_id=i, user_id="u", text=word,
                    location=(0.5, 0.5), time=0.0)
              for i, word in enumerate(words)]
    collector = TweetCollector()
    collector.add_keywords("watch", keywords)
    accepted = collector.collect(tweets)
    expected = [w for w in words if w in keywords]
    assert [doc["text"] for doc in accepted] == expected
    assert collector.accepted + collector.rejected == len(words)


def small_network(seed):
    rng = np.random.default_rng(seed)
    members = [f"m{i}" for i in range(12)]
    edges = [(members[i], members[j])
             for i in range(12) for j in range(i + 1, 12)
             if rng.random() < 0.3]
    return SocialNetworkAnalysis(
        Graph({m: {} for m in members}, edges))


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 500),
       st.floats(0.02, 0.3, allow_nan=False),
       st.floats(0.5, 4.0, allow_nan=False))
def test_triangulation_stages_always_narrow(seed, radius, window):
    analysis = small_network(seed)
    anchor = "m0"
    rng = np.random.default_rng(seed + 1)
    tweets = [Tweet(tweet_id=i, user_id=f"m{int(rng.integers(12))}",
                    text=str(rng.choice(["shots fired", "nice day",
                                         "robbery downtown", "lunch"])),
                    location=(float(rng.random()), float(rng.random())),
                    time=float(rng.uniform(0, 24)))
              for i in range(60)]
    report = MultimodalTriangulation(analysis).investigate(
        anchor, (0.5, 0.5), 12.0, tweets,
        geo_radius=radius, time_window=window)
    counts = [count for _, count in report.stages()]
    assert counts == sorted(counts, reverse=True)
    assert report.persons_of_interest <= analysis.associates(anchor, 2)
