"""Property-based tests for the sim kernel, fog costing, Flume and stores."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Environment, NetworkTopology, Tier
from repro.fog import (
    FogPipeline,
    ScoreThresholdPolicy,
    model_split_from_early_exit,
    place_bottom_up,
)
from repro.streaming import Channel, FlumeAgent, FunctionSource, SinkError


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=1, max_size=15))
def test_sim_events_fire_in_time_order(delays):
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    np.testing.assert_allclose(sorted(fired), sorted(delays))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 100), min_size=1, max_size=30),
       st.integers(1, 10))
def test_channel_transactions_never_lose_events(values, batch):
    channel = Channel(capacity=100)
    for value in values:
        channel.put(value)
    drained = []
    while True:
        txn = channel.take_batch(batch)
        if not txn.events:
            txn.commit()
            break
        txn.rollback()
        txn2 = channel.take_batch(batch)
        drained.extend(txn2.events)
        txn2.commit()
    assert drained == values


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(), min_size=0, max_size=60),
       st.integers(0, 5), st.integers(1, 10))
def test_flume_at_least_once_any_failure_pattern(events, failures, batch):
    received = []
    remaining = {"n": failures}

    def sink(batch_events):
        if remaining["n"] > 0:
            remaining["n"] -= 1
            raise SinkError("transient")
        received.extend(batch_events)

    agent = FlumeAgent(FunctionSource(list(events)), sink, batch_size=batch)
    metrics = agent.run()
    assert received == list(events)
    assert metrics.events_delivered == len(events)


@settings(max_examples=20, deadline=None)
@given(st.floats(1e6, 1e10, allow_nan=False),
       st.floats(1e8, 1e11, allow_nan=False),
       st.integers(100, 100_000),
       st.integers(100, 1_000_000))
def test_fog_deeper_resolution_never_cheaper(local_flops, remote_flops,
                                             feature_bytes, input_bytes):
    topology = NetworkTopology.build_fog_hierarchy(
        edges_per_fog=1, fogs_per_server=1, servers=1)
    edge = topology.machines(Tier.EDGE)[0].name
    stages = model_split_from_early_exit(
        local_flops=local_flops, remote_flops=remote_flops,
        feature_bytes=feature_bytes, input_bytes=input_bytes)
    pipeline = FogPipeline(place_bottom_up(topology, stages, edge))
    costs = [pipeline.item_cost(stage).total_s
             for stage in range(len(stages))]
    assert costs == sorted(costs)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.floats(-5, 5, allow_nan=False),
                          st.floats(-5, 5, allow_nan=False)),
                min_size=1, max_size=20))
def test_exit_fraction_monotone_in_threshold(logit_pairs):
    logits = np.array(logit_pairs)
    thresholds = [0.5, 0.7, 0.9, 1.0]
    fractions = [ScoreThresholdPolicy(t).exit_fraction(logits)
                 for t in thresholds]
    assert fractions == sorted(fractions, reverse=True)


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 20), st.integers(0, 100))
def test_fog_stream_conserves_items(num_items, seed):
    topology = NetworkTopology.build_fog_hierarchy(
        edges_per_fog=1, fogs_per_server=1, servers=1)
    edge = topology.machines(Tier.EDGE)[0].name
    stages = model_split_from_early_exit(
        local_flops=1e7, remote_flops=1e9,
        feature_bytes=1000, input_bytes=5000)
    pipeline = FogPipeline(place_bottom_up(topology, stages, edge))
    stats = pipeline.simulate_stream(
        num_items=num_items, arrival_interval_s=0.01,
        exit_probabilities={1: 0.5}, seed=seed)
    assert stats.completed == num_items
    assert sum(stats.resolved_per_stage.values()) == num_items
