"""Int8 post-training quantization: round-trips, calibration, parity bound.

The edge tier of a two-tier deployment ships int8 weights (4x smaller
payload) and fake-quantizes activations on a calibrated grid; the bound
under test is *measured agreement* with the float model on held-out
data, not a hoped-for tolerance.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.fuse import fuse_for_inference
from repro.nn.inference import batched_forward
from repro.nn.models.earlyexit import EarlyExitNetwork
from repro.nn.models.resnet import SmallResNet
from repro.nn.plan import capture_plan
from repro.nn.quantize import (
    QPARAM_OVERHEAD_BYTES,
    QuantizedConv2d,
    QuantizedLinear,
    calibrate_activation,
    dequantize_weight,
    fake_quant,
    measure_quantization_drop,
    quantize_for_inference,
    quantize_weight_per_channel,
    quantized_state_bytes,
)
from repro.nn.tensor import Tensor


def rng_for(seed=0):
    return np.random.default_rng(seed)


class TestWeightQuantization:
    def test_round_trip_error_bounded_by_half_scale(self):
        w = rng_for().normal(0.0, 0.8, size=(8, 4, 3, 3)).astype(np.float32)
        q, scale = quantize_weight_per_channel(w)
        assert q.dtype == np.int8
        back = dequantize_weight(q, scale, np.float32)
        per_channel_bound = scale.reshape(-1, 1, 1, 1) * 0.5 + 1e-7
        assert np.all(np.abs(back - w) <= per_channel_bound)

    def test_scales_are_per_output_channel(self):
        w = np.ones((3, 2), dtype=np.float32)
        w[1] *= 10.0
        _, scale = quantize_weight_per_channel(w)
        assert scale.shape == (3,)
        assert scale[1] == pytest.approx(10.0 * scale[0])

    def test_zero_channel_safe(self):
        w = np.zeros((2, 4), dtype=np.float32)
        w[0, 0] = 1.0
        q, scale = quantize_weight_per_channel(w)
        assert scale[1] == 1.0
        assert np.array_equal(dequantize_weight(q, scale, np.float32)[1],
                              np.zeros(4, dtype=np.float32))


class TestActivationCalibration:
    def test_range_always_covers_zero(self):
        scale, zp = calibrate_activation(np.array([2.0, 6.0]))
        grid = fake_quant(np.array([0.0]), scale, zp)
        assert grid[0] == pytest.approx(0.0, abs=scale / 2)

    def test_constant_zero_input_degenerates_safely(self):
        scale, zp = calibrate_activation(np.zeros(10))
        assert scale == 1.0 and zp == 0.0
        assert np.array_equal(fake_quant(np.zeros(4), scale, zp),
                              np.zeros(4))

    def test_fake_quant_error_bounded_and_idempotent(self):
        values = rng_for(1).normal(size=512).astype(np.float32)
        scale, zp = calibrate_activation(values)
        once = fake_quant(values, scale, zp)
        assert np.max(np.abs(once - values)) <= scale / 2 + 1e-7
        assert np.array_equal(fake_quant(once, scale, zp), once)


class TestQuantizeForInference:
    def model(self):
        rng = rng_for()
        return fuse_for_inference(nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng),
            nn.BatchNorm2d(4), nn.ReLU(),
            nn.GlobalAvgPool2d(), nn.Linear(4, 3, rng=rng),
        ), dtype=np.float32)

    def test_layers_replaced_and_counted(self):
        model = self.model()
        x = rng_for(1).normal(size=(6, 1, 12, 12)).astype(np.float32)
        quantized = quantize_for_inference(model, x)
        kinds = [type(m) for m in quantized.modules()]
        assert QuantizedConv2d in kinds and QuantizedLinear in kinds
        assert quantized.quantized_layers == 2
        # original untouched
        assert not any(isinstance(m, QuantizedConv2d) for m in model.modules())

    def test_bare_layer_rejected(self):
        with pytest.raises(ValueError, match="container"):
            quantize_for_inference(nn.Conv2d(1, 2, 3),
                                   np.zeros((1, 1, 8, 8), dtype=np.float32))

    def test_grad_mode_rejected(self):
        model = self.model()
        x = rng_for(1).normal(size=(2, 1, 12, 12)).astype(np.float32)
        quantized = quantize_for_inference(model, x)
        with pytest.raises(RuntimeError, match="inference-only"):
            quantized(Tensor(x))

    def test_payload_bytes_shrink_about_4x(self):
        # Weight tensors large enough that the per-tensor scale/qparam
        # overhead is noise next to the 4x weight shrink.
        rng = rng_for(5)
        model = fuse_for_inference(nn.Sequential(
            nn.Conv2d(8, 32, 3, padding=1, rng=rng), nn.ReLU(),
            nn.GlobalAvgPool2d(), nn.Linear(32, 64, rng=rng),
        ), dtype=np.float32)
        x = rng.normal(size=(4, 8, 12, 12)).astype(np.float32)
        quantized = quantize_for_inference(model, x)
        float_bytes = sum(p.data.nbytes for p in model.parameters())
        int8_bytes = quantized_state_bytes(quantized)
        assert int8_bytes < 0.35 * float_bytes
        assert int8_bytes > 0.25 * float_bytes

    def test_qparam_overhead_accounted(self):
        model = self.model()
        x = rng_for(1).normal(size=(4, 1, 12, 12)).astype(np.float32)
        quantized = quantize_for_inference(model, x)
        layers = [m for m in quantized.modules()
                  if isinstance(m, (QuantizedConv2d, QuantizedLinear))]
        manual = 0
        for layer in layers:
            manual += layer._buffer_weight_q.nbytes
            manual += layer._buffer_weight_scale.nbytes
            manual += QPARAM_OVERHEAD_BYTES
            if layer.bias is not None:
                manual += layer.bias.data.nbytes
        assert quantized_state_bytes(quantized) == manual


class TestAccuracyParityBound:
    """The measured drop bound on the paper's two serving models."""

    def test_fig5_early_exit_agreement(self):
        rng = rng_for(2)
        model = fuse_for_inference(EarlyExitNetwork(
            local_stage=nn.Sequential(
                nn.Conv2d(1, 8, 3, padding=1, rng=rng),
                nn.BatchNorm2d(8), nn.ReLU()),
            local_head=nn.Sequential(
                nn.GlobalAvgPool2d(), nn.Linear(8, 4, rng=rng)),
            remote_stage=nn.Sequential(
                nn.Conv2d(8, 16, 3, stride=2, padding=1, rng=rng),
                nn.BatchNorm2d(16), nn.ReLU()),
            remote_head=nn.Sequential(
                nn.GlobalAvgPool2d(), nn.Linear(16, 4, rng=rng)),
        ), dtype=np.float32)
        x = rng.normal(size=(48, 1, 16, 16)).astype(np.float32)
        targets = rng.integers(0, 4, size=48)
        edge = quantize_for_inference(model.local_stage, x)
        feats = batched_forward(edge, x, model="test.calibration")
        head = quantize_for_inference(model.local_head, feats)

        def local_logits(m, data):
            stage, exit_head = m
            return batched_forward(exit_head,
                                   batched_forward(stage, data))

        report = measure_quantization_drop(
            (model.local_stage, model.local_head), (edge, head), x, targets,
            forward=local_logits)
        assert report["agreement"] >= 0.9
        assert abs(report["drop"]) <= 0.1

    def test_fig7_resnet_agreement(self):
        rng = rng_for(3)
        model = fuse_for_inference(
            SmallResNet(1, num_classes=4, widths=(8, 16), rng=rng),
            dtype=np.float32)
        x = rng.normal(size=(48, 1, 16, 16)).astype(np.float32)
        targets = rng.integers(0, 4, size=48)
        quantized = quantize_for_inference(model, x)
        report = measure_quantization_drop(model, quantized, x, targets)
        assert report["agreement"] >= 0.9
        assert abs(report["drop"]) <= 0.1
        assert 0.0 <= report["float_accuracy"] <= 1.0


class TestQuantizedPlans:
    def test_quantized_stack_plans_bit_identical_to_quantized_eager(self):
        rng = rng_for(4)
        model = fuse_for_inference(nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng),
            nn.BatchNorm2d(4), nn.ReLU(),
            nn.GlobalAvgPool2d(), nn.Linear(4, 3, rng=rng),
        ), dtype=np.float32)
        x = rng.normal(size=(6, 1, 12, 12)).astype(np.float32)
        quantized = quantize_for_inference(model, x)
        plan = capture_plan(quantized, x)
        with nn.no_grad():
            expected = quantized(Tensor(x)).data
        assert np.array_equal(plan.run(x), expected)
        assert np.array_equal(plan.run(x[:2]), expected[:2])
