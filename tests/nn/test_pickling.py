"""Pickle round-trips for tensors and the model zoo (worker transport)."""

import pickle

import numpy as np
import pytest

from repro import nn
from repro.nn.models.autoencoder import Autoencoder
from repro.nn.models.cnn import SimpleCNN
from repro.nn.models.earlyexit import EarlyExitNetwork
from repro.nn.models.lstm import LSTMClassifier
from repro.nn.models.resnet import SmallResNet
from repro.nn.models.yolo import TinyYolo
from repro.nn.tensor import Tensor
from repro.runtime import Runtime, using_runtime


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestTensorPickling:
    def test_values_dtype_and_flags_preserved(self):
        for dtype in (np.float32, np.float64):
            t = Tensor(np.arange(6, dtype=dtype).reshape(2, 3),
                       requires_grad=True, name="weights")
            back = roundtrip(t)
            assert np.array_equal(back.data, t.data)
            assert back.dtype == dtype
            assert back.requires_grad is True
            assert back.name == "weights"

    def test_accumulated_grad_preserved(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 3.0).sum().backward()
        back = roundtrip(t)
        assert np.array_equal(back.grad, t.grad)

    def test_grad_closures_dropped(self):
        # A tensor mid-graph carries a backward closure over its parents;
        # the round-trip must detach it rather than fail to pickle.
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (a * a).sum()
        assert out._backward is not None
        back = roundtrip(out)
        assert back._backward is None
        assert back._parents == ()
        assert np.array_equal(back.data, out.data)

    def test_parameter_roundtrip_stays_parameter(self):
        p = nn.Parameter(np.ones((2, 2)))
        back = roundtrip(p)
        assert isinstance(back, nn.Parameter)
        assert np.array_equal(back.data, p.data)


def zoo(rng):
    return {
        "linear_stack": nn.Sequential(
            nn.Linear(6, 8, rng=rng), nn.ReLU(),
            nn.Dropout(0.2, rng=rng), nn.Linear(8, 3, rng=rng)),
        "cnn": SimpleCNN(1, 12, num_classes=3, rng=rng),
        "resnet": SmallResNet(1, num_classes=3, widths=(4, 8), rng=rng),
        "lstm": LSTMClassifier(5, 7, 3, rng=rng),
        "autoencoder": Autoencoder(10, (6,), 4, rng=rng),
        "yolo": TinyYolo(3, 16, num_classes=3, rng=rng),
    }


def sample_input(name, rng):
    if name == "linear_stack":
        return Tensor(rng.normal(0.0, 1.0, (4, 6)))
    if name in ("cnn", "resnet"):
        return Tensor(rng.normal(0.0, 1.0, (2, 1, 12, 12)))
    if name == "lstm":
        return Tensor(rng.normal(0.0, 1.0, (2, 6, 5)))
    if name == "autoencoder":
        return Tensor(rng.normal(0.0, 1.0, (4, 10)))
    if name == "yolo":
        return Tensor(rng.normal(0.0, 1.0, (2, 3, 16, 16)))
    raise AssertionError(name)


class TestModulePickling:
    @pytest.mark.parametrize("name", ["linear_stack", "cnn", "resnet",
                                      "lstm", "autoencoder", "yolo"])
    def test_zoo_roundtrip_preserves_state_and_forward(self, name):
        with using_runtime(Runtime(seed=2)) as rt:
            rng = rt.rng.np_child("test.pickling", name)
            model = zoo(rng)[name]
            back = roundtrip(model)
            state, state_back = model.state_dict(), back.state_dict()
            assert sorted(state) == sorted(state_back)
            for key in state:
                assert np.array_equal(state[key], state_back[key]), key
                assert state[key].dtype == state_back[key].dtype, key
            x = sample_input(name, rt.rng.np_child("test.pickling.x", name))
            with nn.no_grad():
                model.eval()
                back.eval()
                expected = model(x)
                actual = back(x)
            expected = expected[0] if isinstance(expected, tuple) else expected
            actual = actual[0] if isinstance(actual, tuple) else actual
            assert np.array_equal(expected.data, actual.data)

    def test_early_exit_roundtrip_preserves_decisions(self):
        with using_runtime(Runtime(seed=3)) as rt:
            rng = rt.rng.np_child("test.pickling.ee")
            model = EarlyExitNetwork(
                local_stage=nn.Sequential(
                    nn.Conv2d(1, 4, 3, padding=1, rng=rng), nn.ReLU()),
                local_head=nn.Sequential(
                    nn.GlobalAvgPool2d(), nn.Linear(4, 3, rng=rng)),
                remote_stage=nn.Sequential(
                    nn.Conv2d(4, 8, 3, padding=1, rng=rng), nn.ReLU()),
                remote_head=nn.Sequential(
                    nn.GlobalAvgPool2d(), nn.Linear(8, 3, rng=rng)))
            x = rt.rng.np_child("test.pickling.ee.x").normal(
                0.0, 1.0, (6, 1, 8, 8))
            before = model.infer_batch(x, threshold=0.5)
            after = roundtrip(model).infer_batch(x, threshold=0.5)
            assert np.array_equal(before.predictions, after.predictions)
            assert np.array_equal(before.exit_index, after.exit_index)

    def test_trained_module_with_graph_still_pickles(self):
        # A module whose parameters hold gradients (and whose forward
        # just built a graph) must round-trip: closures drop, grads stay.
        with using_runtime(Runtime(seed=4)) as rt:
            rng = rt.rng.np_child("test.pickling.grad")
            model = nn.Linear(4, 2, rng=rng)
            out = model(Tensor(rng.normal(0.0, 1.0, (3, 4)))).sum()
            out.backward()
            assert model.weight.grad is not None
            back = roundtrip(model)
            assert np.array_equal(back.weight.grad, model.weight.grad)
            assert back.weight._backward is None
