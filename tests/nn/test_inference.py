"""Inference fast-path tests: grad mode, dtype policy, fusion, batching."""

import numpy as np
import pytest

from repro import nn
from repro.nn.dtypes import default_dtype, ensure_float, get_default_dtype, \
    set_default_dtype
from repro.nn.fuse import fuse_for_inference
from repro.nn.inference import batched_forward, eval_mode, iter_microbatches
from repro.nn.models.earlyexit import EarlyExitNetwork, score_confidence
from repro.nn.models.resnet import SmallResNet
from repro.nn.tensor import Tensor


def make_early_exit(rng):
    return EarlyExitNetwork(
        local_stage=nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng),
            nn.BatchNorm2d(4),
            nn.ReLU(),
        ),
        local_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(4, 3, rng=rng)),
        remote_stage=nn.Sequential(
            nn.Conv2d(4, 8, 3, stride=2, padding=1, rng=rng),
            nn.BatchNorm2d(8),
            nn.ReLU(),
        ),
        remote_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(8, 3, rng=rng)),
    )


def warm_batchnorm(model, x):
    """Run a couple of training forwards so BN running stats are non-trivial."""
    model.train()
    for _ in range(3):
        model(Tensor(x))
    model.eval()


class TestGradMode:
    def test_no_grad_records_no_closures(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        with nn.no_grad():
            y = (x * 2.0 + 1.0).relu()
        assert not y.requires_grad
        assert y._backward is None
        assert y._parents == ()

    def test_grad_mode_restored_after_exception(self):
        assert nn.is_grad_enabled()
        with pytest.raises(RuntimeError):
            with nn.no_grad():
                assert not nn.is_grad_enabled()
                raise RuntimeError("boom")
        assert nn.is_grad_enabled()

    def test_enable_grad_nested_inside_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            with nn.enable_grad():
                y = x * 2.0
            z = x * 2.0
        assert y.requires_grad
        assert not z.requires_grad

    def test_decorator_form(self):
        @nn.no_grad()
        def forward(t):
            return t * 3.0

        y = forward(Tensor([1.0], requires_grad=True))
        assert not y.requires_grad
        assert nn.is_grad_enabled()

    def test_backward_still_works_after_no_grad_region(self):
        x = Tensor([2.0], requires_grad=True)
        with nn.no_grad():
            x * 5.0
        y = x * 5.0
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [5.0])


class TestDtypePolicy:
    def test_default_dtype_roundtrip(self):
        previous = set_default_dtype(np.float32)
        try:
            assert get_default_dtype() == np.float32
            assert Tensor([1, 2]).data.dtype == np.float32
        finally:
            set_default_dtype(previous)
        assert get_default_dtype() == np.float64

    def test_default_dtype_context(self):
        with default_dtype(np.float32):
            assert Tensor([1]).data.dtype == np.float32
        assert Tensor([1]).data.dtype == np.float64

    def test_rejects_non_float_default(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_ensure_float_preserves_float32(self):
        x = np.ones(3, dtype=np.float32)
        assert ensure_float(x).dtype == np.float32
        assert ensure_float([1, 2]).dtype == np.float64

    def test_explicit_dtype_wins(self):
        t = Tensor(np.ones(2, dtype=np.float32), dtype=np.float64)
        assert t.data.dtype == np.float64

    def test_ops_preserve_float32(self):
        x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        w = Tensor(np.ones((3, 2), dtype=np.float32))
        y = ((x @ w) * 2.0 + 1.0).relu().leaky_relu().exp().log()
        assert y.data.dtype == np.float32
        assert (x / 3.0).data.dtype == np.float32
        assert x.mean().data.dtype == np.float32

    def test_astype_detaches(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x.astype(np.float32)
        assert y.data.dtype == np.float32
        assert not y.requires_grad

    def test_item_multi_element_raises_value_error(self):
        with pytest.raises(ValueError, match="exactly one element"):
            Tensor([1.0, 2.0]).item()

    def test_module_astype(self):
        rng = np.random.default_rng(0)
        model = SmallResNet(1, num_classes=3, widths=(4,), rng=rng)
        model.astype(np.float32)
        assert all(p.data.dtype == np.float32 for p in model.parameters())
        x = Tensor(rng.normal(0, 1, (2, 1, 8, 8)).astype(np.float32))
        assert model(x).data.dtype == np.float32


class TestFusion:
    def test_resnet_fusion_parity_float64(self):
        rng = np.random.default_rng(1)
        model = SmallResNet(1, num_classes=4, widths=(4, 8), rng=rng)
        x = rng.normal(0, 1, (4, 1, 8, 8))
        warm_batchnorm(model, x)
        fused = fuse_for_inference(model)
        with nn.no_grad():
            expected = model(Tensor(x)).data
            got = fused(Tensor(x)).data
        np.testing.assert_allclose(got, expected, atol=1e-5)

    def test_resnet_fusion_parity_float32(self):
        rng = np.random.default_rng(2)
        model = SmallResNet(1, num_classes=4, widths=(4,), rng=rng)
        x = rng.normal(0, 1, (4, 1, 8, 8))
        warm_batchnorm(model, x)
        fused = fuse_for_inference(model, dtype=np.float32)
        with nn.no_grad():
            expected = model(Tensor(x)).data
            got = fused(Tensor(x.astype(np.float32))).data
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, expected, atol=1e-4)

    def test_fused_layer_count_and_identities(self):
        rng = np.random.default_rng(3)
        # widths=(4, 8): stem_bn + 2 blocks x (bn1, bn2, shortcut_bn) = 7.
        model = SmallResNet(1, num_classes=4, widths=(4, 8), rng=rng)
        fused = fuse_for_inference(model)
        assert fused.fused_layers == 7
        assert isinstance(fused.stem_bn, nn.Identity)
        assert isinstance(fused.block0.bn1, nn.Identity)
        assert isinstance(fused.block1.shortcut_bn, nn.Identity)

    def test_original_model_untouched(self):
        rng = np.random.default_rng(4)
        model = SmallResNet(1, num_classes=3, widths=(4,), rng=rng)
        x = rng.normal(0, 1, (2, 1, 8, 8))
        warm_batchnorm(model, x)
        before = model(Tensor(x)).data.copy()
        fuse_for_inference(model, dtype=np.float32)
        assert isinstance(model.stem_bn, nn.BatchNorm2d)
        assert model.stem.weight.data.dtype == np.float64
        np.testing.assert_array_equal(model(Tensor(x)).data, before)

    def test_fused_early_exit_parity(self):
        rng = np.random.default_rng(5)
        model = make_early_exit(rng)
        x = rng.normal(0, 1, (6, 1, 8, 8))
        warm_batchnorm(model, x)
        fused = fuse_for_inference(model)
        assert fused.fused_layers == 2
        batch = model.infer_batch(x, threshold=0.5)
        fused_batch = fused.infer_batch(x, threshold=0.5)
        np.testing.assert_array_equal(fused_batch.predictions,
                                      batch.predictions)
        np.testing.assert_array_equal(fused_batch.exit_index, batch.exit_index)
        np.testing.assert_allclose(fused_batch.local_logits,
                                   batch.local_logits, atol=1e-5)


class TestBatchedEarlyExitParity:
    def reference_decisions(self, model, x, threshold):
        """The pre-batching semantics: one sample at a time, by hand."""
        rows = []
        with eval_mode(model), nn.no_grad():
            for index in range(x.shape[0]):
                features = model.local_stage(Tensor(x[index:index + 1]))
                local = model.local_head(features).data
                conf = float(score_confidence(local)[0])
                if conf >= threshold:
                    rows.append((int(local.argmax()), 1, conf))
                else:
                    remote = model.remote_head(
                        model.remote_stage(features)).data
                    rows.append((int(remote.argmax()), 2, conf))
        return rows

    @pytest.mark.parametrize("batch_size", [None, 1, 3, 100])
    def test_batched_matches_per_sample(self, batch_size):
        rng = np.random.default_rng(6)
        model = make_early_exit(rng)
        x = rng.normal(0, 1, (10, 1, 8, 8))
        warm_batchnorm(model, x)
        # Pick a threshold at the median confidence so both exits are used.
        probe = model.infer_batch(x, threshold=0.0)
        threshold = float(np.median(probe.confidence))
        reference = self.reference_decisions(model, x, threshold)
        batch = model.infer_batch(x, threshold, batch_size=batch_size)
        assert 0 < batch.local_fraction < 1
        for row, (prediction, exit_index, conf) in enumerate(reference):
            assert batch.predictions[row] == prediction
            assert batch.exit_index[row] == exit_index
            assert batch.confidence[row] == pytest.approx(conf, abs=1e-12)

    def test_to_decisions_round_trip(self):
        rng = np.random.default_rng(7)
        model = make_early_exit(rng)
        x = rng.normal(0, 1, (8, 1, 8, 8))
        warm_batchnorm(model, x)
        batch = model.infer_batch(x, threshold=0.4, batch_size=3)
        decisions = batch.to_decisions()
        assert len(decisions) == 8
        for row, decision in enumerate(decisions):
            assert decision.prediction == batch.predictions[row]
            assert decision.exit_index == batch.exit_index[row]
            escalated = batch.exit_index[row] == 2
            assert (decision.remote_logits is not None) == escalated

    def test_infer_matches_infer_batch(self):
        rng = np.random.default_rng(8)
        model = make_early_exit(rng)
        x = rng.normal(0, 1, (5, 1, 8, 8))
        warm_batchnorm(model, x)
        whole = model.infer(x, threshold=0.4)
        chunked = model.infer(x, threshold=0.4, batch_size=2)
        assert [d.prediction for d in whole] == [d.prediction for d in chunked]
        assert [d.exit_index for d in whole] == [d.exit_index for d in chunked]


class TestInferenceHelpers:
    def test_eval_mode_restores_training_flags(self):
        rng = np.random.default_rng(9)
        model = make_early_exit(rng)
        model.train()
        with eval_mode(model):
            assert all(not m.training for m in model.modules())
        assert all(m.training for m in model.modules())

    def test_eval_mode_restores_on_exception(self):
        rng = np.random.default_rng(10)
        model = make_early_exit(rng)
        model.train()
        with pytest.raises(RuntimeError):
            with eval_mode(model):
                raise RuntimeError("boom")
        assert all(m.training for m in model.modules())

    def test_iter_microbatches_chunks(self):
        data = np.arange(10).reshape(10, 1)
        chunks = list(iter_microbatches(data, 4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        np.testing.assert_array_equal(np.concatenate(chunks), data)
        assert len(list(iter_microbatches(data, None))) == 1

    def test_iter_microbatches_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(iter_microbatches(np.zeros((4, 1)), 0))

    def test_batched_forward_matches_full(self):
        rng = np.random.default_rng(11)
        model = SmallResNet(1, num_classes=3, widths=(4,), rng=rng)
        x = rng.normal(0, 1, (7, 1, 8, 8))
        warm_batchnorm(model, x)
        with eval_mode(model), nn.no_grad():
            expected = model(Tensor(x)).data
        got = batched_forward(model, x, batch_size=3)
        np.testing.assert_allclose(got.data, expected, atol=1e-12)


class TestZeroRowBatches:
    """A gateway draining an empty coalescing window sends zero rows."""

    @pytest.mark.parametrize("batch_size", [None, 1, 4])
    def test_batched_forward_empty_batch_returns_empty_array(self, batch_size):
        rng = np.random.default_rng(12)
        model = nn.Sequential(nn.Linear(8, 4, rng=rng), nn.ReLU(),
                              nn.Linear(4, 3, rng=rng))
        out = batched_forward(model, np.zeros((0, 8)), batch_size=batch_size)
        assert out.shape == (0, 3)

    def test_batched_forward_empty_conv_batch(self):
        rng = np.random.default_rng(13)
        model = SmallResNet(1, num_classes=3, widths=(4,), rng=rng)
        out = batched_forward(model, np.zeros((0, 1, 8, 8)), batch_size=2)
        assert out.shape == (0, 3)

    @pytest.mark.parametrize("batch_size", [None, 4])
    def test_infer_batch_empty(self, batch_size):
        rng = np.random.default_rng(14)
        model = make_early_exit(rng)
        decisions = model.infer_batch(
            np.zeros((0, 1, 8, 8)), threshold=0.5, batch_size=batch_size)
        assert len(decisions) == 0
        assert decisions.predictions.shape == (0,)
        assert decisions.local_logits.shape == (0, 3)
        assert decisions.remote_rows.size == 0
        assert decisions.local_fraction == 0.0
        assert decisions.to_decisions() == []
