"""Tests for FLOP estimation and checkpoint serialization."""

import numpy as np
import pytest

from repro import nn
from repro.nn.flops import activation_size_bytes, estimate_flops
from repro.nn.tensor import Tensor


class TestFlops:
    def test_linear_flops(self):
        flops, shape = estimate_flops(nn.Linear(10, 5), (10,))
        assert flops == 2 * 10 * 5
        assert shape == (5,)

    def test_linear_shape_mismatch(self):
        with pytest.raises(ValueError):
            estimate_flops(nn.Linear(10, 5), (7,))

    def test_conv_flops_formula(self):
        conv = nn.Conv2d(3, 8, kernel_size=3, padding=1)
        flops, shape = estimate_flops(conv, (3, 16, 16))
        assert shape == (8, 16, 16)
        assert flops == 2 * 8 * 16 * 16 * 3 * 3 * 3

    def test_conv_stride_changes_output(self):
        conv = nn.Conv2d(1, 1, kernel_size=3, stride=2, padding=1)
        _, shape = estimate_flops(conv, (1, 8, 8))
        assert shape == (1, 4, 4)

    def test_sequential_accumulates_and_tracks_shape(self):
        model = nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1), nn.ReLU(), nn.MaxPool2d(2),
            nn.Flatten(), nn.Linear(4 * 8 * 8, 10))
        flops, shape = estimate_flops(model, (1, 16, 16))
        assert shape == (10,)
        assert flops > 0

    def test_sequential_shape_consistency_with_forward(self):
        model = nn.Sequential(
            nn.Conv2d(2, 6, 3, stride=2, padding=1), nn.ReLU(),
            nn.MaxPool2d(2), nn.Flatten())
        _, shape = estimate_flops(model, (2, 16, 16))
        out = model(Tensor(np.zeros((1, 2, 16, 16))))
        assert out.shape[1:] == shape

    def test_lstm_flops_scale_with_steps(self):
        lstm = nn.LSTM(8, 16)
        short, _ = estimate_flops(lstm, (5, 8))
        long, _ = estimate_flops(lstm, (10, 8))
        assert long == 2 * short

    def test_unknown_module_rejected(self):
        class Mystery(nn.Module):
            pass

        with pytest.raises(TypeError):
            estimate_flops(Mystery(), (3,))

    def test_deeper_model_costs_more(self):
        shallow = nn.Sequential(nn.Conv2d(1, 4, 3, padding=1))
        deep = nn.Sequential(nn.Conv2d(1, 4, 3, padding=1),
                             nn.Conv2d(4, 4, 3, padding=1))
        f1, _ = estimate_flops(shallow, (1, 8, 8))
        f2, _ = estimate_flops(deep, (1, 8, 8))
        assert f2 > f1

    def test_activation_size(self):
        assert activation_size_bytes((16, 8, 8)) == 16 * 8 * 8 * 4
        assert activation_size_bytes((16, 8, 8), dtype_bytes=8) == 16 * 8 * 8 * 8


class TestFlopsRegressions:
    """Pins for two historical FLOP-accounting bugs (placement inputs)."""

    def test_dropout_is_free_at_inference(self):
        # Eval-mode dropout is an identity; it used to be priced like an
        # activation, inflating edge-tier cost estimates.
        flops, shape = estimate_flops(nn.Dropout(0.5), (8, 4, 4))
        assert flops == 0.0
        assert shape == (8, 4, 4)
        base = nn.Sequential(nn.Linear(16, 16))
        with_dropout = nn.Sequential(nn.Linear(16, 16), nn.Dropout(0.5))
        assert estimate_flops(base, (16,)) == estimate_flops(with_dropout, (16,))

    def test_identity_is_free(self):
        assert estimate_flops(nn.Identity(), (3, 5, 5)) == (0.0, (3, 5, 5))

    def test_conv_shortcut_counts_its_batchnorm(self):
        # The Fig. 8 conv shortcut is conv + BN; the BN used to be skipped,
        # under-reporting exactly the block variant the paper champions.
        from repro.nn.models.resnet import ResNetBlock

        rng = np.random.default_rng(0)
        block = ResNetBlock(4, 8, stride=2, shortcut="conv", rng=rng)
        total, shape = estimate_flops(block, (4, 16, 16))
        assert shape == (8, 8, 8)
        expected = 0.0
        part, s = estimate_flops(block.conv1, (4, 16, 16))
        expected += part
        part, s = estimate_flops(block.bn1, s)
        expected += part + float(np.prod(s))  # interior ReLU
        part, s = estimate_flops(block.conv2, s)
        expected += part
        part, s = estimate_flops(block.bn2, s)
        expected += part
        part, short_shape = estimate_flops(block.shortcut_conv, (4, 16, 16))
        expected += part
        bn_part, _ = estimate_flops(block.shortcut_bn, short_shape)
        assert bn_part > 0
        expected += bn_part
        expected += 2.0 * float(np.prod(s))  # residual add + final ReLU
        assert total == expected

    def test_plan_flops_match_static_estimate(self):
        from repro.nn.fuse import fuse_for_inference
        from repro.nn.plan import capture_plan

        rng = np.random.default_rng(1)
        model = fuse_for_inference(nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng), nn.ReLU(),
            nn.GlobalAvgPool2d(), nn.Linear(4, 3, rng=rng),
        ), dtype=np.float32)
        x = rng.normal(size=(4, 1, 12, 12)).astype(np.float32)
        plan = capture_plan(model, x)
        static_flops, static_shape = estimate_flops(model, (1, 12, 12))
        plan_flops, plan_shape = estimate_flops(plan, (1, 12, 12))
        assert plan_flops == static_flops
        assert plan_shape == static_shape


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        model = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(0)),
                              nn.ReLU(), nn.Linear(3, 2))
        other = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(9)),
                              nn.ReLU(), nn.Linear(3, 2))
        path = tmp_path / "model.npz"
        nn.save_state(model, path)
        nn.load_state(other, path)
        x = Tensor(np.random.default_rng(1).normal(0, 1, (2, 4)))
        np.testing.assert_allclose(model(x).data, other(x).data)

    def test_bytes_roundtrip(self):
        model = nn.Linear(3, 2, rng=np.random.default_rng(2))
        other = nn.Linear(3, 2, rng=np.random.default_rng(3))
        payload = nn.state_to_bytes(model)
        nn.state_from_bytes(other, payload)
        np.testing.assert_allclose(model.weight.data, other.weight.data)

    def test_state_size_matches_parameters(self):
        model = nn.Linear(4, 3)
        expected = (4 * 3 + 3) * 8  # float64
        assert nn.state_size_bytes(model) == expected

    def test_batchnorm_buffers_serialized(self, tmp_path):
        model = nn.BatchNorm2d(2)
        model(Tensor(np.random.default_rng(4).normal(7, 1, (8, 2, 2, 2))))
        path = tmp_path / "bn.npz"
        nn.save_state(model, path)
        fresh = nn.BatchNorm2d(2)
        nn.load_state(fresh, path)
        np.testing.assert_allclose(
            model._buffer_running_mean, fresh._buffer_running_mean)
