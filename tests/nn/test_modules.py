"""Tests for the layer/module system."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestModuleMechanics:
    def test_parameters_collected_recursively(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert "layer0.weight" in names
        assert "layer2.bias" in names
        assert len(model.parameters()) == 4

    def test_num_parameters(self):
        model = nn.Linear(4, 8)
        assert model.num_parameters() == 4 * 8 + 8

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self):
        model = nn.Linear(3, 2)
        out = model(Tensor(np.ones((1, 3))))
        out.sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = nn.Sequential(nn.Linear(3, 4, rng=np.random.default_rng(1)),
                          nn.ReLU(),
                          nn.Linear(4, 2, rng=np.random.default_rng(2)))
        b = nn.Sequential(nn.Linear(3, 4, rng=np.random.default_rng(3)),
                          nn.ReLU(),
                          nn.Linear(4, 2, rng=np.random.default_rng(4)))
        x = Tensor(np.random.default_rng(5).normal(0, 1, (2, 3)))
        assert not np.allclose(a(x).data, b(x).data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_load_state_dict_shape_mismatch(self):
        model = nn.Linear(3, 2)
        state = model.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_load_state_dict_unknown_key(self):
        model = nn.Linear(3, 2)
        state = model.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_missing_key(self):
        model = nn.Linear(3, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((2, 3))})


class TestLinear:
    def test_forward_shape(self):
        layer = nn.Linear(5, 3)
        assert layer(Tensor(np.zeros((7, 5)))).shape == (7, 3)

    def test_no_bias(self):
        layer = nn.Linear(5, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradient_flows_to_weights(self):
        layer = nn.Linear(2, 1)
        out = layer(Tensor([[1.0, 2.0]]))
        out.sum().backward()
        np.testing.assert_allclose(layer.weight.grad, [[1.0, 2.0]])
        np.testing.assert_allclose(layer.bias.grad, [1.0])


class TestConvAndPoolLayers:
    def test_conv_layer_shape(self):
        layer = nn.Conv2d(3, 8, kernel_size=3, stride=1, padding=1)
        assert layer(Tensor(np.zeros((2, 3, 6, 6)))).shape == (2, 8, 6, 6)

    def test_maxpool_layer(self):
        layer = nn.MaxPool2d(2)
        assert layer(Tensor(np.zeros((1, 1, 4, 4)))).shape == (1, 1, 2, 2)

    def test_global_avg_pool_layer(self):
        layer = nn.GlobalAvgPool2d()
        assert layer(Tensor(np.zeros((2, 5, 3, 3)))).shape == (2, 5)

    def test_flatten(self):
        layer = nn.Flatten()
        assert layer(Tensor(np.zeros((2, 3, 4)))).shape == (2, 12)


class TestBatchNorm:
    def test_normalizes_training_batch(self):
        rng = np.random.default_rng(0)
        layer = nn.BatchNorm2d(3)
        x = Tensor(rng.normal(5.0, 2.0, (8, 3, 4, 4)))
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_updated(self):
        layer = nn.BatchNorm2d(2)
        x = Tensor(np.random.default_rng(1).normal(10.0, 1.0, (4, 2, 3, 3)))
        layer(x)
        assert (layer._buffer_running_mean > 0.5).all()

    def test_eval_uses_running_stats(self):
        rng = np.random.default_rng(2)
        layer = nn.BatchNorm2d(2)
        for _ in range(50):
            layer(Tensor(rng.normal(3.0, 1.0, (16, 2, 2, 2))))
        layer.eval()
        single = Tensor(np.full((1, 2, 2, 2), 3.0))
        out = layer(single).data
        np.testing.assert_allclose(out, 0.0, atol=0.2)

    def test_buffers_in_state_dict(self):
        layer = nn.BatchNorm2d(2)
        state = layer.state_dict()
        assert "running_mean" in state
        assert "running_var" in state

    def test_buffer_roundtrip(self):
        a = nn.BatchNorm2d(2)
        a(Tensor(np.random.default_rng(3).normal(4, 1, (8, 2, 2, 2))))
        b = nn.BatchNorm2d(2)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(
            a._buffer_running_mean, b._buffer_running_mean)

    def test_gradient_flows(self):
        layer = nn.BatchNorm2d(2)
        x = Tensor(np.random.default_rng(4).normal(0, 1, (4, 2, 3, 3)),
                   requires_grad=True)
        layer(x).sum().backward()
        assert layer.gamma.grad is not None
        assert x.grad is not None

    def test_batchnorm1d(self):
        layer = nn.BatchNorm1d(4)
        out = layer(Tensor(np.random.default_rng(5).normal(3, 2, (16, 4))))
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-7)


class TestDropout:
    def test_eval_is_identity(self):
        layer = nn.Dropout(0.5)
        layer.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(layer(x).data, 1.0)

    def test_training_zeroes_and_scales(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 100)))).data
        zeros = (out == 0).mean()
        assert 0.4 < zeros < 0.6
        surviving = out[out != 0]
        np.testing.assert_allclose(surviving, 2.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_p_zero_is_identity(self):
        layer = nn.Dropout(0.0)
        x = Tensor(np.ones((3, 3)))
        assert layer(x) is x


class TestLSTM:
    def test_cell_shapes(self):
        cell = nn.LSTMCell(4, 6)
        h, c = cell.initial_state(3)
        h2, c2 = cell(Tensor(np.zeros((3, 4))), (h, c))
        assert h2.shape == (3, 6)
        assert c2.shape == (3, 6)

    def test_forget_bias_initialized_to_one(self):
        cell = nn.LSTMCell(2, 3)
        np.testing.assert_allclose(cell.bias.data[3:6], 1.0)

    def test_lstm_sequence_shape(self):
        lstm = nn.LSTM(4, 8, num_layers=2)
        out = lstm(Tensor(np.zeros((3, 5, 4))))
        assert out.shape == (3, 5, 8)

    def test_last_hidden(self):
        lstm = nn.LSTM(4, 8)
        out = lstm.last_hidden(Tensor(np.zeros((3, 5, 4))))
        assert out.shape == (3, 8)

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            nn.LSTM(4, 8, num_layers=0)

    def test_gradient_through_time(self):
        lstm = nn.LSTM(2, 3, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(0, 1, (2, 4, 2)),
                   requires_grad=True)
        lstm.last_hidden(x).sum().backward()
        assert x.grad is not None
        # early timesteps must receive gradient (long-range credit)
        assert np.abs(x.grad[:, 0, :]).sum() > 0

    def test_sequence_order_matters(self):
        lstm = nn.LSTM(1, 4, rng=np.random.default_rng(2))
        seq = np.arange(6, dtype=float).reshape(1, 6, 1)
        fwd = lstm.last_hidden(Tensor(seq)).data
        rev = lstm.last_hidden(Tensor(seq[:, ::-1, :].copy())).data
        assert not np.allclose(fwd, rev)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = nn.Embedding(10, 4)
        out = emb(np.array([1, 5, 5]))
        assert out.shape == (3, 4)

    def test_out_of_range_rejected(self):
        emb = nn.Embedding(10, 4)
        with pytest.raises(ValueError):
            emb(np.array([10]))

    def test_gradient_accumulates_on_repeated_index(self):
        emb = nn.Embedding(5, 2)
        out = emb(np.array([1, 1]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestEndToEndTraining:
    def test_mlp_learns_xor(self):
        rng = np.random.default_rng(0)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        model = nn.Sequential(
            nn.Linear(2, 8, rng=rng), nn.Tanh(), nn.Linear(8, 2, rng=rng))
        optimizer = nn.Adam(model.parameters(), lr=0.05)
        for _ in range(300):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()
        assert F.accuracy(model(Tensor(x)), y) == 1.0

    def test_small_cnn_learns_patterns(self):
        rng = np.random.default_rng(1)
        # class 0: bright top half; class 1: bright bottom half
        n = 40
        x = np.zeros((n, 1, 6, 6))
        y = np.zeros(n, dtype=int)
        for i in range(n):
            label = i % 2
            y[i] = label
            noise = rng.normal(0, 0.1, (6, 6))
            if label == 0:
                x[i, 0, :3, :] = 1.0
            else:
                x[i, 0, 3:, :] = 1.0
            x[i, 0] += noise
        model = nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng), nn.ReLU(),
            nn.MaxPool2d(2), nn.Flatten(),
            nn.Linear(4 * 3 * 3, 2, rng=rng))
        optimizer = nn.Adam(model.parameters(), lr=0.01)
        for _ in range(40):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()
        assert F.accuracy(model(Tensor(x)), y) >= 0.95
