"""Autograd correctness tests: every op checked against central differences."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concatenate, stack, where, zeros, ones
from tests.nn.gradcheck import check_grad


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_single_element_array(self):
        assert Tensor([[4.0]]).item() == 4.0

    def test_item_multi_element_raises(self):
        with pytest.raises(ValueError, match="exactly one element"):
            Tensor([1.0, 2.0]).item()

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_backward_requires_scalar(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor(self):
        with pytest.raises(ValueError):
            Tensor([1.0]).backward()

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3).sum().backward()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_zero_grad(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_repr(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_factories(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones(4).data.sum() == 4.0


class TestArithmeticGradients:
    def test_add(self):
        check_grad(lambda x: (x + 3.0).sum(), (4, 3))

    def test_add_broadcast(self):
        rng = np.random.default_rng(1)
        other = Tensor(rng.normal(0, 1, (3,)))
        check_grad(lambda x: (x + other).sum(), (4, 3))

    def test_broadcast_gradient_of_small_operand(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])

    def test_sub(self):
        check_grad(lambda x: (10.0 - x).sum(), (5,))

    def test_mul(self):
        rng = np.random.default_rng(2)
        other = Tensor(rng.normal(0, 1, (4, 3)))
        check_grad(lambda x: (x * other).sum(), (4, 3))

    def test_div(self):
        rng = np.random.default_rng(3)
        other = Tensor(rng.normal(0, 1, (4,)) + 3.0)
        check_grad(lambda x: (x / other).sum(), (4,))

    def test_rdiv(self):
        check_grad(lambda x: (1.0 / (x + 5.0)).sum(), (4,))

    def test_pow(self):
        check_grad(lambda x: ((x + 5.0) ** 3).sum(), (4,))

    def test_neg(self):
        check_grad(lambda x: (-x).sum(), (3, 2))

    def test_matmul_2d(self):
        rng = np.random.default_rng(4)
        other = Tensor(rng.normal(0, 1, (3, 5)))
        check_grad(lambda x: (x @ other).sum(), (4, 3))

    def test_matmul_grad_of_right_operand(self):
        rng = np.random.default_rng(5)
        left = rng.normal(0, 1, (4, 3))

        def fn(x):
            return (Tensor(left) @ x).sum()

        check_grad(fn, (3, 5))

    def test_matmul_batched(self):
        rng = np.random.default_rng(6)
        other = Tensor(rng.normal(0, 1, (2, 3, 5)))
        check_grad(lambda x: (x @ other).sum(), (2, 4, 3))

    def test_matmul_vector(self):
        rng = np.random.default_rng(7)
        other = Tensor(rng.normal(0, 1, (3,)))
        check_grad(lambda x: (x @ other).sum(), (4, 3))


class TestNonlinearityGradients:
    def test_exp(self):
        check_grad(lambda x: x.exp().sum(), (4,))

    def test_log(self):
        check_grad(lambda x: (x.abs() + 1.0).log().sum(), (4,))

    def test_tanh(self):
        check_grad(lambda x: x.tanh().sum(), (4, 3))

    def test_sigmoid(self):
        check_grad(lambda x: x.sigmoid().sum(), (4, 3))

    def test_relu(self):
        rng = np.random.default_rng(8)
        # Keep values away from the kink.
        value = rng.normal(0, 1, (10,))
        value[np.abs(value) < 0.1] = 0.5
        x = Tensor(value, requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, (value > 0).astype(float))

    def test_leaky_relu(self):
        value = np.array([-2.0, 3.0])
        x = Tensor(value, requires_grad=True)
        x.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_abs(self):
        check_grad(lambda x: (x + 10.0).abs().sum(), (4,))

    def test_clip(self):
        value = np.array([-5.0, 0.5, 5.0])
        x = Tensor(value, requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_sqrt(self):
        check_grad(lambda x: (x.abs() + 1.0).sqrt().sum(), (4,))


class TestReductionGradients:
    def test_sum_all(self):
        check_grad(lambda x: x.sum(), (3, 4))

    def test_sum_axis(self):
        check_grad(lambda x: (x.sum(axis=1) ** 2).sum(), (3, 4))

    def test_sum_axis_keepdims(self):
        check_grad(lambda x: (x.sum(axis=0, keepdims=True) ** 2).sum(), (3, 4))

    def test_sum_tuple_axes(self):
        check_grad(lambda x: (x.sum(axis=(1, 2)) ** 2).sum(), (2, 3, 4))

    def test_mean(self):
        check_grad(lambda x: (x.mean(axis=1) ** 2).sum(), (3, 4))

    def test_mean_all(self):
        check_grad(lambda x: x.mean() * 7.0, (3, 4))

    def test_var(self):
        check_grad(lambda x: x.var(axis=0).sum(), (5, 3))

    def test_max_axis(self):
        rng = np.random.default_rng(9)
        value = rng.normal(0, 1, (3, 4))
        x = Tensor(value, requires_grad=True)
        x.max(axis=1).sum().backward()
        expected = np.zeros_like(value)
        expected[np.arange(3), value.argmax(axis=1)] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_max_all(self):
        value = np.array([1.0, 5.0, 3.0])
        x = Tensor(value, requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestShapeGradients:
    def test_reshape(self):
        check_grad(lambda x: (x.reshape(6) ** 2).sum(), (2, 3))

    def test_reshape_tuple_arg(self):
        check_grad(lambda x: (x.reshape((3, 2)) ** 2).sum(), (2, 3))

    def test_transpose_default(self):
        check_grad(lambda x: (x.T ** 2).sum(), (2, 3))

    def test_transpose_axes(self):
        check_grad(lambda x: (x.transpose(1, 0, 2) ** 2).sum(), (2, 3, 4))

    def test_getitem_slice(self):
        check_grad(lambda x: (x[1:3] ** 2).sum(), (5, 2))

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])

        def fn(x):
            return (x[idx] ** 2).sum()

        value = np.random.default_rng(10).normal(0, 1, (4, 3))
        x = Tensor(value.copy(), requires_grad=True)
        fn(x).backward()
        expected = np.zeros_like(value)
        expected[0] = 2 * value[0]
        expected[2] = 2 * 2 * value[2]  # selected twice -> grads accumulate
        np.testing.assert_allclose(x.grad, expected)

    def test_pad2d(self):
        check_grad(lambda x: (x.pad2d(1) ** 2).sum(), (1, 2, 3, 3))

    def test_pad2d_zero_is_identity(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        assert x.pad2d(0) is x

    def test_pad2d_negative_rejected(self):
        with pytest.raises(ValueError):
            Tensor(np.ones((1, 1, 2, 2))).pad2d(-1)


class TestCombinators:
    def test_concatenate_gradients(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((4, 3)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (6, 3)
        (out * 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((4, 3), 2.0))

    def test_stack_gradients(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out[0] * 5).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 5.0, 5.0])
        np.testing.assert_allclose(b.grad, [0.0, 0.0, 0.0])

    def test_where_gradients(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestGraphStructure:
    def test_diamond_graph(self):
        # x feeds two paths that rejoin: gradient must accumulate once each.
        x = Tensor([3.0], requires_grad=True)
        y = x * 2
        z = x * 5
        (y + z).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_reused_node(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x  # d/dx = 2x
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_deep_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.1
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.1 ** 50], rtol=1e-10)

    def test_no_grad_inputs_skip_backward(self):
        x = Tensor([1.0])
        y = Tensor([2.0], requires_grad=True)
        out = (x * y).sum()
        out.backward()
        assert x.grad is None
        np.testing.assert_allclose(y.grad, [1.0])

    def test_comparison_returns_plain_array(self):
        x = Tensor([1.0, 3.0])
        mask = x > 2.0
        assert isinstance(mask, np.ndarray)
        np.testing.assert_array_equal(mask, [False, True])
