"""Tests for the parameter-server training simulation."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.distributed import (
    AsyncWorker,
    ParameterServer,
    ParameterServerTrainer,
)
from repro.nn.tensor import Tensor


def build_model():
    return nn.Sequential(
        nn.Linear(2, 8, rng=np.random.default_rng(42)), nn.ReLU(),
        nn.Linear(8, 2, rng=np.random.default_rng(43)))


def toy_data(n=120, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, (n, 2))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    return x, y


class TestParameterServer:
    def test_pull_returns_snapshot(self):
        server = ParameterServer(build_model())
        version, weights = server.pull()
        assert version == 0
        # snapshot is a copy, not a view
        weights["layer0.weight"][:] = 999.0
        assert not np.allclose(
            dict(server.model.named_parameters())["layer0.weight"].data,
            999.0)

    def test_push_advances_version_and_applies(self):
        server = ParameterServer(build_model(), lr=1.0)
        before = dict(server.model.named_parameters())[
            "layer0.weight"].data.copy()
        gradients = {"layer0.weight": np.ones_like(before)}
        staleness = server.push(gradients, computed_at_version=0)
        assert staleness == 0
        assert server.version == 1
        after = dict(server.model.named_parameters())["layer0.weight"].data
        np.testing.assert_allclose(after, before - 1.0)

    def test_staleness_measured(self):
        server = ParameterServer(build_model())
        grad = {"layer0.bias": np.zeros(8)}
        server.push(grad, 0)
        server.push(grad, 0)  # computed against version 0, now at 1
        assert server.total_staleness == 1
        assert server.mean_staleness == 0.5

    def test_rejects_future_and_unknown(self):
        server = ParameterServer(build_model())
        with pytest.raises(ValueError):
            server.push({}, computed_at_version=5)
        with pytest.raises(KeyError):
            server.push({"ghost": np.zeros(1)}, 0)
        with pytest.raises(ValueError):
            ParameterServer(build_model(), lr=0)


class TestAsyncWorker:
    def test_refresh_copies_server_weights(self):
        server = ParameterServer(build_model())
        worker = AsyncWorker("w", build_model, F.cross_entropy)
        # perturb the server, then refresh
        dict(server.model.named_parameters())["layer0.bias"].data += 5.0
        worker.refresh(server)
        np.testing.assert_allclose(
            dict(worker.model.named_parameters())["layer0.bias"].data,
            dict(server.model.named_parameters())["layer0.bias"].data)
        assert worker.held_version == server.version

    def test_compute_gradients_shapes(self):
        worker = AsyncWorker("w", build_model, F.cross_entropy)
        x, y = toy_data(16)
        gradients, loss = worker.compute_gradients(x, y)
        assert loss > 0
        assert set(gradients) == {name for name, _
                                  in worker.model.named_parameters()}


class TestParameterServerTrainer:
    def test_training_converges(self):
        x, y = toy_data()
        trainer = ParameterServerTrainer(build_model, F.cross_entropy,
                                         num_workers=4, lr=0.2)
        trainer.run(x, y, steps=150, batch_size=32)
        accuracy = trainer.evaluate(x, y, F.accuracy)
        assert accuracy > 0.9

    def test_fresh_pulls_have_zero_staleness(self):
        x, y = toy_data()
        trainer = ParameterServerTrainer(build_model, F.cross_entropy,
                                         num_workers=1, pull_period=1)
        trainer.run(x, y, steps=20)
        assert trainer.server.mean_staleness == 0.0

    def test_multiple_workers_induce_staleness(self):
        x, y = toy_data()
        trainer = ParameterServerTrainer(build_model, F.cross_entropy,
                                         num_workers=4, pull_period=4)
        trainer.run(x, y, steps=60)
        assert trainer.server.mean_staleness > 0.0

    def test_larger_pull_period_more_staleness(self):
        x, y = toy_data()

        def staleness(period):
            trainer = ParameterServerTrainer(
                build_model, F.cross_entropy, num_workers=4,
                pull_period=period)
            trainer.run(x, y, steps=80)
            return trainer.server.mean_staleness

        assert staleness(8) > staleness(1)

    def test_stale_training_still_converges(self):
        # The classic parameter-server result: moderate staleness slows
        # but does not break convergence.
        x, y = toy_data()
        trainer = ParameterServerTrainer(build_model, F.cross_entropy,
                                         num_workers=4, lr=0.1,
                                         pull_period=6)
        trainer.run(x, y, steps=250, batch_size=32)
        assert trainer.evaluate(x, y, F.accuracy) > 0.85

    def test_validates(self):
        with pytest.raises(ValueError):
            ParameterServerTrainer(build_model, F.cross_entropy,
                                   num_workers=0)
        with pytest.raises(ValueError):
            ParameterServerTrainer(build_model, F.cross_entropy,
                                   pull_period=0)
