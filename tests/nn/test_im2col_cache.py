"""The no_grad() im2col scratch-buffer cache: reuse, isolation, bounds."""

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn.functional import _IM2COL_SCRATCH, _IM2COL_SCRATCH_MAX, im2col


def fresh_input(rng, shape=(2, 3, 8, 8)):
    return rng.normal(0.0, 1.0, shape).astype(np.float32)


class TestScratchReuse:
    def setup_method(self):
        _IM2COL_SCRATCH.clear()

    def test_matches_grad_path(self):
        rng = np.random.default_rng(0)
        x = fresh_input(rng)
        with nn.no_grad():
            cached, oh1, ow1 = im2col(x, kernel=3, stride=1, padding=1)
        fresh, oh2, ow2 = im2col(x, kernel=3, stride=1, padding=1)
        assert (oh1, ow1) == (oh2, ow2)
        assert np.array_equal(cached, fresh)

    def test_same_geometry_reuses_buffer(self):
        rng = np.random.default_rng(1)
        with nn.no_grad():
            first, _, _ = im2col(fresh_input(rng), 3, 1, 1)
            second, _, _ = im2col(fresh_input(rng), 3, 1, 1)
        assert second is first  # same scratch array, overwritten in place
        assert len(_IM2COL_SCRATCH) == 1

    def test_distinct_geometry_distinct_buffers(self):
        rng = np.random.default_rng(2)
        with nn.no_grad():
            a, _, _ = im2col(fresh_input(rng), 3, 1, 1)
            b, _, _ = im2col(fresh_input(rng), 3, 2, 1)
            c, _, _ = im2col(fresh_input(rng, (4, 3, 8, 8)), 3, 1, 1)
        assert a is not b and a is not c
        assert len(_IM2COL_SCRATCH) == 3

    def test_dtype_keys_cache(self):
        rng = np.random.default_rng(3)
        x32 = fresh_input(rng)
        with nn.no_grad():
            a, _, _ = im2col(x32, 3, 1, 1)
            b, _, _ = im2col(x32.astype(np.float64), 3, 1, 1)
        assert a is not b
        assert a.dtype == np.float32 and b.dtype == np.float64

    def test_grad_path_never_caches(self):
        rng = np.random.default_rng(4)
        x = fresh_input(rng)
        first, _, _ = im2col(x, 3, 1, 1)
        second, _, _ = im2col(x, 3, 1, 1)
        assert first is not second
        assert _IM2COL_SCRATCH == {}

    def test_cache_bounded(self):
        rng = np.random.default_rng(5)
        with nn.no_grad():
            for n in range(1, _IM2COL_SCRATCH_MAX + 3):
                im2col(fresh_input(rng, (n, 1, 6, 6)), 3, 1, 0)
        assert len(_IM2COL_SCRATCH) <= _IM2COL_SCRATCH_MAX

    def test_conv2d_inference_unchanged_by_cache(self):
        rng = np.random.default_rng(6)
        conv = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
        conv.eval()
        x = F.as_tensor(fresh_input(rng))
        expected = conv(x).data.copy()  # grad path, fresh buffers
        with nn.no_grad():
            warm = conv(x).data.copy()
            again = conv(x).data.copy()  # second pass hits the scratch
        assert np.allclose(expected, warm)
        assert np.array_equal(warm, again)
