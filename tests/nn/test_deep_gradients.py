"""Numeric gradient checks for composite modules (LSTM, BatchNorm, YOLO).

The per-op gradcheck suite verifies primitives; these tests verify that
gradients remain correct through the *composed* structures the paper's
models actually use — gates through time, normalization statistics, and
the multi-term detection loss.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.models.resnet import ResNetBlock
from repro.nn.models.yolo import GroundTruthBox, YoloDetector, YoloLoss
from repro.nn.tensor import Tensor
from tests.nn.gradcheck import numeric_grad


def check_parameter_gradient(build_loss, parameter, atol=1e-5, rtol=1e-3):
    """Compare a parameter's analytic gradient with central differences."""
    loss = build_loss()
    loss.backward()
    analytic = parameter.grad.copy()
    original = parameter.data.copy()

    def scalar(values):
        parameter.data = values.reshape(parameter.data.shape)
        out = build_loss().item()
        parameter.data = original.copy()
        return out

    numeric = numeric_grad(scalar, original.copy().reshape(-1))
    np.testing.assert_allclose(analytic.reshape(-1), numeric,
                               atol=atol, rtol=rtol)


class TestLSTMGradients:
    def test_weight_ih_gradient_through_time(self):
        rng = np.random.default_rng(0)
        cell = nn.LSTMCell(2, 2, rng=rng)
        x = rng.normal(0, 1, (2, 3, 2))  # batch 2, 3 steps

        def build_loss():
            cell.zero_grad()
            h, c = cell.initial_state(2)
            for t in range(3):
                h, c = cell(Tensor(x[:, t, :]), (h, c))
            return (h * h).sum()

        check_parameter_gradient(build_loss, cell.weight_ih)

    def test_weight_hh_gradient_through_time(self):
        rng = np.random.default_rng(1)
        cell = nn.LSTMCell(2, 2, rng=rng)
        x = rng.normal(0, 1, (1, 4, 2))

        def build_loss():
            cell.zero_grad()
            h, c = cell.initial_state(1)
            for t in range(4):
                h, c = cell(Tensor(x[:, t, :]), (h, c))
            return h.sum()

        check_parameter_gradient(build_loss, cell.weight_hh)


class TestBatchNormGradients:
    def test_gamma_gradient_training_mode(self):
        rng = np.random.default_rng(2)
        layer = nn.BatchNorm2d(2)
        x = rng.normal(0, 1, (4, 2, 3, 3))

        def build_loss():
            layer.zero_grad()
            # reset running stats so repeated calls are identical
            layer._buffer_running_mean = np.zeros(2)
            layer._buffer_running_var = np.ones(2)
            return (layer(Tensor(x)) ** 2).sum()

        check_parameter_gradient(build_loss, layer.gamma)

    def test_input_gradient_training_mode(self):
        rng = np.random.default_rng(3)
        layer = nn.BatchNorm2d(1)
        values = rng.normal(0, 1, (3, 1, 2, 2))

        def run(arr):
            layer._buffer_running_mean = np.zeros(1)
            layer._buffer_running_var = np.ones(1)
            t = Tensor(arr, requires_grad=True)
            out = (layer(t) * Tensor(rng_weights)).sum()
            return t, out

        rng_weights = np.random.default_rng(4).normal(0, 1, values.shape)
        t, out = run(values.copy())
        out.backward()
        numeric = numeric_grad(lambda arr: run(arr)[1].item(), values.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5, rtol=1e-3)


class TestResNetBlockGradients:
    def test_conv_shortcut_weight_gradient(self):
        rng = np.random.default_rng(5)
        block = ResNetBlock(1, 2, stride=2, shortcut="conv", rng=rng)
        x = rng.normal(0, 1, (2, 1, 4, 4))

        def build_loss():
            block.zero_grad()
            for module in block.modules():
                if isinstance(module, nn.BatchNorm2d):
                    module._buffer_running_mean = np.zeros(
                        module.num_features)
                    module._buffer_running_var = np.ones(module.num_features)
            return (block(Tensor(x)) ** 2).sum()

        check_parameter_gradient(build_loss, block.shortcut_conv.weight,
                                 atol=1e-4, rtol=5e-3)


class TestYoloLossGradients:
    def test_head_bias_gradient(self):
        rng = np.random.default_rng(6)
        model = YoloDetector(1, 8, num_classes=2, grid=2,
                             widths=(2, 2), rng=rng)
        loss_fn = YoloLoss(grid=2, num_classes=2)
        x = rng.normal(0, 1, (2, 1, 8, 8))
        boxes = [[GroundTruthBox(0.3, 0.3, 0.4, 0.4, 0)],
                 [GroundTruthBox(0.7, 0.7, 0.3, 0.3, 1)]]

        def build_loss():
            model.zero_grad()
            for module in model.modules():
                if isinstance(module, nn.BatchNorm2d):
                    module._buffer_running_mean = np.zeros(
                        module.num_features)
                    module._buffer_running_var = np.ones(module.num_features)
            return loss_fn(model(Tensor(x)), boxes)

        check_parameter_gradient(build_loss, model.head.bias,
                                 atol=1e-5, rtol=1e-3)

    def test_loss_gradient_wrt_raw_predictions(self):
        rng = np.random.default_rng(7)
        loss_fn = YoloLoss(grid=2, num_classes=2)
        raw_values = rng.normal(0, 1, (1, 7, 2, 2))
        boxes = [[GroundTruthBox(0.3, 0.3, 0.4, 0.4, 0)]]

        raw = Tensor(raw_values.copy(), requires_grad=True)
        loss_fn(raw, boxes).backward()
        numeric = numeric_grad(
            lambda arr: loss_fn(Tensor(arr), boxes).item(),
            raw_values.copy())
        np.testing.assert_allclose(raw.grad, numeric, atol=1e-5, rtol=1e-3)
