"""Tests for the paper's model families."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.models import (
    Autoencoder,
    CCA,
    EarlyExitNetwork,
    InceptionModule,
    LSTMClassifier,
    MiniInceptionNet,
    MultimodalAutoencoder,
    ResNetBlock,
    SimpleCNN,
    SmallResNet,
    entropy_confidence,
    score_confidence,
)
from repro.nn.tensor import Tensor
from repro.runtime.rng import resolve_rng


class TestSimpleCNN:
    def test_forward_shape(self):
        model = SimpleCNN(1, 16, num_classes=5)
        assert model(Tensor(np.zeros((2, 1, 16, 16)))).shape == (2, 5)

    def test_invalid_image_size(self):
        with pytest.raises(ValueError):
            SimpleCNN(1, 15, num_classes=5)

    def test_flops_estimable(self):
        model = SimpleCNN(1, 16, num_classes=5)
        flops, shape = model.estimate_flops((1, 16, 16))
        assert flops > 0
        assert shape == (5,)


class TestResNetBlock:
    def test_conv_shortcut_shape(self):
        block = ResNetBlock(4, 8, stride=2, shortcut="conv")
        assert block(Tensor(np.zeros((2, 4, 8, 8)))).shape == (2, 8, 4, 4)

    def test_maxpool_shortcut_shape(self):
        block = ResNetBlock(4, 8, stride=2, shortcut="maxpool")
        assert block(Tensor(np.zeros((2, 4, 8, 8)))).shape == (2, 8, 4, 4)

    def test_identity_shortcut_shape(self):
        block = ResNetBlock(4, 4, stride=1, shortcut="identity")
        assert block(Tensor(np.zeros((2, 4, 8, 8)))).shape == (2, 4, 8, 8)

    def test_identity_requires_matching_shapes(self):
        with pytest.raises(ValueError):
            ResNetBlock(4, 8, stride=1, shortcut="identity")
        with pytest.raises(ValueError):
            ResNetBlock(4, 4, stride=2, shortcut="identity")

    def test_unknown_shortcut_rejected(self):
        with pytest.raises(ValueError):
            ResNetBlock(4, 4, shortcut="teleport")

    def test_maxpool_shortcut_cannot_shrink_channels(self):
        block = ResNetBlock(8, 4, stride=1, shortcut="maxpool")
        with pytest.raises(ValueError):
            block(Tensor(np.zeros((1, 8, 4, 4))))

    def test_conv_shortcut_has_more_parameters(self):
        conv = ResNetBlock(4, 8, stride=2, shortcut="conv")
        pool = ResNetBlock(4, 8, stride=2, shortcut="maxpool")
        assert conv.num_parameters() > pool.num_parameters()

    def test_residual_path_contributes(self):
        # Output differs from main path alone: shortcut adds the input back.
        rng = np.random.default_rng(0)
        block = ResNetBlock(4, 4, shortcut="identity", rng=rng)
        x = Tensor(rng.normal(0, 1, (1, 4, 4, 4)))
        with_shortcut = block(x).data
        main_only = block.bn2(block.conv2(
            block.bn1(block.conv1(x)).relu())).relu().data
        assert not np.allclose(with_shortcut, main_only)

    def test_gradients_flow_through_both_paths(self):
        block = ResNetBlock(2, 4, stride=2, shortcut="conv")
        x = Tensor(np.random.default_rng(1).normal(0, 1, (2, 2, 4, 4)),
                   requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
        assert block.shortcut_conv.weight.grad is not None
        assert block.conv1.weight.grad is not None

    def test_flops_conv_exceeds_maxpool(self):
        conv = ResNetBlock(4, 8, stride=2, shortcut="conv")
        pool = ResNetBlock(4, 8, stride=2, shortcut="maxpool")
        conv_flops, _ = conv.estimate_flops((4, 8, 8))
        pool_flops, _ = pool.estimate_flops((4, 8, 8))
        assert conv_flops > pool_flops


class TestSmallResNet:
    def test_forward_shape(self):
        model = SmallResNet(1, num_classes=3, widths=(4, 8))
        assert model(Tensor(np.zeros((2, 1, 8, 8)))).shape == (2, 3)

    def test_features_shape(self):
        model = SmallResNet(1, num_classes=3, widths=(4, 8))
        assert model.features(Tensor(np.zeros((2, 1, 8, 8)))).shape == (2, 8)

    def test_empty_widths_rejected(self):
        with pytest.raises(ValueError):
            SmallResNet(1, num_classes=3, widths=())

    def test_flops_estimable(self):
        model = SmallResNet(1, num_classes=3, widths=(4, 8))
        flops, shape = model.estimate_flops((1, 8, 8))
        assert flops > 0
        assert shape == (3,)

    def test_learns_simple_task(self):
        rng = np.random.default_rng(0)
        n = 32
        x = rng.normal(0, 0.1, (n, 1, 8, 8))
        y = np.arange(n) % 2
        x[y == 1, 0, 2:6, 2:6] += 2.0  # bright square = class 1
        model = SmallResNet(1, num_classes=2, widths=(4,), rng=rng)
        opt = nn.Adam(model.parameters(), lr=0.02)
        for _ in range(30):
            opt.zero_grad()
            loss = F.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            opt.step()
        model.eval()
        assert F.accuracy(model(Tensor(x)), y) >= 0.9


class TestInception:
    def test_module_concatenates_branches(self):
        module = InceptionModule(8, 4, 4, 8, 2, 4, 4)
        out = module(Tensor(np.zeros((2, 8, 6, 6))))
        assert out.shape == (2, module.out_channels, 6, 6)
        assert module.out_channels == 4 + 8 + 4 + 4

    def test_net_forward(self):
        model = MiniInceptionNet(1, num_classes=4)
        assert model(Tensor(np.zeros((2, 1, 8, 8)))).shape == (2, 4)

    def test_module_flops(self):
        module = InceptionModule(8, 4, 4, 8, 2, 4, 4)
        flops, shape = module.estimate_flops((8, 6, 6))
        assert flops > 0
        assert shape == (module.out_channels, 6, 6)


class TestLSTMClassifier:
    def test_forward_shape(self):
        model = LSTMClassifier(4, 8, num_classes=3)
        assert model(Tensor(np.zeros((2, 6, 4)))).shape == (2, 3)

    def test_hidden_sequence_shape(self):
        model = LSTMClassifier(4, 8, num_classes=3, num_layers=2)
        assert model.hidden_sequence(Tensor(np.zeros((2, 6, 4)))).shape == (2, 6, 8)

    def test_learns_temporal_pattern(self):
        # class = whether the sequence is increasing or decreasing
        rng = np.random.default_rng(0)
        n, t = 40, 6
        x = np.zeros((n, t, 1))
        y = np.arange(n) % 2
        for i in range(n):
            base = np.linspace(0, 1, t) if y[i] else np.linspace(1, 0, t)
            x[i, :, 0] = base + rng.normal(0, 0.05, t)
        model = LSTMClassifier(1, 8, num_classes=2, rng=rng)
        opt = nn.Adam(model.parameters(), lr=0.02)
        for _ in range(60):
            opt.zero_grad()
            loss = F.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            opt.step()
        assert F.accuracy(model(Tensor(x)), y) >= 0.95


class TestConfidenceFunctions:
    def test_score_confidence_range(self):
        logits = np.array([[10.0, -10.0], [0.0, 0.0]])
        conf = score_confidence(logits)
        assert conf[0] > 0.99
        assert conf[1] == pytest.approx(0.5)

    def test_entropy_confidence_ordering(self):
        peaked = np.array([[10.0, -10.0]])
        flat = np.array([[0.0, 0.0]])
        assert entropy_confidence(peaked)[0] > entropy_confidence(flat)[0]

    def test_entropy_confidence_is_nonpositive(self):
        logits = np.random.default_rng(0).normal(0, 1, (5, 4))
        assert (entropy_confidence(logits) <= 1e-12).all()


def _build_earlyexit(rng=None):
    rng = resolve_rng(rng, "tests.earlyexit")
    local_stage = nn.Sequential(
        nn.Conv2d(1, 4, 3, padding=1, rng=rng), nn.ReLU(), nn.MaxPool2d(2))
    local_head = nn.Sequential(nn.Flatten(), nn.Linear(4 * 4 * 4, 2, rng=rng))
    remote_stage = nn.Sequential(
        nn.Conv2d(4, 8, 3, padding=1, rng=rng), nn.ReLU(), nn.MaxPool2d(2))
    remote_head = nn.Sequential(nn.Flatten(), nn.Linear(8 * 2 * 2, 2, rng=rng))
    return EarlyExitNetwork(local_stage, local_head, remote_stage, remote_head)


def _earlyexit_data(n=24, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 0.2, (n, 1, 8, 8))
    y = np.arange(n) % 2
    x[y == 1, 0, :4, :] += 1.5
    return x, y


class TestEarlyExitNetwork:
    def test_forward_returns_both_exits(self):
        model = _build_earlyexit()
        local, remote = model(Tensor(np.zeros((3, 1, 8, 8))))
        assert local.shape == (3, 2)
        assert remote.shape == (3, 2)

    def test_joint_loss_validates_weight(self):
        model = _build_earlyexit()
        with pytest.raises(ValueError):
            model.joint_loss(Tensor(np.zeros((2, 1, 8, 8))),
                             np.zeros(2, dtype=int), local_weight=1.5)

    def test_joint_training_improves_both_exits(self):
        model = _build_earlyexit()
        x, y = _earlyexit_data()
        opt = nn.Adam(model.parameters(), lr=0.02)
        for _ in range(40):
            opt.zero_grad()
            loss = model.joint_loss(Tensor(x), y)
            loss.backward()
            opt.step()
        model.eval()
        local, remote = model(Tensor(x))
        assert F.accuracy(local, y) >= 0.9
        assert F.accuracy(remote, y) >= 0.9

    def test_threshold_zero_all_local(self):
        model = _build_earlyexit()
        x, _ = _earlyexit_data(8)
        decisions = model.infer(Tensor(x), threshold=0.0)
        assert all(d.exited_locally for d in decisions)

    def test_threshold_above_one_all_remote(self):
        model = _build_earlyexit()
        x, _ = _earlyexit_data(8)
        decisions = model.infer(Tensor(x), threshold=1.01)
        assert all(not d.exited_locally for d in decisions)
        assert all(d.remote_logits is not None for d in decisions)

    def test_decision_count_matches_batch(self):
        model = _build_earlyexit()
        x, _ = _earlyexit_data(10)
        assert len(model.infer(Tensor(x), threshold=0.7)) == 10

    def test_entropy_confidence_usable(self):
        model = _build_earlyexit()
        x, _ = _earlyexit_data(6)
        decisions = model.infer(Tensor(x), threshold=-0.3,
                                confidence=entropy_confidence)
        assert len(decisions) == 6

    def test_sweep_local_fraction_monotone_in_threshold(self):
        model = _build_earlyexit()
        x, y = _earlyexit_data(20)
        rows = model.sweep_thresholds(Tensor(x), y, [0.0, 0.5, 0.9, 1.01])
        fractions = [r["local_fraction"] for r in rows]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[0] == 1.0
        assert fractions[-1] == 0.0


class TestAutoencoder:
    def test_reconstruction_shape(self):
        model = Autoencoder(10, [8], code_dim=3)
        out = model(Tensor(np.zeros((4, 10))))
        assert out.shape == (4, 10)

    def test_code_dim(self):
        model = Autoencoder(10, [8], code_dim=3)
        assert model.encode(Tensor(np.zeros((4, 10)))).shape == (4, 3)

    def test_validates_code_dim(self):
        with pytest.raises(ValueError):
            Autoencoder(10, [8], code_dim=0)

    def test_training_reduces_reconstruction_error(self):
        rng = np.random.default_rng(0)
        # Data on a 2-D manifold in 10-D space — compressible to code_dim 2.
        latent = rng.normal(0, 1, (64, 2))
        mix = rng.normal(0, 1, (2, 10))
        x = latent @ mix
        model = Autoencoder(10, [16], code_dim=2, rng=rng)
        opt = nn.Adam(model.parameters(), lr=0.01)
        first = model.reconstruction_loss(Tensor(x)).item()
        for _ in range(250):
            opt.zero_grad()
            loss = model.reconstruction_loss(Tensor(x))
            loss.backward()
            opt.step()
        assert loss.item() < 0.5 * first


class TestMultimodalAutoencoder:
    def test_forward_shapes(self):
        model = MultimodalAutoencoder(6, 4)
        a, b = model(Tensor(np.zeros((3, 6))), Tensor(np.zeros((3, 4))))
        assert a.shape == (3, 6)
        assert b.shape == (3, 4)

    def test_fuse_shape(self):
        model = MultimodalAutoencoder(6, 4, code_dim=5)
        assert model.fuse(Tensor(np.zeros((3, 6))),
                          Tensor(np.zeros((3, 4)))).shape == (3, 5)

    def test_fuse_partial_single_modality(self):
        model = MultimodalAutoencoder(6, 4, code_dim=5)
        code = model.fuse_partial(a=Tensor(np.zeros((2, 6))))
        assert code.shape == (2, 5)
        code = model.fuse_partial(b=Tensor(np.zeros((2, 4))))
        assert code.shape == (2, 5)

    def test_fuse_partial_requires_a_modality(self):
        model = MultimodalAutoencoder(6, 4)
        with pytest.raises(ValueError):
            model.fuse_partial()

    def test_joint_training_reduces_loss(self):
        rng = np.random.default_rng(1)
        shared = rng.normal(0, 1, (48, 3))
        a = shared @ rng.normal(0, 1, (3, 6))
        b = shared @ rng.normal(0, 1, (3, 4))
        model = MultimodalAutoencoder(6, 4, encoder_dim=12, code_dim=3, rng=rng)
        opt = nn.Adam(model.parameters(), lr=0.01)
        first = model.reconstruction_loss(Tensor(a), Tensor(b)).item()
        for _ in range(200):
            opt.zero_grad()
            loss = model.reconstruction_loss(Tensor(a), Tensor(b))
            loss.backward()
            opt.step()
        assert loss.item() < 0.5 * first


class TestCCA:
    def test_recovers_shared_signal(self):
        rng = np.random.default_rng(0)
        n = 400
        shared = rng.normal(0, 1, n)
        x = np.column_stack([shared + 0.1 * rng.normal(0, 1, n),
                             rng.normal(0, 1, n)])
        y = np.column_stack([rng.normal(0, 1, n),
                             shared + 0.1 * rng.normal(0, 1, n)])
        cca = CCA(n_components=1).fit(x, y)
        assert cca.correlations[0] > 0.9

    def test_uncorrelated_views_score_low(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, (300, 3))
        y = rng.normal(0, 1, (300, 3))
        cca = CCA(n_components=1).fit(x, y)
        assert cca.correlations[0] < 0.35

    def test_transform_shapes(self):
        rng = np.random.default_rng(2)
        x, y = rng.normal(0, 1, (50, 4)), rng.normal(0, 1, (50, 3))
        cca = CCA(n_components=2).fit(x, y)
        px, py = cca.transform(x, y)
        assert px.shape == (50, 2)
        assert py.shape == (50, 2)

    def test_fused_features_concatenate(self):
        rng = np.random.default_rng(3)
        x, y = rng.normal(0, 1, (50, 4)), rng.normal(0, 1, (50, 3))
        cca = CCA(n_components=2).fit(x, y)
        assert cca.fused_features(x, y).shape == (50, 4)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            CCA().transform(np.zeros((2, 2)))

    def test_sample_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CCA().fit(np.zeros((5, 2)), np.zeros((4, 2)))

    def test_component_cap(self):
        rng = np.random.default_rng(4)
        x, y = rng.normal(0, 1, (50, 2)), rng.normal(0, 1, (50, 5))
        cca = CCA(n_components=10).fit(x, y)
        assert cca.weights_x.shape[1] == 2  # capped by min dimension

    def test_holdout_score(self):
        rng = np.random.default_rng(5)
        n = 400
        shared = rng.normal(0, 1, n)
        x = np.column_stack([shared, rng.normal(0, 1, n)])
        y = np.column_stack([shared, rng.normal(0, 1, n)])
        cca = CCA(n_components=1).fit(x[:300], y[:300])
        held = cca.score(x[300:], y[300:])
        assert held[0] > 0.8

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            CCA(n_components=0)
        with pytest.raises(ValueError):
            CCA(regularization=-1)
