"""Captured inference plans: parity, arena reuse, cache policy, transport.

The contract under test (DESIGN.md §15): a captured plan executes the
same NumPy ufunc sequence as the eager fast path over arena-owned
buffers, so its float32 outputs are *bit-identical* to eager under
``no_grad()`` — including ragged row-prefix runs through a larger plan —
while allocating nothing per call.
"""

import pickle

import numpy as np
import pytest

from repro import nn
from repro.nn.fuse import fuse_for_inference
from repro.nn.inference import batched_forward
from repro.nn.models.earlyexit import EarlyExitNetwork
from repro.nn.models.resnet import SmallResNet
from repro.nn.plan import InferencePlan, PlanCache, PlanError, capture_plan
from repro.nn.tensor import Tensor
from repro.runtime import ParallelExecutor, Runtime, fork_available, using_runtime


def rng_for(seed=0):
    return np.random.default_rng(seed)


def conv_stack(rng):
    return nn.Sequential(
        nn.Conv2d(1, 4, 3, padding=1, rng=rng),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.Conv2d(4, 8, 3, stride=2, padding=1, rng=rng),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 3, rng=rng),
    )


def build_early_exit(rng):
    return EarlyExitNetwork(
        local_stage=nn.Sequential(
            nn.Conv2d(1, 8, 3, padding=1, rng=rng),
            nn.BatchNorm2d(8), nn.ReLU()),
        local_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(8, 4, rng=rng)),
        remote_stage=nn.Sequential(
            nn.Conv2d(8, 16, 3, stride=2, padding=1, rng=rng),
            nn.BatchNorm2d(16), nn.ReLU()),
        remote_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(16, 4, rng=rng)),
    )


def eager(module, x):
    with nn.eval_mode(module), nn.no_grad():
        return module(Tensor(x)).data


class TestCaptureAndParity:
    def test_float64_eval_close_to_eager(self):
        model = conv_stack(rng_for())
        x = rng_for(1).normal(size=(6, 1, 12, 12))
        plan = capture_plan(model, x)
        assert np.allclose(plan.run(x), eager(model, x), atol=1e-12)

    def test_fused_float32_bit_identical(self):
        model = fuse_for_inference(conv_stack(rng_for()), dtype=np.float32)
        x = rng_for(1).normal(size=(8, 1, 12, 12)).astype(np.float32)
        plan = capture_plan(model, x)
        assert np.array_equal(plan.run(x), eager(model, x))

    @pytest.mark.parametrize("shortcut", ["conv", "maxpool"])
    def test_resnet_shortcuts_bit_identical(self, shortcut):
        model = SmallResNet(1, num_classes=4, widths=(4, 8),
                            shortcut=shortcut, rng=rng_for())
        fused = fuse_for_inference(model, dtype=np.float32)
        x = rng_for(2).normal(size=(5, 1, 16, 16)).astype(np.float32)
        plan = capture_plan(fused, x)
        assert np.array_equal(plan.run(x), eager(fused, x))

    def test_row_prefix_rebind_bit_identical(self):
        # Smaller batches ride the captured plan through row-prefix
        # views; every kernel sees exactly the eager shapes, so even a
        # 1-row run through an 8-row plan matches eager bit for bit.
        model = fuse_for_inference(conv_stack(rng_for()), dtype=np.float32)
        x = rng_for(3).normal(size=(8, 1, 12, 12)).astype(np.float32)
        plan = capture_plan(model, x)
        for rows in (8, 1, 3, 7, 8):
            out = plan.run(x[:rows])
            assert out.shape[0] == rows
            assert np.array_equal(out, eager(model, x[:rows]))

    def test_more_rows_than_captured_rejected(self):
        model = conv_stack(rng_for())
        x = rng_for(1).normal(size=(4, 1, 12, 12))
        plan = capture_plan(model, x)
        with pytest.raises(PlanError, match="captured for 4 rows"):
            plan.run(np.concatenate([x, x]))

    def test_geometry_and_dtype_mismatch_rejected(self):
        model = conv_stack(rng_for())
        x = rng_for(1).normal(size=(4, 1, 12, 12))
        plan = capture_plan(model, x)
        with pytest.raises(PlanError, match="expects"):
            plan.run(x[:, :, :10, :10])
        with pytest.raises(PlanError, match="expects"):
            plan.run(x.astype(np.float32))

    def test_non_float_capture_rejected(self):
        with pytest.raises(PlanError, match="float"):
            capture_plan(conv_stack(rng_for()),
                         np.zeros((2, 1, 12, 12), dtype=np.int64))

    def test_flops_match_static_estimate(self):
        model = conv_stack(rng_for())
        x = rng_for(1).normal(size=(4, 1, 12, 12))
        plan = capture_plan(model, x)
        static, shape = nn.estimate_flops(model, (1, 12, 12))
        assert plan.flops_per_item == static
        assert tuple(plan.output_shape[1:]) == shape
        # and the plan itself is accepted by estimate_flops
        flops, out_shape = nn.estimate_flops(plan, (1, 12, 12))
        assert flops == static and out_shape == shape
        with pytest.raises(ValueError, match="captured for"):
            nn.estimate_flops(plan, (1, 10, 10))


class TestArena:
    def test_run_returns_view_into_arena(self):
        model = conv_stack(rng_for())
        x = rng_for(1).normal(size=(4, 1, 12, 12))
        plan = capture_plan(model, x)
        first = plan.run(x)
        second = plan.run(x * 0.5)
        # same storage: the second run overwrote the first result
        assert first.base is second.base or first is second
        assert not np.array_equal(first, eager(model, x))

    def test_arena_bytes_reported_and_stable(self):
        model = conv_stack(rng_for())
        x = rng_for(1).normal(size=(4, 1, 12, 12))
        plan = capture_plan(model, x)
        assert plan.arena.total_bytes > 0
        before = plan.arena.total_bytes
        for _ in range(3):
            plan.run(x)
        assert plan.arena.total_bytes == before

    def test_liveness_reuse_beats_sum_of_slots(self):
        # The arena shares storage between slots whose lifetimes do not
        # overlap; a deep stack must not cost the sum of all activations.
        model = conv_stack(rng_for())
        x = rng_for(1).normal(size=(4, 1, 12, 12))
        plan = capture_plan(model, x)
        slot_sum = sum(int(np.prod(s.shape)) * s.dtype.itemsize
                       for s in plan.arena.slots if s.base is None)
        assert plan.arena.total_bytes < slot_sum


class TestStaleness:
    def test_replaced_weight_detected(self):
        model = conv_stack(rng_for())
        x = rng_for(1).normal(size=(4, 1, 12, 12))
        plan = capture_plan(model, x)
        conv = model.layers[0]
        conv.weight = nn.Parameter(conv.weight.data.copy())
        with pytest.raises(PlanError, match="stale"):
            plan.run(x)

    def test_cache_survives_in_place_updates(self):
        model = conv_stack(rng_for())
        x = rng_for(1).normal(size=(4, 1, 12, 12))
        plan = capture_plan(model, x)
        model.layers[0].weight.data *= 1.5  # in-place: same array object
        assert np.array_equal(plan.run(x), eager(model, x))


class TestPlanCache:
    def test_hit_miss_and_padded_hit_counters(self):
        with using_runtime(Runtime(seed=0)):
            cache = PlanCache(label="t")
            model = conv_stack(rng_for())
            x = rng_for(1).normal(size=(8, 1, 12, 12))
            cache.run(model, x)
            cache.run(model, x)
            cache.run(model, x[:3])  # ragged tail: padded hit, no recapture
            stats = cache.stats()
            assert stats["plans"] == 1
            assert stats["misses"] == 1
            assert stats["hits"] == 2
            assert stats["padded_hits"] == 1

    def test_metrics_counters_emitted(self):
        with using_runtime(Runtime(seed=0)) as rt:
            cache = PlanCache(label="t")
            model = conv_stack(rng_for())
            x = rng_for(1).normal(size=(4, 1, 12, 12))
            cache.run(model, x)
            cache.run(model, x)
            names = set(rt.registry.names())
            assert "nn.plan.cache_misses" in names
            assert "nn.plan.cache_hits" in names

    def test_lru_eviction(self):
        with using_runtime(Runtime(seed=0)):
            cache = PlanCache(max_plans=2, label="t")
            model = conv_stack(rng_for())
            geometries = [(4, 1, 12, 12), (4, 1, 16, 16), (4, 1, 20, 20)]
            for shape in geometries:
                cache.run(model, rng_for(1).normal(size=shape))
            stats = cache.stats()
            assert stats["plans"] == 2
            assert stats["evictions"] == 1
            # oldest geometry evicted: running it again is a miss
            cache.run(model, rng_for(1).normal(size=geometries[0]))
            assert cache.stats()["misses"] == 4

    def test_distinct_dtypes_get_distinct_plans(self):
        with using_runtime(Runtime(seed=0)):
            cache = PlanCache(label="t")
            model = conv_stack(rng_for())
            x = rng_for(1).normal(size=(4, 1, 12, 12))
            cache.run(model, x)
            cache.run(model, x.astype(np.float32))
            assert cache.stats()["plans"] == 2

    def test_cache_pickles_empty(self):
        with using_runtime(Runtime(seed=0)):
            cache = PlanCache(label="t")
            model = conv_stack(rng_for())
            x = rng_for(1).normal(size=(4, 1, 12, 12))
            cache.run(model, x)
            back = pickle.loads(pickle.dumps(cache))
            assert back.stats()["plans"] == 0
            assert back.label == "t"

    def test_plan_itself_refuses_pickle(self):
        model = conv_stack(rng_for())
        x = rng_for(1).normal(size=(4, 1, 12, 12))
        plan = capture_plan(model, x)
        assert isinstance(plan, InferencePlan)
        with pytest.raises(TypeError, match="not picklable"):
            pickle.dumps(plan)


class TestBatchedForwardIntegration:
    def test_plan_true_matches_eager_chunks(self):
        model = fuse_for_inference(conv_stack(rng_for()), dtype=np.float32)
        x = rng_for(4).normal(size=(10, 1, 12, 12)).astype(np.float32)
        plain = batched_forward(model, x, batch_size=4)
        planned = batched_forward(model, x, batch_size=4, plan=True)
        assert np.array_equal(plain, planned)

    def test_successive_chunks_not_aliased(self):
        # Same-geometry chunks share one arena; outputs must be copied
        # out before the next chunk overwrites the buffer.
        model = fuse_for_inference(conv_stack(rng_for()), dtype=np.float32)
        x = rng_for(5).normal(size=(8, 1, 12, 12)).astype(np.float32)
        out = batched_forward(model, x, batch_size=2, plan=True)
        assert np.array_equal(out[:2], eager(model, x[:2]))
        assert np.array_equal(out[-2:], eager(model, x[-2:]))

    def test_cache_instance_reused_across_calls(self):
        with using_runtime(Runtime(seed=0)):
            model = fuse_for_inference(conv_stack(rng_for()),
                                       dtype=np.float32)
            x = rng_for(6).normal(size=(6, 1, 12, 12)).astype(np.float32)
            cache = PlanCache(label="t")
            batched_forward(model, x, plan=cache)
            batched_forward(model, x, plan=cache)
            assert cache.stats()["misses"] == 1
            assert cache.stats()["hits"] == 1


class TestEarlyExitPlans:
    @pytest.mark.parametrize("threshold", [0.3, 0.5, 0.95])
    def test_decisions_bit_identical(self, threshold):
        rng = rng_for(7)
        base = build_early_exit(rng)
        planned = fuse_for_inference(base, dtype=np.float32).enable_plans()
        plain = fuse_for_inference(base, dtype=np.float32)
        x = rng.normal(size=(12, 1, 16, 16)).astype(np.float32)
        a = planned.infer_batch(x, threshold, batch_size=5)
        b = plain.infer_batch(x, threshold, batch_size=5)
        assert np.array_equal(a.predictions, b.predictions)
        assert np.array_equal(a.exit_index, b.exit_index)
        assert np.array_equal(a.confidence, b.confidence)
        assert np.array_equal(a.local_logits, b.local_logits)
        assert np.array_equal(a.remote_rows, b.remote_rows)
        if b.remote_logits is not None:
            assert np.array_equal(a.remote_logits, b.remote_logits)

    def test_plan_stats_cover_stages(self):
        with using_runtime(Runtime(seed=0)):
            model = fuse_for_inference(build_early_exit(rng_for(8)),
                                       dtype=np.float32).enable_plans()
            x = rng_for(9).normal(size=(6, 1, 16, 16)).astype(np.float32)
            model.infer_batch(x, 0.5)
            stats = model.plan_stats()
            assert set(stats) == set(model.PLAN_STAGES)
            assert stats["local_stage"]["plans"] == 1

    def test_plan_kwarg_overrides_enable(self):
        model = fuse_for_inference(build_early_exit(rng_for(8)),
                                   dtype=np.float32).enable_plans()
        x = rng_for(9).normal(size=(6, 1, 16, 16)).astype(np.float32)
        model.infer_batch(x, 0.5, plan=False)
        assert model.plan_stats()["local_stage"]["plans"] == 0


@pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
class TestWorkerTransport:
    def test_planned_module_pickles_and_recaptures_in_workers(self):
        # Plans are per-process state: the module crosses the fork/pickle
        # boundary with an *empty* cache and each worker recaptures.
        with using_runtime(Runtime(seed=0)):
            model = fuse_for_inference(build_early_exit(rng_for(10)),
                                       dtype=np.float32).enable_plans()
            x = rng_for(11).normal(size=(8, 1, 16, 16)).astype(np.float32)
            serial = model.infer_batch(x, 0.6)
            executor = ParallelExecutor(workers=2)
            parallel = model.infer_batch(x, 0.6, batch_size=4,
                                         executor=executor)
            assert np.array_equal(serial.predictions, parallel.predictions)
            assert np.array_equal(serial.confidence, parallel.confidence)

    def test_quantized_planned_module_survives_roundtrip(self):
        from repro.nn.quantize import quantize_for_inference
        with using_runtime(Runtime(seed=0)):
            model = fuse_for_inference(build_early_exit(rng_for(12)),
                                       dtype=np.float32)
            x = rng_for(13).normal(size=(8, 1, 16, 16)).astype(np.float32)
            model.local_stage = quantize_for_inference(model.local_stage, x)
            model.enable_plans()
            before = model.infer_batch(x, 0.6)
            back = pickle.loads(pickle.dumps(model))
            after = back.infer_batch(x, 0.6)
            assert np.array_equal(before.predictions, after.predictions)
            assert np.array_equal(before.local_logits, after.local_logits)
