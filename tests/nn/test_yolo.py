"""Tests for the YOLO-style detectors and the Fig. 5 early-exit split."""

import numpy as np
import pytest

from repro import nn
from repro.nn.models import (
    Detection,
    EarlyExitDetector,
    GroundTruthBox,
    TinyYolo,
    YoloDetector,
    YoloLoss,
    box_iou,
    evaluate_detections,
    non_max_suppression,
)
from repro.nn.tensor import Tensor


class TestBoxes:
    def test_ground_truth_validates_range(self):
        with pytest.raises(ValueError):
            GroundTruthBox(cx=1.5, cy=0.5, w=0.1, h=0.1, class_id=0)

    def test_iou_identical_boxes(self):
        a = GroundTruthBox(0.5, 0.5, 0.2, 0.2, 0)
        assert box_iou(a, a) == pytest.approx(1.0)

    def test_iou_disjoint_boxes(self):
        a = GroundTruthBox(0.2, 0.2, 0.1, 0.1, 0)
        b = GroundTruthBox(0.8, 0.8, 0.1, 0.1, 0)
        assert box_iou(a, b) == 0.0

    def test_iou_partial_overlap(self):
        a = Detection(0.5, 0.5, 0.2, 0.2, 0, 1.0)
        b = Detection(0.6, 0.5, 0.2, 0.2, 0, 1.0)
        iou = box_iou(a, b)
        assert 0.0 < iou < 1.0
        np.testing.assert_allclose(iou, (0.1 * 0.2) / (2 * 0.04 - 0.1 * 0.2))

    def test_nms_drops_overlapping_lower_score(self):
        detections = [
            Detection(0.5, 0.5, 0.2, 0.2, 0, 0.9),
            Detection(0.52, 0.5, 0.2, 0.2, 0, 0.8),
            Detection(0.1, 0.1, 0.1, 0.1, 0, 0.7),
        ]
        kept = non_max_suppression(detections, iou_threshold=0.5)
        assert len(kept) == 2
        assert kept[0].score == 0.9

    def test_nms_keeps_different_classes(self):
        detections = [
            Detection(0.5, 0.5, 0.2, 0.2, 0, 0.9),
            Detection(0.5, 0.5, 0.2, 0.2, 1, 0.8),
        ]
        assert len(non_max_suppression(detections)) == 2


class TestYoloDetector:
    def test_forward_shape(self):
        model = YoloDetector(1, 16, num_classes=3, grid=4)
        out = model(Tensor(np.zeros((2, 1, 16, 16))))
        assert out.shape == (2, 5 + 3, 4, 4)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            YoloDetector(1, 12, num_classes=3, grid=5)
        with pytest.raises(ValueError):
            YoloDetector(1, 4, num_classes=3, grid=4)

    def test_tiny_yolo_fewer_params(self):
        tiny = TinyYolo(1, 16, num_classes=3)
        full = YoloDetector(1, 16, num_classes=3)
        assert tiny.num_parameters() < full.num_parameters()

    def test_flops_estimable(self):
        model = YoloDetector(1, 16, num_classes=3, grid=4)
        flops, shape = model.estimate_flops((1, 16, 16))
        assert flops > 0
        assert shape == (8, 4, 4)

    def test_decode_respects_threshold(self):
        model = YoloDetector(1, 16, num_classes=2, grid=2)
        raw = np.full((1, 7, 2, 2), -10.0)  # objectness ~0 everywhere
        assert model.decode(raw, score_threshold=0.5) == [[]]

    def test_decode_finds_confident_cell(self):
        raw = np.full((1, 7, 2, 2), -10.0)
        raw[0, 4, 1, 0] = 10.0      # objectness ~1 in cell (row 1, col 0)
        raw[0, 5, 1, 0] = 5.0       # class 0
        model = YoloDetector(1, 16, num_classes=2, grid=2)
        dets = model.decode(raw, score_threshold=0.5)[0]
        assert len(dets) == 1
        det = dets[0]
        assert det.class_id == 0
        assert 0.0 <= det.cx <= 0.5   # left column
        assert 0.5 <= det.cy <= 1.0   # bottom row


class TestYoloLoss:
    def test_targets_built_in_correct_cell(self):
        loss = YoloLoss(grid=4, num_classes=3)
        boxes = [[GroundTruthBox(0.9, 0.1, 0.2, 0.2, class_id=2)]]
        coords, obj, classes = loss.build_targets(boxes)
        assert obj[0, 0, 0, 3] == 1.0  # top row, rightmost column
        assert classes[0, 0, 3] == 2
        assert obj.sum() == 1.0

    def test_boundary_box_clamped(self):
        loss = YoloLoss(grid=4, num_classes=1)
        boxes = [[GroundTruthBox(1.0, 1.0, 0.1, 0.1, class_id=0)]]
        _, obj, _ = loss.build_targets(boxes)
        assert obj[0, 0, 3, 3] == 1.0

    def test_loss_is_positive_scalar(self):
        model = YoloDetector(1, 16, num_classes=2, grid=2)
        loss_fn = YoloLoss(grid=2, num_classes=2)
        raw = model(Tensor(np.random.default_rng(0).normal(0, 1, (2, 1, 16, 16))))
        boxes = [[GroundTruthBox(0.5, 0.5, 0.3, 0.3, 0)], []]
        loss = loss_fn(raw, boxes)
        assert loss.data.size == 1
        assert loss.item() > 0

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        model = YoloDetector(1, 16, num_classes=2, grid=2, rng=rng)
        loss_fn = YoloLoss(grid=2, num_classes=2)
        x = rng.normal(0, 0.1, (8, 1, 16, 16))
        boxes = []
        for i in range(8):
            cx, cy = (0.25, 0.25) if i % 2 == 0 else (0.75, 0.75)
            x[i, 0, int(cy * 16) - 3:int(cy * 16) + 3,
              int(cx * 16) - 3:int(cx * 16) + 3] = 1.0
            boxes.append([GroundTruthBox(cx, cy, 0.4, 0.4, i % 2)])
        opt = nn.Adam(model.parameters(), lr=0.01)
        first = loss_fn(model(Tensor(x)), boxes).item()
        for _ in range(30):
            opt.zero_grad()
            loss = loss_fn(model(Tensor(x)), boxes)
            loss.backward()
            opt.step()
        assert loss.item() < 0.5 * first


class TestEvaluation:
    def test_perfect_detection(self):
        truth = [[GroundTruthBox(0.5, 0.5, 0.2, 0.2, 1)]]
        predicted = [[Detection(0.5, 0.5, 0.2, 0.2, 1, 0.9)]]
        metrics = evaluate_detections(predicted, truth)
        assert metrics["precision"] == 1.0
        assert metrics["recall"] == 1.0
        assert metrics["f1"] == 1.0

    def test_missed_detection_counts_fn(self):
        truth = [[GroundTruthBox(0.5, 0.5, 0.2, 0.2, 1)]]
        metrics = evaluate_detections([[]], truth)
        assert metrics["recall"] == 0.0
        assert metrics["false_negatives"] == 1

    def test_spurious_detection_counts_fp(self):
        metrics = evaluate_detections(
            [[Detection(0.5, 0.5, 0.2, 0.2, 1, 0.9)]], [[]])
        assert metrics["precision"] == 0.0
        assert metrics["false_positives"] == 1

    def test_wrong_class_right_location(self):
        truth = [[GroundTruthBox(0.5, 0.5, 0.2, 0.2, 1)]]
        predicted = [[Detection(0.5, 0.5, 0.2, 0.2, 0, 0.9)]]
        metrics = evaluate_detections(predicted, truth)
        assert metrics["classification_accuracy"] == 0.0
        assert metrics["precision"] == 0.0

    def test_batch_size_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_detections([[]], [[], []])


class TestEarlyExitDetector:
    def test_forward_shapes(self):
        model = EarlyExitDetector(1, 16, num_classes=3, grid=4)
        local, remote = model(Tensor(np.zeros((2, 1, 16, 16))))
        assert local.shape == (2, 8, 4, 4)
        assert remote.shape == (2, 8, 4, 4)

    def test_remote_branch_heavier(self):
        from repro.nn.flops import estimate_flops
        model = EarlyExitDetector(1, 16, num_classes=3, grid=4)
        local, _ = estimate_flops(model.local_branch, (8, 8, 8))
        remote, _ = estimate_flops(model.remote_branch, (8, 8, 8))
        assert remote > local

    def test_feature_map_smaller_than_raw_for_large_frames(self):
        model = EarlyExitDetector(3, 32, num_classes=3, grid=4, stem_width=8)
        # 3*32*32 raw bytes vs 8*16*16*4 feature bytes
        assert model.raw_frame_bytes() == 3 * 32 * 32
        assert model.feature_map_bytes() == 8 * 16 * 16 * 4

    def test_infer_threshold_extremes(self):
        model = EarlyExitDetector(1, 16, num_classes=2, grid=2)
        x = Tensor(np.random.default_rng(0).normal(0, 1, (4, 1, 16, 16)))
        all_local = model.infer(x, threshold=0.0)
        assert all(r["exit_index"] == 1 for r in all_local)
        assert all(r["shipped_bytes"] == 0 for r in all_local)
        all_remote = model.infer(x, threshold=1.01)
        assert all(r["exit_index"] == 2 for r in all_remote)
        assert all(r["shipped_bytes"] > 0 for r in all_remote)

    def test_infer_result_count(self):
        model = EarlyExitDetector(1, 16, num_classes=2, grid=2)
        x = Tensor(np.zeros((5, 1, 16, 16)))
        assert len(model.infer(x, threshold=0.5)) == 5

    def test_joint_loss_trains(self):
        rng = np.random.default_rng(1)
        model = EarlyExitDetector(1, 16, num_classes=2, grid=2, rng=rng)
        loss_fn = YoloLoss(grid=2, num_classes=2)
        x = rng.normal(0, 0.1, (4, 1, 16, 16))
        boxes = [[GroundTruthBox(0.25, 0.25, 0.3, 0.3, 0)] for _ in range(4)]
        opt = nn.Adam(model.parameters(), lr=0.01)
        first = model.joint_loss(Tensor(x), boxes, loss_fn).item()
        for _ in range(15):
            opt.zero_grad()
            loss = model.joint_loss(Tensor(x), boxes, loss_fn)
            loss.backward()
            opt.step()
        assert loss.item() < first
