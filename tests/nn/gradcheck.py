"""Numerical gradient checking helper for autograd tests."""

import numpy as np

from repro.nn.tensor import Tensor
from repro.runtime.rng import resolve_rng


def numeric_grad(fn, value: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn(np.ndarray) wrt value."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(value)
        flat[i] = orig - eps
        down = fn(value)
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_grad(build_fn, shape, rng=None, atol=1e-5, rtol=1e-4):
    """Assert analytic gradient of build_fn matches central differences.

    ``build_fn(tensor) -> Tensor`` must produce a scalar Tensor.
    """
    rng = resolve_rng(rng, "tests.gradcheck")
    value = rng.normal(0, 1, shape)
    x = Tensor(value.copy(), requires_grad=True)
    out = build_fn(x)
    out.backward()
    analytic = x.grad

    def scalar_fn(arr):
        return build_fn(Tensor(arr)).item()

    numeric = numeric_grad(scalar_fn, value.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
