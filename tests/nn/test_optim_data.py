"""Tests for optimizers, schedulers, datasets, loaders and trainers."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def quadratic_param(start=5.0):
    return nn.Parameter(np.array([start]))


class TestSGD:
    def test_descends_quadratic(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_momentum_accelerates(self):
        def run(momentum):
            p = quadratic_param()
            opt = nn.SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
            return abs(p.data[0])

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        p = quadratic_param(1.0)
        opt = nn.SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_validations(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)
        with pytest.raises(ValueError):
            nn.SGD([quadratic_param()], lr=-1)
        with pytest.raises(ValueError):
            nn.SGD([quadratic_param()], lr=0.1, momentum=1.5)

    def test_skips_parameters_without_grad(self):
        p, q = quadratic_param(), quadratic_param()
        opt = nn.SGD([p, q], lr=0.1)
        (p * p).sum().backward()
        opt.step()  # q has no grad; must not crash
        assert q.data[0] == 5.0


class TestAdam:
    def test_descends_quadratic(self):
        p = quadratic_param()
        opt = nn.Adam([p], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_bias_correction_first_step(self):
        # First Adam step should move by ~lr regardless of gradient scale.
        p = quadratic_param(100.0)
        opt = nn.Adam([p], lr=0.1)
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
        np.testing.assert_allclose(p.data[0], 100.0 - 0.1, rtol=1e-5)


class TestGradClipping:
    def test_clip_reduces_norm(self):
        p = nn.Parameter(np.array([3.0, 4.0]))
        opt = nn.SGD([p], lr=0.1)
        (p * p).sum().backward()  # grad = (6, 8), norm 10
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(10.0)
        np.testing.assert_allclose(np.sqrt((p.grad ** 2).sum()), 1.0)

    def test_no_clip_below_threshold(self):
        p = nn.Parameter(np.array([0.1]))
        opt = nn.SGD([p], lr=0.1)
        (p * p).sum().backward()
        grad_before = p.grad.copy()
        opt.clip_grad_norm(100.0)
        np.testing.assert_allclose(p.grad, grad_before)


class TestStepLR:
    def test_decays_on_schedule(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_validates_step_size(self):
        with pytest.raises(ValueError):
            nn.StepLR(nn.SGD([quadratic_param()], lr=1.0), step_size=0)


class TestArrayDataset:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            nn.ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_indexing(self):
        ds = nn.ArrayDataset(np.arange(6).reshape(3, 2), np.arange(3))
        x, y = ds[1]
        np.testing.assert_array_equal(x, [2, 3])
        assert y == 1

    def test_split_partitions_everything(self):
        ds = nn.ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10))
        train, test = ds.split(0.7)
        assert len(train) == 7
        assert len(test) == 3
        combined = sorted(train.targets.tolist() + test.targets.tolist())
        assert combined == list(range(10))

    def test_split_validates_fraction(self):
        ds = nn.ArrayDataset(np.zeros((4, 1)), np.zeros(4))
        with pytest.raises(ValueError):
            ds.split(1.0)


class TestDataLoader:
    def test_batches_cover_dataset(self):
        ds = nn.ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10))
        loader = nn.DataLoader(ds, batch_size=3)
        seen = []
        for x, y in loader:
            seen.extend(y.tolist())
        assert sorted(seen) == list(range(10))
        assert len(loader) == 4

    def test_drop_last(self):
        ds = nn.ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10))
        loader = nn.DataLoader(ds, batch_size=3, drop_last=True)
        assert len(loader) == 3
        batches = list(loader)
        assert all(len(y) == 3 for _, y in batches)

    def test_shuffle_changes_order(self):
        ds = nn.ArrayDataset(np.arange(100).reshape(100, 1), np.arange(100))
        loader = nn.DataLoader(ds, batch_size=100, shuffle=True,
                               rng=np.random.default_rng(0))
        (_, y), = list(loader)
        assert y.tolist() != list(range(100))
        assert sorted(y.tolist()) == list(range(100))

    def test_invalid_batch_size(self):
        ds = nn.ArrayDataset(np.zeros((4, 1)), np.zeros(4))
        with pytest.raises(ValueError):
            nn.DataLoader(ds, batch_size=0)


class TestTrainingLoops:
    def _toy_problem(self, n=60, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 1, (n, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        return nn.ArrayDataset(x, y)

    def test_train_epoch_reduces_loss(self):
        ds = self._toy_problem()
        model = nn.Sequential(nn.Linear(2, 8, rng=np.random.default_rng(1)),
                              nn.ReLU(), nn.Linear(8, 2))
        loader = nn.DataLoader(ds, batch_size=16, shuffle=True)
        opt = nn.Adam(model.parameters(), lr=0.05)
        first = nn.train_epoch(model, loader, opt, F.cross_entropy)
        for _ in range(10):
            last = nn.train_epoch(model, loader, opt, F.cross_entropy)
        assert last < first

    def test_evaluate_reports_accuracy(self):
        ds = self._toy_problem()
        model = nn.Sequential(nn.Linear(2, 8), nn.ReLU(), nn.Linear(8, 2))
        loader = nn.DataLoader(ds, batch_size=16)
        opt = nn.Adam(model.parameters(), lr=0.05)
        for _ in range(15):
            nn.train_epoch(model, loader, opt, F.cross_entropy)
        acc = nn.evaluate(model, loader, F.accuracy)
        assert acc > 0.9

    def test_evaluate_restores_training_mode(self):
        ds = self._toy_problem(n=8)
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        nn.evaluate(model, nn.DataLoader(ds, batch_size=4), F.accuracy)
        assert model.training


class TestDataParallelTrainer:
    def test_matches_single_worker_numerics(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, (16, 3))
        y = (x.sum(axis=1) > 0).astype(int)

        def build():
            return nn.Sequential(
                nn.Linear(3, 4, rng=np.random.default_rng(42)),
                nn.ReLU(),
                nn.Linear(4, 2, rng=np.random.default_rng(43)))

        single = build()
        multi = build()
        opt_s = nn.SGD(single.parameters(), lr=0.1)
        opt_m = nn.SGD(multi.parameters(), lr=0.1)
        trainer_s = nn.DataParallelTrainer(single, opt_s, F.cross_entropy, num_workers=1)
        trainer_m = nn.DataParallelTrainer(multi, opt_m, F.cross_entropy, num_workers=4)
        for _ in range(5):
            trainer_s.step(x, y)
            trainer_m.step(x, y)
        for ps, pm in zip(single.parameters(), multi.parameters()):
            np.testing.assert_allclose(ps.data, pm.data, rtol=1e-8, atol=1e-10)

    def test_loss_returned(self):
        model = nn.Sequential(nn.Linear(2, 2))
        trainer = nn.DataParallelTrainer(
            model, nn.SGD(model.parameters(), lr=0.01), F.cross_entropy,
            num_workers=2)
        loss = trainer.step(np.zeros((4, 2)), np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(2), rel=1e-6)

    def test_more_workers_than_samples(self):
        model = nn.Sequential(nn.Linear(2, 2))
        trainer = nn.DataParallelTrainer(
            model, nn.SGD(model.parameters(), lr=0.01), F.cross_entropy,
            num_workers=8)
        trainer.step(np.zeros((3, 2)), np.zeros(3, dtype=int))  # no crash

    def test_validates_workers(self):
        model = nn.Sequential(nn.Linear(2, 2))
        with pytest.raises(ValueError):
            nn.DataParallelTrainer(
                model, nn.SGD(model.parameters(), lr=0.01),
                F.cross_entropy, num_workers=0)
