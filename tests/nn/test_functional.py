"""Tests for conv/pool primitives, softmax family and losses."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.nn.gradcheck import check_grad, numeric_grad


class TestIm2col:
    def test_shapes(self):
        x = np.arange(2 * 3 * 5 * 5, dtype=float).reshape(2, 3, 5, 5)
        cols, out_h, out_w = F.im2col(x, kernel=3, stride=1, padding=0)
        assert (out_h, out_w) == (3, 3)
        assert cols.shape == (2 * 9, 3 * 9)

    def test_stride_and_padding(self):
        x = np.ones((1, 1, 4, 4))
        cols, out_h, out_w = F.im2col(x, kernel=2, stride=2, padding=1)
        assert (out_h, out_w) == (3, 3)

    def test_collapsed_output_rejected(self):
        x = np.ones((1, 1, 2, 2))
        with pytest.raises(ValueError):
            F.im2col(x, kernel=5, stride=1, padding=0)

    def test_col2im_inverts_counts(self):
        # col2im(im2col(x)) with ones equals the overlap count per pixel.
        x = np.ones((1, 1, 4, 4))
        cols, _, _ = F.im2col(x, kernel=2, stride=1, padding=0)
        back = F.col2im(cols, x.shape, kernel=2, stride=1, padding=0)
        # Corner pixels appear in 1 window, center pixels in 4.
        assert back[0, 0, 0, 0] == 1.0
        assert back[0, 0, 1, 1] == 4.0


class TestConv2d:
    def test_matches_direct_convolution(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, (1, 1, 4, 4))
        w = rng.normal(0, 1, (1, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        expected = np.zeros((1, 1, 2, 2))
        for i in range(2):
            for j in range(2):
                expected[0, 0, i, j] = (x[0, 0, i:i + 3, j:j + 3] * w[0, 0]).sum()
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_output_shape_with_padding_stride(self):
        x = Tensor(np.zeros((2, 3, 8, 8)))
        w = Tensor(np.zeros((5, 3, 3, 3)))
        out = F.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (2, 5, 4, 4)

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 3, 3)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        b = Tensor(np.array([1.5, -2.0]))
        out = F.conv2d(x, w, b).data
        np.testing.assert_allclose(out[0, 0], 1.5)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((1, 2, 3, 3))))

    def test_input_gradient(self):
        rng = np.random.default_rng(1)
        w = Tensor(rng.normal(0, 1, (2, 1, 3, 3)))
        check_grad(lambda x: (F.conv2d(x, w, padding=1) ** 2).sum(),
                   (1, 1, 4, 4), rng=rng)

    def test_weight_gradient(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(0, 1, (2, 2, 5, 5)))
        check_grad(lambda w: (F.conv2d(x, w, stride=2) ** 2).sum(),
                   (3, 2, 3, 3), rng=rng)

    def test_bias_gradient(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(0, 1, (2, 1, 4, 4)))
        w = Tensor(rng.normal(0, 1, (2, 1, 3, 3)))
        check_grad(lambda b: (F.conv2d(x, w, b) ** 2).sum(), (2,), rng=rng)


class TestPooling:
    def test_max_pool_values(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2)
        out = F.max_pool2d(Tensor(x), kernel=2)
        assert out.data.reshape(-1)[0] == 4.0

    def test_max_pool_shape(self):
        out = F.max_pool2d(Tensor(np.zeros((2, 3, 8, 8))), kernel=2)
        assert out.shape == (2, 3, 4, 4)

    def test_max_pool_gradient_routes_to_max(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2)
        t = Tensor(x, requires_grad=True)
        F.max_pool2d(t, kernel=2).sum().backward()
        expected = np.array([[0.0, 0.0], [0.0, 1.0]]).reshape(1, 1, 2, 2)
        np.testing.assert_allclose(t.grad, expected)

    def test_max_pool_gradcheck(self):
        rng = np.random.default_rng(4)
        check_grad(lambda x: (F.max_pool2d(x, 2) ** 2).sum(), (1, 2, 4, 4), rng=rng)

    def test_avg_pool_values(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2)
        out = F.avg_pool2d(Tensor(x), kernel=2)
        assert out.data.reshape(-1)[0] == 2.5

    def test_avg_pool_gradcheck(self):
        rng = np.random.default_rng(5)
        check_grad(lambda x: (F.avg_pool2d(x, 2) ** 2).sum(), (1, 2, 4, 4), rng=rng)

    def test_global_avg_pool(self):
        x = Tensor(np.ones((2, 3, 4, 4)) * 5)
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, 5.0)


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self):
        rng = np.random.default_rng(6)
        x = Tensor(rng.normal(0, 5, (4, 7)))
        probs = F.softmax(x).data
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_log_softmax_stability_with_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = F.log_softmax(x).data
        np.testing.assert_allclose(out, np.log(0.5), atol=1e-9)

    def test_log_softmax_gradcheck(self):
        rng = np.random.default_rng(7)
        check_grad(lambda x: (F.log_softmax(x) ** 2).sum(), (3, 5), rng=rng)

    def test_entropy_uniform_is_max(self):
        uniform = np.full((1, 4), 0.25)
        peaked = np.array([[0.97, 0.01, 0.01, 0.01]])
        assert F.entropy(uniform)[0] > F.entropy(peaked)[0]
        np.testing.assert_allclose(F.entropy(uniform)[0], np.log(4), rtol=1e-9)

    def test_entropy_handles_zero_probabilities(self):
        assert np.isfinite(F.entropy(np.array([[1.0, 0.0]])))[()]


class TestLosses:
    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_uniform_is_log_c(self):
        logits = Tensor(np.zeros((5, 10)))
        loss = F.cross_entropy(logits, np.zeros(5, dtype=int))
        np.testing.assert_allclose(loss.item(), np.log(10), rtol=1e-9)

    def test_cross_entropy_gradcheck(self):
        rng = np.random.default_rng(8)
        targets = np.array([0, 2, 1])
        check_grad(lambda x: F.cross_entropy(x, targets), (3, 4), rng=rng)

    def test_cross_entropy_validates_shapes(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(5, dtype=int))

    def test_mse_zero_for_identical(self):
        x = Tensor(np.ones((3, 2)))
        assert F.mse_loss(x, x).item() == 0.0

    def test_mse_gradcheck(self):
        rng = np.random.default_rng(9)
        target = Tensor(rng.normal(0, 1, (4, 2)))
        check_grad(lambda x: F.mse_loss(x, target), (4, 2), rng=rng)

    def test_bce_with_logits_matches_reference(self):
        logits = np.array([0.5, -1.2, 3.0])
        targets = np.array([1.0, 0.0, 1.0])
        probs = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        loss = F.bce_with_logits(Tensor(logits), Tensor(targets))
        np.testing.assert_allclose(loss.item(), expected, rtol=1e-9)

    def test_bce_gradcheck(self):
        rng = np.random.default_rng(10)
        targets = Tensor((rng.random(6) > 0.5).astype(float))
        check_grad(lambda x: F.bce_with_logits(x, targets), (6,), rng=rng)

    def test_smooth_l1_quadratic_region(self):
        pred = Tensor(np.array([0.5]))
        target = Tensor(np.array([0.0]))
        np.testing.assert_allclose(
            F.smooth_l1_loss(pred, target).item(), 0.5 * 0.25)

    def test_smooth_l1_linear_region(self):
        pred = Tensor(np.array([3.0]))
        target = Tensor(np.array([0.0]))
        np.testing.assert_allclose(F.smooth_l1_loss(pred, target).item(), 2.5)

    def test_smooth_l1_gradcheck(self):
        rng = np.random.default_rng(11)
        target = Tensor(np.zeros(5))
        # keep away from the |x| = beta kink
        value = rng.normal(0, 1, 5) * 0.3
        x = Tensor(value, requires_grad=True)
        F.smooth_l1_loss(x, target).backward()
        numeric = numeric_grad(
            lambda arr: F.smooth_l1_loss(Tensor(arr), target).item(), value.copy())
        np.testing.assert_allclose(x.grad, numeric, atol=1e-6)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_range_check(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_accuracy(self):
        logits = Tensor(np.array([[0.9, 0.1], [0.2, 0.8], [0.7, 0.3]]))
        assert F.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
