"""Tests for failure injection."""

import pytest

from repro.cluster import FailureInjector, Machine, Tier


def make_machines(count=5):
    return [Machine(f"m{i}", Tier.FOG) for i in range(count)]


def test_fail_one_marks_dead():
    machines = make_machines()
    injector = FailureInjector(machines, seed=1)
    victim = injector.fail_one()
    assert victim is not None
    assert not victim.alive
    assert injector.live_count == 4


def test_deterministic_given_seed():
    first = FailureInjector(make_machines(), seed=7)
    second = FailureInjector(make_machines(), seed=7)
    assert first.fail_one().name == second.fail_one().name


def test_different_seeds_can_differ():
    names = {
        FailureInjector(make_machines(20), seed=s).fail_one().name
        for s in range(10)
    }
    assert len(names) > 1


def test_fail_fraction():
    machines = make_machines(10)
    injector = FailureInjector(machines, seed=0)
    victims = injector.fail_fraction(0.3)
    assert len(victims) == 3
    assert injector.live_count == 7


def test_fail_fraction_validates():
    injector = FailureInjector(make_machines(), seed=0)
    with pytest.raises(ValueError):
        injector.fail_fraction(1.5)


def test_fail_all_then_none_left():
    machines = make_machines(2)
    injector = FailureInjector(machines, seed=0)
    injector.fail_one()
    injector.fail_one()
    assert injector.fail_one() is None


def test_recover_restores_fifo():
    machines = make_machines()
    injector = FailureInjector(machines, seed=3)
    first = injector.fail_one()
    injector.fail_one()
    recovered = injector.recover_one()
    assert recovered is first
    assert recovered.alive


def test_recover_all():
    machines = make_machines(6)
    injector = FailureInjector(machines, seed=2)
    injector.fail_fraction(0.5)
    assert injector.recover_all() == 3
    assert injector.live_count == 6


def test_callbacks_invoked():
    machines = make_machines()
    failed, recovered = [], []
    injector = FailureInjector(
        machines, seed=0,
        on_fail=failed.append, on_recover=recovered.append)
    victim = injector.fail_one()
    injector.recover_one()
    assert failed == [victim]
    assert recovered == [victim]


def test_requires_targets():
    with pytest.raises(ValueError):
        FailureInjector([], seed=0)


def test_event_history_recorded():
    injector = FailureInjector(make_machines(), seed=0)
    victim = injector.fail_one()
    injector.recover_one()
    assert injector.events == [("fail", victim), ("recover", victim)]
