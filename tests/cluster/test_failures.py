"""Tests for failure injection."""

import pytest

from repro.cluster import (
    Environment,
    FailureInjector,
    FailureProcess,
    Machine,
    Tier,
)
from repro.runtime import Runtime


def make_machines(count=5):
    return [Machine(f"m{i}", Tier.FOG) for i in range(count)]


def test_fail_one_marks_dead():
    machines = make_machines()
    injector = FailureInjector(machines, seed=1)
    victim = injector.fail_one()
    assert victim is not None
    assert not victim.alive
    assert injector.live_count == 4


def test_deterministic_given_seed():
    first = FailureInjector(make_machines(), seed=7)
    second = FailureInjector(make_machines(), seed=7)
    assert first.fail_one().name == second.fail_one().name


def test_different_seeds_can_differ():
    names = {
        FailureInjector(make_machines(20), seed=s).fail_one().name
        for s in range(10)
    }
    assert len(names) > 1


def test_fail_fraction():
    machines = make_machines(10)
    injector = FailureInjector(machines, seed=0)
    victims = injector.fail_fraction(0.3)
    assert len(victims) == 3
    assert injector.live_count == 7


def test_fail_fraction_validates():
    injector = FailureInjector(make_machines(), seed=0)
    with pytest.raises(ValueError):
        injector.fail_fraction(1.5)


def test_fail_all_then_none_left():
    machines = make_machines(2)
    injector = FailureInjector(machines, seed=0)
    injector.fail_one()
    injector.fail_one()
    assert injector.fail_one() is None


def test_recover_restores_fifo():
    machines = make_machines()
    injector = FailureInjector(machines, seed=3)
    first = injector.fail_one()
    injector.fail_one()
    recovered = injector.recover_one()
    assert recovered is first
    assert recovered.alive


def test_recover_all():
    machines = make_machines(6)
    injector = FailureInjector(machines, seed=2)
    injector.fail_fraction(0.5)
    assert injector.recover_all() == 3
    assert injector.live_count == 6


def test_callbacks_invoked():
    machines = make_machines()
    failed, recovered = [], []
    injector = FailureInjector(
        machines, seed=0,
        on_fail=failed.append, on_recover=recovered.append)
    victim = injector.fail_one()
    injector.recover_one()
    assert failed == [victim]
    assert recovered == [victim]


def test_requires_targets():
    with pytest.raises(ValueError):
        FailureInjector([], seed=0)


def test_event_history_recorded():
    injector = FailureInjector(make_machines(), seed=0)
    victim = injector.fail_one()
    injector.recover_one()
    assert injector.events == [("fail", victim), ("recover", victim)]


class TestRecoverSpecificTarget:
    def test_recover_specific_target(self):
        machines = make_machines()
        injector = FailureInjector(machines, seed=0)
        first = injector.fail_one()
        second = injector.fail_one()
        assert injector.recover(second) is second
        assert second.alive
        assert injector.failed == [first]

    def test_recover_live_target_raises(self):
        machines = make_machines()
        injector = FailureInjector(machines, seed=0)
        with pytest.raises(ValueError):
            injector.recover(machines[0])


class TestFailureProcess:
    """Crash/recover scheduling as first-class simulation events."""

    def _run(self, seed=0, runtime=None, **kwargs):
        runtime = runtime or Runtime(seed=0)
        env = Environment(runtime=runtime)
        machines = make_machines()
        kwargs.setdefault("mean_time_to_failure_s", 0.2)
        process = FailureProcess(env, machines, seed=seed, runtime=runtime,
                                 **kwargs)
        env.run()
        return runtime, machines, process

    def test_injects_up_to_max_failures(self):
        runtime, machines, process = self._run(max_failures=3)
        assert len(process.injector.failed) == 3
        assert sum(1 for m in machines if not m.alive) == 3

    def test_events_carry_sim_timestamps(self):
        runtime, _, _ = self._run(max_failures=3)
        records = runtime.events.records("cluster.failure")
        assert len(records) == 3
        assert all(record.clock == "sim" for record in records)
        times = [record.time for record in records]
        assert times == sorted(times)
        assert all(time > 0 for time in times)

    def test_same_seed_same_schedule(self):
        first, _, _ = self._run(seed=5, max_failures=4)
        second, _, _ = self._run(seed=5, max_failures=4)
        key = lambda runtime: [(r.kind, r.time, r.data["target"])
                               for r in runtime.events.records()]
        assert key(first) == key(second)

    def test_repair_brings_victims_back(self):
        runtime, machines, process = self._run(
            max_failures=4, mean_time_to_repair_s=0.1)
        # env.run() drains everything, including all repair processes.
        assert process.injector.failed == []
        assert all(m.alive for m in machines)
        assert len(runtime.events.records("cluster.recovery")) == 4

    def test_horizon_bounds_schedule(self):
        runtime, _, process = self._run(
            max_failures=None, horizon_s=1.0,
            mean_time_to_failure_s=0.05)
        assert all(record.time <= 1.0
                   for record in runtime.events.records("cluster.failure"))
        assert len(process.injector.failed) > 0

    def test_unbounded_schedule_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            FailureProcess(env, make_machines(), max_failures=None,
                           horizon_s=None)

    def test_nonpositive_means_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            FailureProcess(env, make_machines(), mean_time_to_failure_s=0.0)
        with pytest.raises(ValueError):
            FailureProcess(env, make_machines(), mean_time_to_failure_s=1.0,
                           mean_time_to_repair_s=-1.0)

    def test_stop_cancels_pending_crashes(self):
        runtime = Runtime(seed=0)
        env = Environment(runtime=runtime)
        machines = make_machines()
        process = FailureProcess(env, machines, seed=0,
                                 mean_time_to_failure_s=10.0,
                                 max_failures=50, runtime=runtime)

        def stopper(env):
            yield env.timeout(0.5)
            process.stop()

        env.process(stopper(env))
        env.run()
        killed = len(process.injector.failed)
        assert killed < 50  # the stop cut the schedule short

    def test_on_fail_callback_sees_each_victim(self):
        victims = []
        runtime, _, process = self._run(max_failures=3, on_fail=victims.append)
        assert victims == process.injector.failed
