"""Tests for machines, tiers, links and topology."""

import pytest

from repro.cluster import (
    Link,
    Machine,
    NetworkTopology,
    Tier,
    TIER_DEFAULTS,
    transfer_time,
)
from repro.cluster.machines import next_tier_up


def test_tier_defaults_applied():
    machine = Machine("edge-0", Tier.EDGE)
    assert machine.flops == TIER_DEFAULTS[Tier.EDGE]["flops"]


def test_explicit_flops_override_defaults():
    machine = Machine("fast-edge", Tier.EDGE, flops=1e12)
    assert machine.flops == 1e12


def test_compute_time_scales_with_flops():
    slow = Machine("slow", Tier.EDGE, flops=1e6)
    fast = Machine("fast", Tier.SERVER, flops=1e9)
    work = 1e6
    assert slow.compute_time(work) == pytest.approx(1.0)
    assert fast.compute_time(work) == pytest.approx(1e-3)


def test_compute_time_accumulates_busy_seconds():
    machine = Machine("m", Tier.FOG, flops=1e6)
    machine.compute_time(1e6)
    machine.compute_time(2e6)
    assert machine.busy_seconds == pytest.approx(3.0)


def test_negative_flop_count_rejected():
    machine = Machine("m", Tier.FOG)
    with pytest.raises(ValueError):
        machine.compute_time(-1)


def test_tier_ordering():
    assert next_tier_up(Tier.EDGE) == Tier.FOG
    assert next_tier_up(Tier.FOG) == Tier.SERVER
    assert next_tier_up(Tier.SERVER) == Tier.CLOUD
    assert next_tier_up(Tier.CLOUD) is None


def test_transfer_time_formula():
    # 1 MB over 1 MB/s with 10ms latency = 1.01s
    assert transfer_time(1e6, 1e6, 0.010) == pytest.approx(1.01)


def test_transfer_time_rejects_bad_inputs():
    with pytest.raises(ValueError):
        transfer_time(-1, 1e6, 0)
    with pytest.raises(ValueError):
        transfer_time(1, 0, 0)


def test_link_transfer_time():
    link = Link("a", "b", bandwidth_bytes_per_s=2e6, latency_s=0.5)
    assert link.transfer_time(2e6) == pytest.approx(1.5)


class TestNetworkTopology:
    def test_duplicate_machine_rejected(self):
        topo = NetworkTopology()
        topo.add_machine(Machine("a", Tier.EDGE))
        with pytest.raises(ValueError):
            topo.add_machine(Machine("a", Tier.FOG))

    def test_link_requires_known_endpoints(self):
        topo = NetworkTopology()
        topo.add_machine(Machine("a", Tier.EDGE))
        with pytest.raises(KeyError):
            topo.add_link(Link("a", "ghost", 1e6, 0.0))

    def test_unknown_machine_lookup(self):
        topo = NetworkTopology()
        with pytest.raises(KeyError):
            topo.machine("nope")

    def test_hierarchy_counts(self):
        topo = NetworkTopology.build_fog_hierarchy(
            edges_per_fog=3, fogs_per_server=2, servers=2)
        assert len(topo.machines(Tier.CLOUD)) == 1
        assert len(topo.machines(Tier.SERVER)) == 2
        assert len(topo.machines(Tier.FOG)) == 4
        assert len(topo.machines(Tier.EDGE)) == 12
        assert len(topo.machines()) == 19

    def test_hierarchy_rejects_zero_fanout(self):
        with pytest.raises(ValueError):
            NetworkTopology.build_fog_hierarchy(edges_per_fog=0)

    def test_uplink_path_reaches_cloud(self):
        topo = NetworkTopology.build_fog_hierarchy()
        edge = topo.machines(Tier.EDGE)[0]
        path = list(topo.uplink_path(edge.name))
        assert len(path) == 3
        assert topo.machine(path[-1].dst).tier == Tier.CLOUD

    def test_uplink_transfer_time_accumulates(self):
        topo = NetworkTopology.build_fog_hierarchy()
        edge = topo.machines(Tier.EDGE)[0]
        fog = topo.parent_of(edge.name)
        server = topo.parent_of(fog)
        one_hop = topo.uplink_transfer_time(edge.name, fog, 1e6)
        two_hop = topo.uplink_transfer_time(edge.name, server, 1e6)
        assert two_hop > one_hop > 0

    def test_uplink_transfer_same_node_is_free(self):
        topo = NetworkTopology.build_fog_hierarchy()
        edge = topo.machines(Tier.EDGE)[0]
        assert topo.uplink_transfer_time(edge.name, edge.name, 1e9) == 0.0

    def test_uplink_transfer_unreachable(self):
        topo = NetworkTopology.build_fog_hierarchy(servers=2)
        edge = topo.machines(Tier.EDGE)[0]
        with pytest.raises(KeyError):
            topo.uplink_transfer_time(edge.name, "server-1", 1.0)

    def test_children_of(self):
        topo = NetworkTopology.build_fog_hierarchy(
            edges_per_fog=3, fogs_per_server=1, servers=1)
        children = topo.children_of("fog-0-0")
        assert len(children) == 3

    def test_edge_uplink_slower_than_server_uplink(self):
        # Shape check: edge wireless uplinks are slower than Internet2.
        topo = NetworkTopology.build_fog_hierarchy()
        edge = topo.machines(Tier.EDGE)[0]
        server = topo.machines(Tier.SERVER)[0]
        edge_link = topo.link(edge.name, topo.parent_of(edge.name))
        server_link = topo.link(server.name, topo.parent_of(server.name))
        assert edge_link.bandwidth_bytes_per_s < server_link.bandwidth_bytes_per_s
