"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.cluster import (
    Environment,
    Interrupt,
    Resource,
    SimulationError,
    Store,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(2.5)

    env.process(proc(env))
    assert env.run() == 2.5


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, name):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc(env, 3.0, "late"))
    env.process(proc(env, 1.0, "early"))
    env.process(proc(env, 2.0, "middle"))
    env.run()
    assert order == ["early", "middle", "late"]


def test_simultaneous_events_fifo():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in "abc":
        env.process(proc(env, name))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_early():
    env = Environment()

    def proc(env):
        yield env.timeout(100.0)

    env.process(proc(env))
    assert env.run(until=10.0) == 10.0
    assert env.now == 10.0


def test_process_return_value_propagates():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(1.0)
        return 42

    def parent(env):
        value = yield env.process(child(env))
        results.append(value)

    env.process(parent(env))
    env.run()
    assert results == [42]


def test_process_waits_on_manual_event():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter(env):
        value = yield gate
        seen.append((env.now, value))

    def opener(env):
        yield env.timeout(5.0)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert seen == [(5.0, "open")]


def test_event_failure_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == ["boom"]


def test_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_yield_already_triggered_event():
    env = Environment()
    done = []

    def proc(env):
        event = env.event()
        event.succeed("fast")
        value = yield event
        done.append(value)

    env.process(proc(env))
    env.run()
    assert done == ["fast"]


def test_interrupt_raises_in_process():
    env = Environment()
    outcomes = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
            outcomes.append("slept")
        except Interrupt as intr:
            outcomes.append(("interrupted", intr.cause, env.now))

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert outcomes == [("interrupted", "wake up", 2.0)]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(0.0)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc(env):
        yield env.all_of([env.timeout(1.0), env.timeout(3.0), env.timeout(2.0)])
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [3.0]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc(env):
        yield env.any_of([env.timeout(5.0), env.timeout(1.0)])
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [1.0]


class TestResource:
    def test_serializes_access(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        spans = []

        def job(env, name):
            request = resource.request()
            yield request
            start = env.now
            yield env.timeout(2.0)
            resource.release(request)
            spans.append((name, start, env.now))

        env.process(job(env, "a"))
        env.process(job(env, "b"))
        env.run()
        assert spans == [("a", 0.0, 2.0), ("b", 2.0, 4.0)]

    def test_capacity_allows_parallelism(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        ends = []

        def job(env):
            request = resource.request()
            yield request
            yield env.timeout(2.0)
            resource.release(request)
            ends.append(env.now)

        for _ in range(2):
            env.process(job(env))
        env.run()
        assert ends == [2.0, 2.0]

    def test_queue_length_reported(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        resource.request()
        resource.request()
        assert resource.in_use == 1
        assert resource.queue_length == 1

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            yield store.put("item")

        def consumer(env):
            item = yield store.get()
            got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(3.0)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(3.0, "late")]

    def test_bounded_put_blocks(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put(1)
            log.append(("put1", env.now))
            yield store.put(2)
            log.append(("put2", env.now))

        def consumer(env):
            yield env.timeout(5.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert ("put2", 5.0) in log

    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            for i in range(3):
                yield store.put(i)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2]

    def test_len(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        assert len(store) == 1


def test_any_of_empty_list_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.any_of([])


def test_all_of_empty_list_succeeds_immediately():
    env = Environment()
    times = []

    def proc(env):
        yield env.all_of([])
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [0.0]


class TestResourceFaultSemantics:
    """Request lifecycle: pruned waiters, validated release, cancel."""

    def test_interrupted_waiter_does_not_leak_capacity(self):
        # Regression: an interrupted waiter used to leave its dead event
        # in the queue; a later release() would grant the slot to it and
        # the capacity was lost for every subsequent arrival.
        env = Environment()
        resource = Resource(env, capacity=1)
        granted = []

        def holder(env):
            request = resource.request()
            yield request
            yield env.timeout(5.0)
            resource.release(request)

        def doomed_waiter(env):
            request = resource.request()
            try:
                yield request
            except Interrupt:
                return None
            resource.release(request)
            return None

        def late_arrival(env):
            yield env.timeout(6.0)
            request = resource.request()
            yield request
            granted.append(env.now)
            resource.release(request)

        def killer(env, victim):
            yield env.timeout(1.0)
            victim.interrupt("crash")

        env.process(holder(env))
        victim = env.process(doomed_waiter(env))
        env.process(killer(env, victim))
        env.process(late_arrival(env))
        env.run()
        assert granted == [6.0]
        assert resource.in_use == 0

    def test_release_never_granted_request_raises(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        resource.request()              # takes the only slot
        queued = resource.request()     # still waiting
        with pytest.raises(SimulationError):
            resource.release(queued)

    def test_double_release_raises(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        request = resource.request()
        resource.release(request)
        with pytest.raises(SimulationError):
            resource.release(request)

    def test_release_foreign_request_raises(self):
        env = Environment()
        mine = Resource(env, capacity=1)
        other = Resource(env, capacity=1)
        request = other.request()
        with pytest.raises(SimulationError):
            mine.release(request)

    def test_cancel_pending_request_dequeues(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        held = resource.request()
        queued = resource.request()
        assert resource.cancel(queued) is True
        assert resource.queue_length == 0
        resource.release(held)
        assert resource.in_use == 0
        assert resource.request().triggered  # slot immediately available

    def test_cancel_granted_request_hands_slot_to_next_waiter(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        held = resource.request()
        queued = resource.request()
        assert resource.cancel(held) is True
        assert queued.triggered and queued.granted

    def test_cancel_is_idempotent(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        held = resource.request()
        queued = resource.request()
        assert resource.cancel(queued) is True
        assert resource.cancel(queued) is False
        resource.release(held)
        assert resource.cancel(held) is False

    def test_cancel_foreign_request_raises(self):
        env = Environment()
        mine = Resource(env, capacity=1)
        other = Resource(env, capacity=1)
        request = other.request()
        with pytest.raises(SimulationError):
            mine.cancel(request)
