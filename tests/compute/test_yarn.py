"""Tests for the YARN-style resource manager."""

import pytest

from repro.compute import NodeManager, ResourceManager, ResourceRequest, YarnError


def cluster(nodes=2, vcores=4, memory=4096, **kwargs):
    rm = ResourceManager(**kwargs)
    for i in range(nodes):
        rm.register_node(NodeManager(f"nm-{i}", vcores=vcores, memory_mb=memory))
    return rm


class TestNodeManager:
    def test_capacity_accounting(self):
        node = NodeManager("n", vcores=4, memory_mb=1024)
        assert node.free_vcores == 4
        assert node.fits(ResourceRequest("app", 4, 1024))
        assert not node.fits(ResourceRequest("app", 5, 1))

    def test_validates_capacity(self):
        with pytest.raises(YarnError):
            NodeManager("n", vcores=0, memory_mb=1)

    def test_dead_node_does_not_fit(self):
        node = NodeManager("n", vcores=4, memory_mb=1024)
        node.alive = False
        assert not node.fits(ResourceRequest("app", 1, 1))


class TestFifoScheduling:
    def test_grant_when_capacity_available(self):
        rm = cluster()
        container = rm.submit(ResourceRequest("app-1", vcores=2, memory_mb=1024))
        assert container is not None
        assert container.node.used_vcores == 2

    def test_queue_when_full(self):
        rm = cluster(nodes=1, vcores=2)
        first = rm.submit(ResourceRequest("app-1", vcores=2, memory_mb=10))
        second = rm.submit(ResourceRequest("app-2", vcores=2, memory_mb=10))
        assert first is not None
        assert second is None
        assert rm.pending_count == 1

    def test_release_drives_queue(self):
        rm = cluster(nodes=1, vcores=2)
        first = rm.submit(ResourceRequest("app-1", vcores=2, memory_mb=10))
        rm.submit(ResourceRequest("app-2", vcores=2, memory_mb=10))
        granted = rm.release(first)
        assert len(granted) == 1
        assert granted[0].app_id == "app-2"
        assert rm.pending_count == 0

    def test_fifo_head_of_line_blocking(self):
        rm = cluster(nodes=1, vcores=4)
        rm.submit(ResourceRequest("big", vcores=4, memory_mb=10))
        rm.submit(ResourceRequest("huge", vcores=4, memory_mb=10))  # queued
        rm.submit(ResourceRequest("small", vcores=1, memory_mb=10))  # behind huge
        # FIFO: small must NOT jump ahead of huge
        assert rm.pending_count == 2
        assert all(c.app_id == "big" for c in rm.running_containers)

    def test_on_grant_callback(self):
        rm = cluster(nodes=1, vcores=2)
        granted = []
        first = rm.submit(ResourceRequest("a", 2, 10))
        rm.submit(ResourceRequest("b", 2, 10, on_grant=granted.append))
        rm.release(first)
        assert len(granted) == 1
        assert granted[0].app_id == "b"

    def test_double_release_rejected(self):
        rm = cluster()
        container = rm.submit(ResourceRequest("a", 1, 10))
        rm.release(container)
        with pytest.raises(YarnError):
            rm.release(container)

    def test_validates_request(self):
        rm = cluster()
        with pytest.raises(YarnError):
            rm.submit(ResourceRequest("a", 0, 10))

    def test_load_balancing_across_nodes(self):
        rm = cluster(nodes=2, vcores=4)
        a = rm.submit(ResourceRequest("a", 2, 10))
        b = rm.submit(ResourceRequest("b", 2, 10))
        assert a.node.name != b.node.name

    def test_utilization(self):
        rm = cluster(nodes=2, vcores=4)
        assert rm.utilization() == 0.0
        rm.submit(ResourceRequest("a", 4, 10))
        assert rm.utilization() == pytest.approx(0.5)

    def test_duplicate_node_rejected(self):
        rm = cluster()
        with pytest.raises(YarnError):
            rm.register_node(NodeManager("nm-0", 1, 1))


class TestCapacityScheduling:
    def make(self):
        return cluster(nodes=1, vcores=10, scheduler="capacity",
                       queue_capacity={"video": 0.7, "social": 0.3})

    def test_requires_queues(self):
        with pytest.raises(YarnError):
            ResourceManager(scheduler="capacity")

    def test_unknown_queue_rejected(self):
        rm = self.make()
        with pytest.raises(YarnError):
            rm.submit(ResourceRequest("a", 1, 10, queue="ghost"))

    def test_underserved_queue_prioritized(self):
        rm = self.make()
        # Fill with video work, then both queues contend for released space.
        containers = [rm.submit(ResourceRequest(f"v{i}", 5, 10, queue="video"))
                      for i in range(2)]
        rm.submit(ResourceRequest("v-wait", 5, 10, queue="video"))
        rm.submit(ResourceRequest("s-wait", 5, 10, queue="social"))
        granted = rm.release(containers[0])
        # social is at 0 of its 3-vcore guarantee; video is over its 7.
        assert granted[0].app_id == "s-wait"

    def test_no_head_of_line_blocking(self):
        # The capacity scheduler skips unplaceable requests instead of
        # blocking the whole queue behind them.
        rm = self.make()
        rm.submit(ResourceRequest("big", 8, 10, queue="video"))
        rm.submit(ResourceRequest("huge", 8, 10, queue="video"))  # cannot fit now
        small = rm.submit(ResourceRequest("small", 2, 10, queue="social"))
        assert small is not None  # granted despite "huge" ahead of it

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(YarnError):
            ResourceManager(scheduler="lottery")
