"""Tests for MLlib-style algorithms and the property graph."""

import numpy as np
import pytest

from repro.compute import (
    Graph,
    KMeans,
    LogisticRegression,
    SparkContext,
    StandardScaler,
    TfIdf,
    tokenize,
)
from repro.compute.mllib import cosine_similarity


class TestKMeans:
    def _blobs(self, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.normal([0, 0], 0.2, (50, 2))
        b = rng.normal([5, 5], 0.2, (50, 2))
        return np.vstack([a, b])

    def test_separates_two_blobs(self):
        points = self._blobs()
        model = KMeans(k=2, seed=1).fit(points)
        labels = model.predict(points)
        assert len(set(labels[:50])) == 1
        assert len(set(labels[50:])) == 1
        assert labels[0] != labels[50]

    def test_centers_near_blob_means(self):
        model = KMeans(k=2, seed=1).fit(self._blobs())
        centers = sorted(model.centers.tolist())
        np.testing.assert_allclose(centers[0], [0, 0], atol=0.2)
        np.testing.assert_allclose(centers[1], [5, 5], atol=0.2)

    def test_accepts_rdd_input(self):
        context = SparkContext()
        rdd = context.parallelize(self._blobs().tolist())
        model = KMeans(k=2, seed=0).fit(rdd)
        assert model.centers.shape == (2, 2)

    def test_inertia_decreases_with_more_clusters(self):
        points = self._blobs()
        inertia1 = KMeans(k=1, seed=0).fit(points).inertia(points)
        inertia2 = KMeans(k=2, seed=0).fit(points).inertia(points)
        assert inertia2 < inertia1

    def test_validates(self):
        with pytest.raises(ValueError):
            KMeans(k=0)
        with pytest.raises(ValueError):
            KMeans(k=5).fit(np.zeros((2, 2)))
        with pytest.raises(RuntimeError):
            KMeans(k=1).predict(np.zeros((1, 2)))

    def test_deterministic_given_seed(self):
        points = self._blobs()
        a = KMeans(k=2, seed=7).fit(points).centers
        b = KMeans(k=2, seed=7).fit(points).centers
        np.testing.assert_allclose(a, b)


class TestLogisticRegression:
    def _data(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 1, (n, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        return x, y

    def test_learns_linear_boundary(self):
        x, y = self._data()
        model = LogisticRegression(lr=0.5, iterations=300).fit(x, y)
        assert model.accuracy(x, y) > 0.95

    def test_predict_proba_in_unit_interval(self):
        x, y = self._data()
        model = LogisticRegression().fit(x, y)
        probs = model.predict_proba(x)
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_accepts_rdd_of_pairs(self):
        x, y = self._data(50)
        context = SparkContext()
        rdd = context.parallelize(list(zip(x.tolist(), y.tolist())))
        model = LogisticRegression(lr=0.5, iterations=100).fit(rdd)
        assert model.accuracy(x, y) > 0.8

    def test_l2_shrinks_weights(self):
        x, y = self._data()
        free = LogisticRegression(iterations=200).fit(x, y)
        ridge = LogisticRegression(iterations=200, l2=1.0).fit(x, y)
        assert np.linalg.norm(ridge.weights) < np.linalg.norm(free.weights)

    def test_validates(self):
        with pytest.raises(ValueError):
            LogisticRegression(lr=0)
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((2, 2)), np.array([0, 2]))
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5, 3, (100, 4))
        scaled = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(scaled.mean(axis=0), 0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1, atol=1e-10)

    def test_constant_column_safe(self):
        x = np.ones((10, 2))
        scaled = StandardScaler().fit_transform(x)
        assert np.isfinite(scaled).all()

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))


class TestTfIdf:
    def test_tokenize(self):
        assert tokenize("Shots fired near 3rd St! #BR @user") == \
            ["shots", "fired", "near", "3rd", "st", "#br", "@user"]

    def test_rare_terms_weighted_higher(self):
        docs = [tokenize(t) for t in
                ["traffic jam downtown", "traffic jam highway",
                 "gunshot reported downtown"]]
        tfidf = TfIdf().fit(docs)
        matrix = tfidf.transform(docs)
        gunshot = matrix[2, tfidf.vocabulary["gunshot"]]
        traffic = matrix[0, tfidf.vocabulary["traffic"]]
        assert gunshot > traffic

    def test_max_features_caps_vocabulary(self):
        docs = [tokenize("a b c d e f g")]
        tfidf = TfIdf(max_features=3).fit(docs)
        assert len(tfidf.vocabulary) == 3

    def test_unknown_terms_ignored(self):
        tfidf = TfIdf().fit([["known"]])
        matrix = tfidf.transform([["unseen", "words"]])
        assert matrix.sum() == 0.0

    def test_validates(self):
        with pytest.raises(ValueError):
            TfIdf().fit([])
        with pytest.raises(RuntimeError):
            TfIdf().transform([["x"]])

    def test_cosine_similarity(self):
        a = np.array([1.0, 0.0])
        assert cosine_similarity(a, a) == pytest.approx(1.0)
        assert cosine_similarity(a, np.array([0.0, 1.0])) == pytest.approx(0.0)
        assert cosine_similarity(a, np.zeros(2)) == 0.0


class TestGraph:
    def triangle_graph(self):
        return Graph({1: "a", 2: "b", 3: "c", 4: "d"},
                     [(1, 2), (2, 3), (1, 3), (3, 4)])

    def test_basic_counts(self):
        g = self.triangle_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 4

    def test_edge_endpoints_validated(self):
        with pytest.raises(KeyError):
            Graph({1: None}, [(1, 99)])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(ValueError):
            Graph({1: None}, [(1,)])

    def test_neighbors_undirected(self):
        g = self.triangle_graph()
        assert g.neighbors(3) == {1, 2, 4}
        with pytest.raises(KeyError):
            g.neighbors(99)

    def test_neighbors_directed(self):
        g = Graph({1: None, 2: None}, [(1, 2)], directed=True)
        assert g.neighbors(1) == {2}
        assert g.neighbors(2) == set()

    def test_degrees_and_mean(self):
        g = self.triangle_graph()
        assert g.degrees() == {1: 2, 2: 2, 3: 3, 4: 1}
        assert g.mean_degree() == pytest.approx(2.0)

    def test_first_degree_neighborhood(self):
        g = self.triangle_graph()
        assert g.n_degree_neighborhood(4, 1) == {3}

    def test_second_degree_neighborhood(self):
        g = self.triangle_graph()
        assert g.n_degree_neighborhood(4, 2) == {1, 2, 3}

    def test_neighborhood_excludes_self_by_default(self):
        g = self.triangle_graph()
        assert 1 not in g.n_degree_neighborhood(1, 2)
        assert 1 in g.n_degree_neighborhood(1, 2, include_self=True)

    def test_neighborhood_validates(self):
        g = self.triangle_graph()
        with pytest.raises(ValueError):
            g.n_degree_neighborhood(1, -1)
        with pytest.raises(KeyError):
            g.n_degree_neighborhood(99, 1)

    def test_shortest_path_length(self):
        g = self.triangle_graph()
        assert g.shortest_path_length(4, 1) == 2
        assert g.shortest_path_length(1, 1) == 0

    def test_shortest_path_unreachable(self):
        g = Graph({1: None, 2: None}, [])
        assert g.shortest_path_length(1, 2) is None

    def test_pagerank_sums_to_one(self):
        ranks = self.triangle_graph().pagerank()
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_pagerank_hub_ranks_highest(self):
        ranks = self.triangle_graph().pagerank()
        assert max(ranks, key=ranks.get) == 3

    def test_pagerank_matches_networkx(self):
        import networkx as nx
        edges = [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (5, 1)]
        ours = Graph({i: None for i in range(1, 6)}, edges).pagerank(
            iterations=100)
        theirs = nx.pagerank(nx.Graph(edges), alpha=0.85)
        for vertex in ours:
            assert ours[vertex] == pytest.approx(theirs[vertex], abs=1e-4)

    def test_pagerank_validates_damping(self):
        with pytest.raises(ValueError):
            self.triangle_graph().pagerank(damping=1.5)

    def test_connected_components(self):
        g = Graph({i: None for i in range(6)},
                  [(0, 1), (1, 2), (3, 4)])
        components = g.connected_components()
        assert components[0] == components[2]
        assert components[3] == components[4]
        assert components[0] != components[3]
        assert g.num_components() == 3  # {0,1,2}, {3,4}, {5}

    def test_triangle_count(self):
        assert self.triangle_graph().triangle_count() == 1

    def test_triangle_count_directed_rejected(self):
        g = Graph({1: None, 2: None}, [(1, 2)], directed=True)
        with pytest.raises(ValueError):
            g.triangle_count()

    def test_subgraph(self):
        g = self.triangle_graph()
        sub = g.subgraph({1, 2, 3})
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_aggregate_messages_degree_count(self):
        g = self.triangle_graph()

        def send(src, dst, attr):
            yield (src, 1)
            yield (dst, 1)

        inbox = g.aggregate_messages(send, lambda a, b: a + b)
        assert inbox == g.degrees()

    def test_empty_graph(self):
        g = Graph({}, [])
        assert g.pagerank() == {}
        assert g.num_components() == 0
        assert g.mean_degree() == 0.0
