"""Tests for micro-batch stream processing over the message bus."""

import pytest

from repro.compute import StreamingContext
from repro.streaming import MessageBus


def bus_with(topic, values, partitions=2):
    bus = MessageBus()
    bus.create_topic(topic, partitions=partitions)
    for value in values:
        bus.produce(topic, value)
    return bus


class TestStreamingContext:
    def test_validates_batch_size(self):
        with pytest.raises(ValueError):
            StreamingContext(MessageBus(), batch_max_records=0)

    def test_run_batch_consumes_up_to_limit(self):
        bus = bus_with("events", range(25))
        context = StreamingContext(bus, batch_max_records=10)
        context.stream("events")
        assert context.run_batch() == 10
        assert context.run_batch() == 10
        assert context.run_batch() == 5
        assert context.run_batch() == 0

    def test_run_until_idle_drains_topic(self):
        bus = bus_with("events", range(37))
        context = StreamingContext(bus, batch_max_records=10)
        seen = []
        context.stream("events").foreach_batch(seen.extend)
        assert context.run_until_idle() == 37
        assert sorted(seen) == list(range(37))

    def test_new_records_picked_up_between_batches(self):
        bus = bus_with("events", range(5))
        context = StreamingContext(bus, batch_max_records=100)
        seen = []
        context.stream("events").foreach_batch(seen.extend)
        context.run_batch()
        bus.produce("events", 99)
        context.run_batch()
        assert 99 in seen


class TestDStreamTransformations:
    def test_map_filter_chain(self):
        bus = bus_with("events", range(10))
        context = StreamingContext(bus, batch_max_records=100)
        out = []
        (context.stream("events")
         .map(lambda x: x * 2)
         .filter(lambda x: x % 4 == 0)
         .foreach_batch(out.extend))
        context.run_until_idle()
        assert sorted(out) == [0, 4, 8, 12, 16]

    def test_flat_map(self):
        bus = bus_with("lines", ["a b", "c"])
        context = StreamingContext(bus, batch_max_records=100)
        out = []
        context.stream("lines").flat_map(str.split).foreach_batch(out.extend)
        context.run_until_idle()
        assert sorted(out) == ["a", "b", "c"]

    def test_multiple_children_see_same_batch(self):
        bus = bus_with("events", range(6))
        context = StreamingContext(bus, batch_max_records=100)
        stream = context.stream("events")
        evens, odds = [], []
        stream.filter(lambda x: x % 2 == 0).foreach_batch(evens.extend)
        stream.filter(lambda x: x % 2 == 1).foreach_batch(odds.extend)
        context.run_until_idle()
        assert sorted(evens) == [0, 2, 4]
        assert sorted(odds) == [1, 3, 5]

    def test_non_source_cannot_tick(self):
        bus = bus_with("events", [])
        context = StreamingContext(bus)
        child = context.stream("events").map(lambda x: x)
        with pytest.raises(RuntimeError):
            child._tick()


class TestWindows:
    def test_count_by_window(self):
        bus = bus_with("events", range(30))
        context = StreamingContext(bus, batch_max_records=10)
        counts = []
        context.stream("events").count_by_window(2, into=counts)
        for _ in range(3):
            context.run_batch()
        # windows: [10], [10+10], [10+10] (sliding over last 2 batches)
        assert counts == [10, 20, 20]

    def test_reduce_by_key_and_window(self):
        bus = bus_with("crimes", ["robbery", "theft", "robbery", "theft",
                                  "robbery"], partitions=1)
        context = StreamingContext(bus, batch_max_records=100)
        snapshots = []
        context.stream("crimes").reduce_by_key_and_window(
            lambda x: x, batches=3, into=snapshots)
        context.run_batch()
        assert snapshots == [{"robbery": 3, "theft": 2}]

    def test_window_validates(self):
        bus = bus_with("events", [])
        context = StreamingContext(bus)
        stream = context.stream("events")
        with pytest.raises(ValueError):
            stream.window(0)
        with pytest.raises(RuntimeError):
            stream.foreach_window(lambda w: None)

    def test_window_evicts_old_batches(self):
        bus = bus_with("events", range(40))
        context = StreamingContext(bus, batch_max_records=10)
        counts = []
        context.stream("events").count_by_window(2, into=counts)
        for _ in range(4):
            context.run_batch()
        assert counts[-1] == 20  # only the last two batches


class TestAtLeastOnce:
    def test_sink_failure_seeks_back_and_redelivers(self):
        bus = bus_with("events", range(12))
        context = StreamingContext(bus, batch_max_records=6)
        seen = []
        fail_first = {"remaining": 1}

        def sink(batch):
            if fail_first["remaining"] > 0:
                fail_first["remaining"] -= 1
                raise RuntimeError("sink outage")
            seen.extend(batch)

        context.stream("events").foreach_batch(sink)
        with pytest.raises(RuntimeError):
            context.run_batch()
        assert seen == []                       # nothing committed
        assert bus.lag("streaming", "events") == 12
        context.run_until_idle()
        assert sorted(seen) == list(range(12))  # redelivered, no loss
        assert bus.lag("streaming", "events") == 0

    def test_offsets_commit_only_after_dag_processes(self):
        bus = bus_with("events", range(10))
        context = StreamingContext(bus, batch_max_records=4)
        context.stream("events")
        context.run_batch()
        assert bus.lag("streaming", "events") == 6
        context.run_until_idle()
        assert bus.lag("streaming", "events") == 0
