"""Partition-parallel RDD actions: serial/parallel equivalence."""

import pytest

from repro.compute.rdd import SparkContext
from repro.runtime import Runtime, fork_available, using_runtime

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform lacks fork")


def run_actions(workers):
    """One representative workload; returns observable outcomes."""
    with using_runtime(Runtime(seed=11)):
        sc = SparkContext(default_parallelism=4, workers=workers)
        base = sc.parallelize(range(60), 6).cache()
        mapped = base.map(lambda x: (x % 5, x))
        return {
            "collect": mapped.collect(),
            "count": base.filter(lambda x: x % 3 == 0).count(),
            "reduce": base.reduce(lambda a, b: a + b),
            "reduceByKey": sorted(
                mapped.reduceByKey(lambda a, b: a + b).collect()),
            "countByKey": mapped.countByKey(),
            "withIndex": base.mapPartitionsWithIndex(
                lambda i, it: [(i, sorted(it))]).collect(),
            "shuffles": sc.shuffle_count,
            "partitions": sc.partitions_computed,
            "cached": dict(base._cache),
        }


class TestWorkerEquivalence:
    @needs_fork
    @pytest.mark.parametrize("workers", [2, 4])
    def test_actions_match_serial(self, workers):
        assert run_actions(workers) == run_actions(1)

    def test_executorless_context_matches_workers_1(self):
        assert run_actions(None) == run_actions(1)


class TestParallelCacheInterop:
    @needs_fork
    def test_collect_fills_main_process_cache(self):
        with using_runtime(Runtime()):
            sc = SparkContext(workers=4)
            rdd = sc.parallelize(range(40), 4).cache()
            rdd.collect()
            assert sorted(rdd._cache) == [0, 1, 2, 3]
            computed = sc.partitions_computed
            rdd.collect()  # all partitions now cache hits
            assert sc.partitions_computed == computed

    @needs_fork
    def test_ancestor_caches_fill_through_actions(self):
        # Evaluating a child in workers must ship the *parent's* cache
        # fills home too, not just the action target's.
        with using_runtime(Runtime()):
            sc = SparkContext(workers=4)
            parent = sc.parallelize(range(40), 4).cache()
            child = parent.map(lambda x: x + 1)
            child.collect()
            assert sorted(parent._cache) == [0, 1, 2, 3]
            computed = sc.partitions_computed
            assert sorted(parent.collect()) == list(range(40))
            assert sc.partitions_computed == computed

    @needs_fork
    def test_shuffle_counts_unchanged_by_workers(self):
        counts = {}
        for workers in (1, 4):
            with using_runtime(Runtime()):
                sc = SparkContext(workers=workers)
                pairs = sc.parallelize(range(30), 6).map(lambda x: (x % 4, 1))
                pairs.reduceByKey(lambda a, b: a + b).collect()
                counts[workers] = (sc.shuffle_count, sc.partitions_computed)
        assert counts[1] == counts[4]


class TestMapPartitionsLineage:
    def test_name_includes_stage_id(self):
        with using_runtime(Runtime()):
            sc = SparkContext()
            base = sc.parallelize(range(8), 2)
            staged = base.mapPartitions(lambda it: [sum(it)])
            assert f"@{base.rdd_id}" in staged.name
            assert "mapPartitions" in staged.name

    def test_with_index_passes_partition_index(self):
        with using_runtime(Runtime()):
            sc = SparkContext()
            rdd = sc.parallelize(range(6), 3)
            out = rdd.mapPartitionsWithIndex(
                lambda i, it: [(i, len(list(it)))]).collect()
        assert out == [(0, 2), (1, 2), (2, 2)]

    def test_with_index_is_lazy(self):
        with using_runtime(Runtime()):
            sc = SparkContext()
            rdd = sc.parallelize(range(6), 3).mapPartitionsWithIndex(
                lambda i, it: ((i, x) for x in it))
            assert sc.partitions_computed == 0
            rdd.collect()
            assert sc.partitions_computed > 0
