"""Tests for geospatial processing utilities."""

import numpy as np
import pytest

from repro.compute import (
    GridAggregator,
    assign_districts,
    pairwise_distance_matrix,
    ripley_intensity,
)
from repro.data.city import DISTRICT_CENTERS, OpenCityData


class TestGridAggregator:
    def test_counts_land_in_right_cells(self):
        grid = GridAggregator(rows=2, cols=2)
        counts = grid.aggregate([(0.1, 0.1), (0.9, 0.1), (0.9, 0.9)])
        assert counts[0, 0] == 1  # low y, low x
        assert counts[0, 1] == 1
        assert counts[1, 1] == 1
        assert counts.sum() == 3

    def test_boundary_points_clamped_to_last_cell(self):
        grid = GridAggregator(rows=2, cols=2)
        counts = grid.aggregate([(1.0, 1.0)])
        assert counts[1, 1] == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            GridAggregator().aggregate([(1.5, 0.5)])

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            GridAggregator(rows=0)

    def test_density_normalized(self):
        grid = GridAggregator(rows=2, cols=2)
        density = grid.density([(0.1, 0.1), (0.1, 0.1), (0.9, 0.9)])
        assert density.max() == 1.0
        assert density[1, 1] == 0.5

    def test_density_empty_is_zero(self):
        assert GridAggregator().density([]).sum() == 0.0

    def test_hotspots_ordered_by_count(self):
        grid = GridAggregator(rows=4, cols=4)
        points = [(0.1, 0.1)] * 5 + [(0.9, 0.9)] * 3 + [(0.5, 0.5)]
        hotspots = grid.hotspots(points, top=2)
        assert hotspots[0]["count"] == 5
        assert hotspots[1]["count"] == 3

    def test_hotspots_skip_empty_cells(self):
        hotspots = GridAggregator(rows=2, cols=2).hotspots(
            [(0.1, 0.1)], top=4)
        assert len(hotspots) == 1

    def test_hotspots_validate(self):
        with pytest.raises(ValueError):
            GridAggregator().hotspots([], top=0)

    def test_real_crime_data_concentrates_in_hot_districts(self):
        city = OpenCityData(seed=0)
        records = city.crime_incidents(days=60)
        points = [r["location"] for r in records]
        hotspots = GridAggregator(rows=6, cols=6).hotspots(points, top=2)
        # District 4 (rate 2.4) centers at (0.3, 0.3): the top hotspot
        # must land near it.
        top = hotspots[0]["center"]
        assert abs(top[0] - 0.3) < 0.25
        assert abs(top[1] - 0.3) < 0.25


class TestSpatialJoin:
    def test_assigns_nearest_center(self):
        labels = assign_districts(
            [(0.21, 0.69), (0.71, 0.21)], DISTRICT_CENTERS)
        assert labels == [1, 5]

    def test_requires_centers(self):
        with pytest.raises(ValueError):
            assign_districts([(0.5, 0.5)], {})

    def test_generated_crimes_mostly_join_back_to_their_district(self):
        city = OpenCityData(seed=1)
        records = city.crime_incidents(days=30)
        points = [r["location"] for r in records]
        joined = assign_districts(points, DISTRICT_CENTERS)
        agreement = np.mean([j == r["district"]
                             for j, r in zip(joined, records)])
        assert agreement > 0.7


class TestDistanceAndClustering:
    def test_distance_matrix_symmetric_zero_diagonal(self):
        points = [(0.0, 0.0), (0.3, 0.4), (1.0, 1.0)]
        matrix = pairwise_distance_matrix(points)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)
        np.testing.assert_allclose(matrix[0, 1], 0.5)

    def test_distance_matrix_validates(self):
        with pytest.raises(ValueError):
            pairwise_distance_matrix([0.5, 0.5])

    def test_ripley_detects_clustering(self):
        rng = np.random.default_rng(0)
        uniform = rng.random((200, 2))
        clustered = np.clip(rng.normal(0.5, 0.05, (200, 2)), 0, 1)
        assert (ripley_intensity(clustered, 0.1)
                > 3 * ripley_intensity(uniform, 0.1))

    def test_ripley_validates(self):
        with pytest.raises(ValueError):
            ripley_intensity([(0.5, 0.5)], radius=0.0)

    def test_ripley_degenerate_inputs(self):
        assert ripley_intensity([], 0.1) == 0.0
        assert ripley_intensity([(0.5, 0.5)], 0.1) == 0.0
