"""Tests for the Spark-like RDD engine."""

import pytest

from repro.compute import SparkContext
from repro.dfs import DistributedFileSystem


def sc(parallelism=4):
    return SparkContext(default_parallelism=parallelism)


class TestBasics:
    def test_parallelize_collect_roundtrip(self):
        data = list(range(17))
        assert sorted(sc().parallelize(data).collect()) == data

    def test_partition_count(self):
        rdd = sc().parallelize(range(10), num_partitions=3)
        assert rdd.getNumPartitions() == 3

    def test_default_parallelism_used(self):
        assert sc(5).parallelize(range(10)).getNumPartitions() == 5

    def test_validates_parallelism(self):
        with pytest.raises(ValueError):
            SparkContext(default_parallelism=0)
        with pytest.raises(ValueError):
            sc().parallelize([1], num_partitions=0)

    def test_count(self):
        assert sc().parallelize(range(23)).count() == 23

    def test_empty_rdd(self):
        rdd = sc().parallelize([])
        assert rdd.collect() == []
        assert rdd.count() == 0


class TestNarrowTransformations:
    def test_map(self):
        out = sc().parallelize([1, 2, 3]).map(lambda x: x * 10).collect()
        assert sorted(out) == [10, 20, 30]

    def test_filter(self):
        out = sc().parallelize(range(10)).filter(lambda x: x % 2 == 0).collect()
        assert sorted(out) == [0, 2, 4, 6, 8]

    def test_flat_map(self):
        out = sc().parallelize(["a b", "c"]).flatMap(str.split).collect()
        assert sorted(out) == ["a", "b", "c"]

    def test_map_partitions(self):
        rdd = sc().parallelize(range(8), num_partitions=2)
        out = rdd.mapPartitions(lambda it: [sum(it)]).collect()
        assert sum(out) == sum(range(8))
        assert len(out) == 2

    def test_chained_transformations_lazy(self):
        context = sc()
        rdd = context.parallelize(range(100)).map(lambda x: x + 1).filter(
            lambda x: x > 50)
        assert context.partitions_computed == 0  # nothing evaluated yet
        rdd.collect()
        assert context.partitions_computed > 0

    def test_union(self):
        a = sc(2).parallelize([1, 2])
        b = a.context.parallelize([3, 4])
        union = a.union(b)
        assert sorted(union.collect()) == [1, 2, 3, 4]
        assert union.getNumPartitions() == 4

    def test_sample_deterministic_and_bounded(self):
        rdd = sc().parallelize(range(1000))
        first = rdd.sample(0.1, seed=1).collect()
        second = rdd.sample(0.1, seed=1).collect()
        assert first == second
        assert 50 < len(first) < 200

    def test_sample_validates(self):
        with pytest.raises(ValueError):
            sc().parallelize([1]).sample(2.0)

    def test_key_by(self):
        out = sc().parallelize(["aa", "b"]).keyBy(len).collect()
        assert sorted(out) == [(1, "b"), (2, "aa")]


class TestWideTransformations:
    def test_reduce_by_key(self):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4)]
        out = dict(sc().parallelize(pairs).reduceByKey(lambda a, b: a + b).collect())
        assert out == {"a": 4, "b": 6}

    def test_reduce_by_key_counts_shuffle(self):
        context = sc()
        rdd = context.parallelize([("a", 1)]).reduceByKey(lambda a, b: a + b)
        rdd.collect()
        assert context.shuffle_count == 1

    def test_group_by_key(self):
        pairs = [("a", 1), ("a", 2), ("b", 3)]
        out = dict(sc().parallelize(pairs).groupByKey().collect())
        assert sorted(out["a"]) == [1, 2]
        assert out["b"] == [3]

    def test_join(self):
        left = sc().parallelize([("u1", "alice"), ("u2", "bob")])
        right = left.context.parallelize([("u1", 30), ("u1", 31), ("u3", 99)])
        out = sorted(left.join(right).collect())
        assert out == [("u1", ("alice", 30)), ("u1", ("alice", 31))]

    def test_distinct(self):
        out = sc().parallelize([1, 2, 2, 3, 3, 3]).distinct().collect()
        assert sorted(out) == [1, 2, 3]

    def test_sort_by(self):
        out = sc().parallelize([3, 1, 2]).sortBy(lambda x: x).collect()
        assert out == [1, 2, 3]

    def test_sort_by_descending(self):
        out = sc().parallelize([3, 1, 2]).sortBy(lambda x: x,
                                                 descending=True).collect()
        assert out == [3, 2, 1]

    def test_word_count_pipeline(self):
        lines = ["the quick brown fox", "the lazy dog", "the fox"]
        counts = dict(
            sc().parallelize(lines)
            .flatMap(str.split)
            .map(lambda w: (w, 1))
            .reduceByKey(lambda a, b: a + b)
            .collect())
        assert counts["the"] == 3
        assert counts["fox"] == 2
        assert counts["dog"] == 1


class TestActions:
    def test_reduce(self):
        assert sc().parallelize(range(5)).reduce(lambda a, b: a + b) == 10

    def test_reduce_empty_rejected(self):
        with pytest.raises(ValueError):
            sc().parallelize([]).reduce(lambda a, b: a + b)

    def test_take(self):
        assert len(sc().parallelize(range(100)).take(5)) == 5

    def test_take_more_than_available(self):
        assert sorted(sc().parallelize([1, 2]).take(10)) == [1, 2]

    def test_first(self):
        assert sc().parallelize([7, 8]).first() in (7, 8)
        with pytest.raises(ValueError):
            sc().parallelize([]).first()

    def test_sum_and_mean(self):
        rdd = sc().parallelize([1.0, 2.0, 3.0])
        assert rdd.sum() == 6.0
        assert rdd.mean() == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            sc().parallelize([]).mean()

    def test_count_by_key(self):
        pairs = [("a", 1), ("a", 2), ("b", 1)]
        assert sc().parallelize(pairs).countByKey() == {"a": 2, "b": 1}

    def test_foreach(self):
        seen = []
        sc().parallelize([1, 2, 3]).foreach(seen.append)
        assert sorted(seen) == [1, 2, 3]


class TestCaching:
    def test_cache_avoids_recomputation(self):
        context = sc(2)
        calls = []

        def traced(x):
            calls.append(x)
            return x

        rdd = context.parallelize(range(10), 2).map(traced).cache()
        rdd.collect()
        first_calls = len(calls)
        rdd.collect()
        assert len(calls) == first_calls  # second pass served from cache

    def test_uncached_recomputes(self):
        calls = []

        def traced(x):
            calls.append(x)
            return x

        rdd = sc(2).parallelize(range(10), 2).map(traced)
        rdd.collect()
        rdd.collect()
        assert len(calls) == 20

    def test_is_cached_flag(self):
        rdd = sc().parallelize([1])
        assert not rdd.is_cached
        assert rdd.cache().is_cached


class TestDFSIntegration:
    def test_text_file_single(self):
        dfs = DistributedFileSystem.with_datanodes(3, replication=2)
        dfs.create("/logs/a.txt", b"line1\nline2\nline3")
        rdd = sc().text_file(dfs, "/logs/a.txt")
        assert sorted(rdd.collect()) == ["line1", "line2", "line3"]

    def test_text_file_directory(self):
        dfs = DistributedFileSystem.with_datanodes(3, replication=2)
        dfs.create("/logs/a.txt", b"alpha")
        dfs.create("/logs/b.txt", b"beta")
        rdd = sc().text_file(dfs, "/logs")
        assert sorted(rdd.collect()) == ["alpha", "beta"]
