"""Cross-cutting edge-case tests that don't belong to one module suite."""

import numpy as np
import pytest

from repro import nn
from repro.compute import SparkContext
from repro.dfs import DistributedFileSystem
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.nosql import Collection, HTable


class TestRDDLineage:
    def test_debug_string_mentions_transformations(self):
        rdd = (SparkContext().parallelize(range(4))
               .map(lambda x: x).filter(lambda x: True))
        text = rdd.debug_string()
        assert "map" in text and "filter" in text
        assert "(4)" in text

    def test_debug_string_shows_cache_flag(self):
        rdd = SparkContext().parallelize([1]).cache()
        assert "cached" in rdd.debug_string()
        assert "cached" not in SparkContext().parallelize([1]).debug_string()


class TestNNEdgeCases:
    def test_conv_one_by_one_kernel(self):
        layer = nn.Conv2d(3, 5, kernel_size=1)
        out = layer(Tensor(np.zeros((2, 3, 4, 4))))
        assert out.shape == (2, 5, 4, 4)

    def test_conv_stride_larger_than_kernel(self):
        layer = nn.Conv2d(1, 1, kernel_size=1, stride=2)
        out = layer(Tensor(np.zeros((1, 1, 4, 4))))
        assert out.shape == (1, 1, 2, 2)

    def test_batch_of_one(self):
        model = nn.Sequential(nn.Conv2d(1, 2, 3, padding=1),
                              nn.BatchNorm2d(2), nn.ReLU(),
                              nn.Flatten(), nn.Linear(2 * 4 * 4, 2))
        out = model(Tensor(np.zeros((1, 1, 4, 4))))
        assert out.shape == (1, 2)

    def test_single_class_cross_entropy(self):
        logits = Tensor(np.zeros((3, 1)))
        loss = F.cross_entropy(logits, np.zeros(3, dtype=int))
        assert loss.item() == pytest.approx(0.0)

    def test_lstm_single_timestep(self):
        lstm = nn.LSTM(2, 4)
        out = lstm(Tensor(np.zeros((2, 1, 2))))
        assert out.shape == (2, 1, 4)

    def test_dropout_grad_flows_through_mask(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((10, 10)), requires_grad=True)
        layer(x).sum().backward()
        # kept positions have grad 2.0 (inverted scaling), dropped 0.0
        unique = set(np.unique(x.grad).tolist())
        assert unique <= {0.0, 2.0}

    def test_adam_handles_zero_gradient(self):
        param = nn.Parameter(np.array([1.0]))
        optimizer = nn.Adam([param], lr=0.1)
        (param * 0.0).sum().backward()
        optimizer.step()
        assert np.isfinite(param.data).all()

    def test_sgd_on_parameter_without_any_backward(self):
        param = nn.Parameter(np.array([1.0]))
        nn.SGD([param], lr=0.1).step()  # no grad at all: no-op
        assert param.data[0] == 1.0


class TestStorageEdgeCases:
    def test_dfs_block_size_one(self):
        dfs = DistributedFileSystem.with_datanodes(3, replication=2,
                                                   block_size=1)
        dfs.create("/tiny", b"abc")
        assert dfs.read("/tiny") == b"abc"
        assert len(dfs.stat("/tiny").block_ids) == 3

    def test_dfs_exact_block_multiple(self):
        dfs = DistributedFileSystem.with_datanodes(3, replication=2,
                                                   block_size=4)
        dfs.create("/even", b"12345678")
        assert len(dfs.stat("/even").block_ids) == 2
        assert dfs.read("/even") == b"12345678"

    def test_htable_empty_value(self):
        dfs = DistributedFileSystem.with_datanodes(3, replication=2)
        table = HTable("t", dfs, families=("d",))
        table.put("r", "d", "q", b"")
        assert table.get_value("r", "d", "q") == b""

    def test_htable_binary_values(self):
        dfs = DistributedFileSystem.with_datanodes(3, replication=2)
        table = HTable("t", dfs, families=("d",))
        payload = bytes(range(256))
        table.put("r", "d", "q", payload)
        table.flush()
        table._hfile_cache.clear()
        assert table.get_value("r", "d", "q") == payload

    def test_mongo_none_values_queryable(self):
        collection = Collection("c")
        collection.insert({"field": None})
        collection.insert({"field": 1})
        # None equality matches the stored None AND the missing-field doc
        # semantics of _get_path; $exists distinguishes them.
        assert collection.count({"field": {"$exists": True}}) == 1

    def test_mongo_nested_and_with_geo(self):
        collection = Collection("c")
        collection.insert({"location": [0.5, 0.5], "kind": "crime"})
        collection.insert({"location": [0.5, 0.5], "kind": "traffic"})
        hits = collection.find({"$and": [
            {"kind": "crime"},
            {"location": {"$near": [0.5, 0.5], "$maxDistance": 0.1}},
        ]})
        assert len(hits) == 1

    def test_mongo_sort_with_missing_field_last(self):
        collection = Collection("c")
        collection.insert({"a": 2})
        collection.insert({"b": 1})
        collection.insert({"a": 1})
        docs = collection.find({}, sort="a")
        values = [d.get("a") for d in docs]
        assert values == [1, 2, None]


class TestDeterminism:
    """Seeded components must be bit-reproducible across runs."""

    def test_scene_generator_reproducible(self):
        from repro.data import SceneGenerator
        a = SceneGenerator(image_size=16, num_classes=3, seed=5)
        b = SceneGenerator(image_size=16, num_classes=3, seed=5)
        frame_a, boxes_a = a.generate_scene(2)
        frame_b, boxes_b = b.generate_scene(2)
        np.testing.assert_array_equal(frame_a, frame_b)
        assert boxes_a == boxes_b

    def test_model_init_reproducible(self):
        a = nn.Linear(4, 3, rng=np.random.default_rng(11))
        b = nn.Linear(4, 3, rng=np.random.default_rng(11))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_training_reproducible(self):
        def run():
            rng = np.random.default_rng(0)
            x = rng.normal(0, 1, (20, 2))
            y = (x.sum(axis=1) > 0).astype(int)
            model = nn.Sequential(
                nn.Linear(2, 4, rng=np.random.default_rng(1)),
                nn.ReLU(),
                nn.Linear(4, 2, rng=np.random.default_rng(2)))
            optimizer = nn.Adam(model.parameters(), lr=0.05)
            for _ in range(10):
                optimizer.zero_grad()
                loss = F.cross_entropy(model(Tensor(x)), y)
                loss.backward()
                optimizer.step()
            return loss.item()

        assert run() == run()

    def test_city_data_reproducible(self):
        from repro.data import OpenCityData
        a = OpenCityData(seed=9).crime_incidents(days=5)
        b = OpenCityData(seed=9).crime_incidents(days=5)
        assert a == b
