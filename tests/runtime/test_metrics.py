"""Tests for the metric instruments and registry."""

import pytest

from repro.runtime import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    series_key,
)


class TestSeriesKey:
    def test_empty_labels(self):
        assert series_key({}) == ""

    def test_sorted_deterministic(self):
        assert series_key({"b": 2, "a": 1}) == "a=1,b=2"
        assert series_key({"a": 1, "b": 2}) == "a=1,b=2"


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labeled_series_independent(self):
        counter = Counter("c")
        counter.inc(topic="a")
        counter.inc(3, topic="b")
        assert counter.value(topic="a") == 1
        assert counter.value(topic="b") == 3
        assert counter.total() == 4

    def test_rejects_negative(self):
        with pytest.raises(MetricsError):
            Counter("c").inc(-1)

    def test_zero_inc_precreates_series(self):
        counter = Counter("c")
        counter.inc(0.0, machine="edge-0")
        assert "machine=edge-0" in counter.dump()

    def test_dump_sorted(self):
        counter = Counter("c")
        counter.inc(topic="z")
        counter.inc(topic="a")
        assert list(counter.dump()) == ["topic=a", "topic=z"]


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value() == 3

    def test_can_go_negative(self):
        gauge = Gauge("g")
        gauge.dec(2)
        assert gauge.value() == -2


class TestHistogram:
    def test_observe_and_summary(self):
        hist = Histogram("h")
        for value in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == 2.5
        assert summary["p50"] == 2.5

    def test_empty_summary_schema_stable(self):
        """Empty series carry the full 8-key schema with None statistics.

        JSON consumers of the metrics endpoint index p99/min/max without
        existence checks; an empty series must not shrink the schema.
        """
        summary = Histogram("h").summary()
        assert summary == {"count": 0, "sum": 0.0, "min": None, "max": None,
                           "mean": None, "p50": None, "p95": None, "p99": None}

    def test_summary_schema_identical_empty_and_populated(self):
        hist = Histogram("h")
        empty_keys = set(hist.summary())
        hist.observe(3.0)
        assert set(hist.summary()) == empty_keys

    def test_dump_uses_stable_schema(self):
        hist = Histogram("h")
        hist.observe(1.0, run="a")
        (row,) = hist.dump().values()
        assert list(row) == ["count", "sum", "min", "max",
                             "mean", "p50", "p95", "p99"]

    def test_single_observation_percentiles(self):
        hist = Histogram("h")
        hist.observe(7.0)
        summary = hist.summary()
        assert summary["p50"] == summary["p95"] == summary["p99"] == 7.0

    def test_labeled_values(self):
        hist = Histogram("h")
        hist.observe(1.0, run="a")
        hist.observe(2.0, run="b")
        assert hist.values(run="a") == [1.0]
        assert hist.count(run="b") == 1


class TestHistogramReservoir:
    def test_unbounded_by_default(self):
        hist = Histogram("h")
        for i in range(1000):
            hist.observe(float(i))
        assert len(hist.values()) == 1000

    def test_bounded_series_holds_at_most_max_samples(self):
        hist = Histogram("h", max_samples=64)
        for i in range(10_000):
            hist.observe(float(i))
        assert len(hist.values()) == 64
        assert hist.count() == 10_000

    def test_aggregates_exact_under_eviction(self):
        hist = Histogram("h", max_samples=8)
        values = [float(i) for i in range(500)]
        for value in values:
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 500
        assert summary["sum"] == sum(values)
        assert summary["min"] == 0.0
        assert summary["max"] == 499.0
        assert summary["mean"] == sum(values) / 500

    def test_reservoir_percentiles_are_estimates_in_range(self):
        hist = Histogram("h", max_samples=128)
        for i in range(20_000):
            hist.observe(float(i))
        summary = hist.summary()
        assert 0.0 <= summary["p50"] <= 19_999.0
        # a uniform reservoir's median lands near the true median
        assert abs(summary["p50"] - 10_000.0) < 4_000.0

    def test_eviction_deterministic_across_instances(self):
        def build():
            hist = Histogram("same-name", max_samples=32)
            for i in range(5_000):
                hist.observe(float(i), run="r")
            return hist.values(run="r")

        assert build() == build()

    def test_per_series_independent_reservoirs(self):
        hist = Histogram("h", max_samples=4)
        for i in range(100):
            hist.observe(float(i), run="a")
        hist.observe(1.0, run="b")
        assert len(hist.values(run="a")) == 4
        assert hist.values(run="b") == [1.0]
        assert hist.count(run="a") == 100

    def test_max_samples_validated(self):
        with pytest.raises(MetricsError):
            Histogram("h", max_samples=0)

    def test_registry_bound_is_sticky(self):
        registry = MetricsRegistry()
        bounded = registry.histogram("x", max_samples=16)
        assert registry.histogram("x") is bounded             # inherit
        assert registry.histogram("x", max_samples=16) is bounded
        with pytest.raises(MetricsError):
            registry.histogram("x", max_samples=32)

    def test_registry_kind_conflict_still_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError):
            registry.histogram("x", max_samples=4)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError):
            registry.gauge("x")
        with pytest.raises(MetricsError):
            registry.histogram("x")

    def test_get_unknown_raises(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().get("missing")

    def test_contains_and_names(self):
        registry = MetricsRegistry()
        registry.gauge("b")
        registry.counter("a")
        assert "a" in registry
        assert registry.names() == ["a", "b"]

    def test_dump_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(1)
        registry.histogram("h").observe(2.0)
        dump = registry.dump()
        assert set(dump) == {"counters", "gauges", "histograms"}
        assert dump["counters"]["c"][""] == 5
        assert dump["gauges"]["g"][""] == 1
        assert dump["histograms"]["h"][""]["count"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert "c" not in registry


class TestLabelValidationAndStructuredAccess:
    def test_label_value_with_comma_rejected_at_write_time(self):
        counter = Counter("c")
        with pytest.raises(MetricsError):
            counter.inc(1.0, hop="a,b")

    def test_label_value_with_equals_rejected_at_write_time(self):
        counter = Counter("c")
        with pytest.raises(MetricsError):
            counter.inc(1.0, hop="a=b")

    def test_label_value_with_newline_rejected(self):
        gauge = Gauge("g")
        with pytest.raises(MetricsError):
            gauge.set(1.0, name="a\nb")
        histogram = Histogram("h")
        with pytest.raises(MetricsError):
            histogram.observe(1.0, name="x,y")

    def test_series_key_rejects_ambiguous_values(self):
        with pytest.raises(MetricsError):
            series_key({"hop": "edge-0->fog-0,server-1"})

    def test_labeled_series_round_trips_label_structure(self):
        counter = Counter("bytes")
        # These two would have collided under naive string parsing if a
        # machine name were allowed to contain the separator characters;
        # with structured access the labels come back as dicts.
        counter.inc(10, hop="edge-0->fog-0", run="r1")
        counter.inc(20, hop="fog-0->server-0", run="r1")
        counter.inc(5, hop="edge-0->fog-0", run="r2")
        series = counter.labeled_series()
        assert ({"hop": "edge-0->fog-0", "run": "r1"}, 10.0) in series
        assert ({"hop": "fog-0->server-0", "run": "r1"}, 20.0) in series
        run1 = {labels["hop"]: value for labels, value in series
                if labels["run"] == "r1"}
        assert run1 == {"edge-0->fog-0": 10.0, "fog-0->server-0": 20.0}

    def test_labeled_series_sorted_and_copied(self):
        gauge = Gauge("g")
        gauge.set(2.0, zone="b")
        gauge.set(1.0, zone="a")
        series = gauge.labeled_series()
        assert [labels["zone"] for labels, _ in series] == ["a", "b"]
        series[0][0]["zone"] = "mutated"
        assert gauge.labeled_series()[0][0]["zone"] == "a"

    def test_histogram_labeled_series_copies_values(self):
        histogram = Histogram("h")
        histogram.observe(1.0, run="r")
        series = histogram.labeled_series()
        series[0][1].append(99.0)
        assert histogram.values(run="r") == [1.0]

    def test_labels_for_known_and_unknown_key(self):
        counter = Counter("c")
        counter.inc(1.0, a="x", b="y")
        assert counter.labels_for("a=x,b=y") == {"a": "x", "b": "y"}
        with pytest.raises(MetricsError):
            counter.labels_for("nope=1")


class TestBoundHandles:
    def test_bound_counter_writes_same_series(self):
        counter = Counter("c")
        produced = counter.bind(topic="events")
        produced.inc()
        produced.inc(2.5)
        counter.inc(0.5, topic="events")
        assert counter.value(topic="events") == 4.0
        assert produced.value() == 4.0
        assert produced.labels == {"topic": "events"}

    def test_bound_counter_rejects_negative(self):
        handle = Counter("c").bind(topic="a")
        with pytest.raises(MetricsError):
            handle.inc(-1)

    def test_bind_creates_no_series_until_first_write(self):
        bound = Counter("c")
        bound.bind(topic="idle")
        labeled = Counter("c")
        assert bound.dump() == labeled.dump()
        assert bound.total() == labeled.total() == 0.0

    def test_bound_and_labeled_dumps_identical(self):
        def write(use_bind):
            counter = Counter("c")
            if use_bind:
                handle = counter.bind(topic="a", tier="edge")
                for _ in range(5):
                    handle.inc(2)
            else:
                for _ in range(5):
                    counter.inc(2, topic="a", tier="edge")
            return counter.dump()

        assert write(True) == write(False)

    def test_bind_validates_labels_eagerly(self):
        with pytest.raises(MetricsError):
            Counter("c").bind(topic="a,b")

    def test_bound_gauge_set_inc_dec(self):
        gauge = Gauge("g")
        depth = gauge.bind(queue="q0")
        depth.set(10)
        depth.inc(2)
        depth.dec(5)
        assert gauge.value(queue="q0") == 7
        assert depth.value() == 7

    def test_bound_histogram_matches_labeled_observations(self):
        def observe(use_bind):
            hist = Histogram("h")
            if use_bind:
                handle = hist.bind(op="fetch")
                for i in range(50):
                    handle.observe(float(i))
            else:
                for i in range(50):
                    hist.observe(float(i), op="fetch")
            return hist.dump()

        assert observe(True) == observe(False)

    def test_bound_histogram_reservoir_byte_parity(self):
        # Algorithm R evictions must land on the same samples whichever
        # write path fed the series — the dump-parity contract.
        def observe(use_bind):
            hist = Histogram("h", max_samples=16)
            handle = hist.bind(op="fetch") if use_bind else None
            for i in range(2_000):
                if use_bind:
                    handle.observe(float(i))
                else:
                    hist.observe(float(i), op="fetch")
            return hist.values(op="fetch"), hist.count(op="fetch")

        assert observe(True) == observe(False)

    def test_bound_histogram_count(self):
        hist = Histogram("h")
        handle = hist.bind(op="x")
        assert handle.count() == 0
        handle.observe(1.0)
        handle.observe(2.0)
        assert handle.count() == 2

    def test_interleaved_bound_and_labeled_reservoir(self):
        hist = Histogram("h", max_samples=8)
        handle = hist.bind(op="x")
        for i in range(100):
            (handle.observe if i % 2 else
             lambda v: hist.observe(v, op="x"))(float(i))
        assert hist.count(op="x") == 100
        assert len(hist.values(op="x")) == 8
