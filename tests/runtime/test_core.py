"""Tests for the Runtime bundle and the default-runtime plumbing."""

import pytest

from repro.cluster.sim import Environment
from repro.runtime import Runtime, get_runtime, set_runtime, using_runtime


class TestClock:
    def test_wall_clock_by_default(self):
        runtime = Runtime()
        assert runtime.clock_kind == "wall"
        assert runtime.now() >= 0

    def test_sim_clock_binding(self):
        runtime = Runtime()
        env = Environment(initial_time=10.0)
        with runtime.sim_clock(env):
            assert runtime.clock_kind == "sim"
            assert runtime.now() == 10.0
        assert runtime.clock_kind == "wall"

    def test_nested_bindings_innermost_wins(self):
        runtime = Runtime()
        outer = Environment(initial_time=1.0)
        inner = Environment(initial_time=2.0)
        with runtime.sim_clock(outer):
            with runtime.sim_clock(inner):
                assert runtime.now() == 2.0
            assert runtime.now() == 1.0

    def test_environment_run_autobinds(self):
        runtime = Runtime()
        env = Environment(runtime=runtime)

        def process(env):
            yield env.timeout(3.0)

        env.process(process(env))
        env.run()
        assert runtime.registry.gauge("cluster.sim.now").value() == 3.0
        assert runtime.registry.counter(
            "cluster.sim.events_dispatched").total() > 0


class TestGensym:
    def test_sequential_per_prefix(self):
        runtime = Runtime()
        assert runtime.gensym("a") == "a-0"
        assert runtime.gensym("a") == "a-1"
        assert runtime.gensym("b") == "b-0"

    def test_fresh_runtime_restarts(self):
        assert Runtime().gensym("x") == Runtime().gensym("x")


class TestDefaultRuntime:
    def test_get_creates_singleton(self):
        assert get_runtime() is get_runtime()

    def test_set_installs(self):
        previous = get_runtime()
        try:
            runtime = Runtime(seed=42)
            assert set_runtime(runtime) is runtime
            assert get_runtime() is runtime
        finally:
            set_runtime(previous)

    def test_using_restores_previous(self):
        outer = get_runtime()
        with using_runtime(Runtime(seed=1)) as runtime:
            assert get_runtime() is runtime
        assert get_runtime() is outer

    def test_using_restores_on_error(self):
        outer = get_runtime()
        with pytest.raises(RuntimeError):
            with using_runtime(Runtime()):
                raise RuntimeError("boom")
        assert get_runtime() is outer


class TestLifecycle:
    def test_reset_clears_everything(self):
        runtime = Runtime(seed=3)
        runtime.registry.counter("c").inc()
        with runtime.tracer.span("s"):
            pass
        runtime.events.emit("e")
        runtime.gensym("p")
        runtime.reset()
        assert runtime.registry.names() == []
        assert runtime.tracer.spans() == []
        assert runtime.events.count() == 0
        assert runtime.gensym("p") == "p-0"
        assert runtime.seed == 3

    def test_dump_shape(self):
        runtime = Runtime(seed=11)
        runtime.registry.counter("c").inc()
        dump = runtime.dump()
        assert set(dump) == {"seed", "metrics", "spans", "events"}
        assert dump["seed"] == 11
