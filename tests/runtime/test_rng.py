"""Tests for the seeded RNG context."""

from repro.runtime import RngContext, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(7, ("a", 1)) == derive_seed(7, ("a", 1))

    def test_varies_with_seed_and_scope(self):
        base = derive_seed(0, ("a",))
        assert derive_seed(1, ("a",)) != base
        assert derive_seed(0, ("b",)) != base
        assert derive_seed(0, ("a", 0)) != base

    def test_fits_64_bits(self):
        assert 0 <= derive_seed(123, ("x",)) < 2 ** 64


class TestRngContext:
    def test_same_scope_same_stream(self):
        a = RngContext(3).child("fog.pipeline.exits", 0)
        b = RngContext(3).child("fog.pipeline.exits", 0)
        assert [a.random() for _ in range(10)] == \
            [b.random() for _ in range(10)]

    def test_different_scopes_independent(self):
        context = RngContext(3)
        a = context.child("one")
        b = context.child("two")
        assert [a.random() for _ in range(10)] != \
            [b.random() for _ in range(10)]

    def test_np_child_reproducible(self):
        a = RngContext(5).np_child("shuffle")
        b = RngContext(5).np_child("shuffle")
        assert (a.integers(0, 1000, size=20) ==
                b.integers(0, 1000, size=20)).all()

    def test_spawn_rescopes(self):
        root = RngContext(9)
        spawned = root.spawn("module")
        # spawn("module").child("x") == child via the combined scope seed
        direct = RngContext(derive_seed(9, ("module",))).child("x")
        assert spawned.child("x").random() == direct.random()
        assert spawned.seed != root.seed
