"""The parallel execution engine: ordering, transport, telemetry merge."""

import json
import pickle

import numpy as np
import pytest

from repro.runtime import (
    ParallelError,
    ParallelExecutor,
    Runtime,
    deterministic_dump,
    fork_available,
    get_runtime,
    using_runtime,
)
from repro.runtime.parallel import (
    BUSY_METRIC,
    BYTES_METRIC,
    TASK_SPAN,
    TASKS_METRIC,
    _encode_item,
    _decode_payload,
)

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform lacks fork")


def fresh_executor(workers, **kwargs):
    return ParallelExecutor(workers=workers, runtime=get_runtime(), **kwargs)


class TestMapOrdered:
    def test_preserves_submission_order_serial(self):
        with using_runtime(Runtime()):
            out = fresh_executor(1).map_ordered(lambda x: x * x, range(10))
        assert out == [x * x for x in range(10)]

    @needs_fork
    def test_preserves_submission_order_parallel(self):
        with using_runtime(Runtime()):
            out = fresh_executor(4).map_ordered(lambda x: x * x, range(10))
        assert out == [x * x for x in range(10)]

    @needs_fork
    def test_closures_cross_via_fork(self):
        # A lambda closing over local state is unpicklable; fork
        # inheritance is what makes it a legal task function.
        secret = {"offset": 41}
        with using_runtime(Runtime()):
            out = fresh_executor(2).map_ordered(
                lambda x: x + secret["offset"], [1, 2])
        assert out == [42, 43]
        with pytest.raises(Exception):
            pickle.dumps(lambda x: x + secret["offset"])

    def test_empty_items(self):
        with using_runtime(Runtime()):
            assert fresh_executor(4).map_ordered(lambda x: x, []) == []

    @needs_fork
    def test_worker_exception_propagates(self):
        def boom(x):
            raise ValueError(f"task {x} failed")

        with using_runtime(Runtime()):
            with pytest.raises(ValueError, match="failed"):
                fresh_executor(2).map_ordered(boom, [0, 1, 2])

    def test_invalid_workers_rejected(self):
        with pytest.raises(ParallelError):
            ParallelExecutor(workers=0)

    @needs_fork
    def test_nested_executor_degrades_to_serial(self):
        # A task that builds its own executor must not fork grandchildren.
        def task(x):
            inner = ParallelExecutor(workers=4)
            return (inner.is_parallel,
                    inner.map_ordered(lambda v: v + 1, [x, x])[0])

        with using_runtime(Runtime()):
            out = fresh_executor(2).map_ordered(task, [5, 6])
        assert out == [(False, 6), (False, 7)]


class TestSharedMemoryTransport:
    def test_large_arrays_ship_via_shm(self):
        item = {"x": np.arange(100_000, dtype=np.float64), "tag": "a"}
        payload, staged, segments = _encode_item(item, 64 * 1024)
        try:
            assert staged == item["x"].nbytes
            assert len(segments) == 1
            attached = []
            decoded = _decode_payload(payload, attached)
            assert np.array_equal(decoded["x"], item["x"])
            assert decoded["tag"] == "a"
            assert not decoded["x"].flags.writeable
            for segment in attached:
                segment.close()
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()

    def test_small_arrays_stay_inline(self):
        payload, staged, segments = _encode_item(np.arange(4), 64 * 1024)
        assert staged == 0 and segments == []
        assert np.array_equal(payload, np.arange(4))

    @needs_fork
    def test_bytes_shipped_metric(self):
        data = [np.full((300, 300), float(i)) for i in range(4)]
        with using_runtime(Runtime()) as rt:
            out = fresh_executor(2, shm_min_bytes=1024).map_ordered(
                lambda a: float(a.sum()), data, label="ship")
            shipped = rt.registry.counter(BYTES_METRIC).value(label="ship")
        assert out == [float(a.sum()) for a in data]
        assert shipped == sum(a.nbytes for a in data)

    @needs_fork
    def test_worker_result_may_alias_shared_input(self):
        # The worker pickles its result before closing the segment, so
        # returning (a view of) the shared input must work.
        data = [np.full((200, 200), 7.0)]
        with using_runtime(Runtime()):
            out = fresh_executor(2, shm_min_bytes=1024).map_ordered(
                lambda a: a[:2, :2], data + data)
        assert all(np.array_equal(r, np.full((2, 2), 7.0)) for r in out)


def emitting_task(item):
    rt = get_runtime()
    rt.registry.counter("test.parallel.items", "items seen").inc(
        part=str(item))
    rt.registry.gauge("test.parallel.last", "last item").set(float(item))
    rt.registry.histogram("test.parallel.values", "observations").observe(
        float(item) * 2.0)
    rt.events.emit("test.parallel.done", part=str(item))
    with rt.tracer.span("test.parallel.inner", part=str(item)):
        pass
    return item


class TestTelemetryMerge:
    @needs_fork
    def test_worker_metrics_merge_into_main_registry(self):
        with using_runtime(Runtime()) as rt:
            fresh_executor(4).map_ordered(emitting_task, range(6), label="m")
            counter = rt.registry.counter("test.parallel.items")
            assert counter.total() == 6
            assert counter.value(part="3") == 1
            assert rt.registry.gauge("test.parallel.last").value() == 5.0
            hist = rt.registry.histogram("test.parallel.values")
            assert sorted(hist.values()) == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]
            assert rt.events.count("test.parallel.done") == 6
            assert len(rt.tracer.spans("test.parallel.inner")) == 6
            assert len(rt.tracer.spans(TASK_SPAN)) == 6
            assert rt.registry.counter(TASKS_METRIC).value(label="m") == 6
            assert rt.registry.counter(BUSY_METRIC).value(label="m") > 0

    @needs_fork
    def test_dump_identical_across_worker_counts(self):
        dumps = {}
        for workers in (1, 2, 4):
            with using_runtime(Runtime(seed=9)) as rt:
                fresh_executor(workers).map_ordered(
                    emitting_task, range(8), label="sweep")
                dumps[workers] = json.dumps(deterministic_dump(rt),
                                            sort_keys=True)
        assert dumps[1] == dumps[2] == dumps[4]

    @needs_fork
    def test_span_tree_identical_across_worker_counts(self):
        """Worker-local span ids re-map onto the serial numbering."""
        trees = {}
        for workers in (1, 2, 4):
            with using_runtime(Runtime(seed=9)) as rt:
                fresh_executor(workers).map_ordered(
                    emitting_task, range(8), label="tree")
                ids = [s.span_id for s in rt.tracer.spans()]
                assert len(set(ids)) == len(ids), "duplicate span ids"
                trees[workers] = [
                    (s.name, s.span_id, s.parent_id, dict(s.labels))
                    for s in rt.tracer.spans()]
        assert trees[1] == trees[2] == trees[4]

    @needs_fork
    def test_worker_spans_nest_under_map_span(self):
        with using_runtime(Runtime()) as rt:
            fresh_executor(4).map_ordered(emitting_task, range(4), label="n")
            (map_span,) = rt.tracer.spans("runtime.parallel.map")
            tasks = rt.tracer.spans(TASK_SPAN)
            assert all(t.parent_id == map_span.span_id for t in tasks)
            by_id = {s.span_id: s for s in rt.tracer.spans()}
            for inner in rt.tracer.spans("test.parallel.inner"):
                assert by_id[inner.parent_id].name == TASK_SPAN

    @needs_fork
    def test_bounded_histogram_in_worker_rejected(self):
        def observe_bounded(item):
            get_runtime().registry.histogram(
                "test.parallel.bounded", "reservoir", max_samples=4).observe(
                    float(item))
            return item

        with using_runtime(Runtime()):
            with pytest.raises(ParallelError, match="bounded histogram"):
                fresh_executor(2).map_ordered(observe_bounded, range(4))

    def test_serial_path_emits_engine_telemetry(self):
        # workers=1 must produce the same span/counter structure as the
        # pool path so worker-count sweeps compare equal.
        with using_runtime(Runtime()) as rt:
            fresh_executor(1).map_ordered(emitting_task, range(3), label="s")
            assert len(rt.tracer.spans(TASK_SPAN)) == 3
            assert rt.registry.counter(TASKS_METRIC).value(label="s") == 3


class TestDeterministicDump:
    def test_normalization_drops_engine_and_wall_fields(self):
        with using_runtime(Runtime()) as rt:
            fresh_executor(1).map_ordered(emitting_task, range(2), label="n")
            payload = deterministic_dump(rt)
        for kind in payload["metrics"].values():
            assert not any(name.startswith("runtime.parallel.")
                           for name in kind)
        assert all(span["start"] == 0.0 and span["end"] == 0.0
                   for span in payload["spans"] if span["clock"] == "wall")
        assert all(event["time"] == 0.0 for event in payload["events"]
                   if event["clock"] == "wall")
        # structure survives: task spans and user metrics are retained
        assert any(span["name"] == TASK_SPAN for span in payload["spans"])
        assert "test.parallel.items" in payload["metrics"]["counters"]
