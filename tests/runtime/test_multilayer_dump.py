"""One run, one dump: metrics from every layer land in a single registry.

Mirrors the acceptance criterion pinned by the fig3 benchmark: a single
experiment touching streaming, compute, cluster, fog, and nn leaves one
registry whose dump carries all their metric families, exported through
``repro.viz.registry_to_json``.
"""

import json

import numpy as np

from repro import nn
from repro.cluster import NetworkTopology, Tier
from repro.compute import SparkContext
from repro.fog import FogPipeline, model_split_from_early_exit, place_bottom_up
from repro.nn.tensor import Tensor
from repro.runtime import Runtime, using_runtime
from repro.streaming import FlumeAgent, FunctionSource, MessageBus, topic_sink
from repro.viz import registry_to_json


def run_multilayer_experiment(runtime):
    # streaming: flume agent feeding a bus topic, then consumed
    bus = MessageBus(runtime=runtime)
    bus.create_topic("frames", partitions=2)
    agent = FlumeAgent(FunctionSource(range(16)), topic_sink(bus, "frames"),
                       batch_size=4, runtime=runtime)
    agent.run()
    bus.consumer("analytics", ["frames"]).drain()

    # compute: a shuffle through the Spark-style layer
    context = SparkContext(default_parallelism=2, runtime=runtime)
    context.parallelize([("a", 1), ("b", 2), ("a", 3)]) \
        .reduceByKey(lambda x, y: x + y).collect()

    # fog + cluster: a simulated stream (binds the DES virtual clock)
    topology = NetworkTopology.build_fog_hierarchy(
        edges_per_fog=2, fogs_per_server=2, servers=1)
    stages = model_split_from_early_exit(
        local_flops=1e8, remote_flops=5e9,
        feature_bytes=8_192, input_bytes=3 * 32 * 32,
        local_exit_flops=1e6)
    edge = topology.machines(Tier.EDGE)[0].name
    pipeline = FogPipeline(place_bottom_up(topology, stages, edge))
    pipeline.simulate_stream(num_items=8, arrival_interval_s=0.005,
                             exit_probabilities={1: 0.5}, runtime=runtime)

    # nn: an optimizer step
    param = Tensor(np.ones(4))
    optimizer = nn.SGD([param], lr=0.1, runtime=runtime)
    param.grad = np.ones(4)
    optimizer.step()


class TestMultiLayerDump:
    def test_one_registry_covers_every_layer(self, tmp_path):
        with using_runtime(Runtime(seed=0)) as runtime:
            run_multilayer_experiment(runtime)
            path = tmp_path / "registry.json"
            text = registry_to_json(runtime, path=str(path))

        payload = json.loads(text)
        names = set()
        for kind in ("counters", "gauges", "histograms"):
            names.update(payload["metrics"][kind])
        layers = {name.split(".")[0] for name in names}
        assert {"streaming", "compute", "cluster", "fog", "nn"} <= layers
        assert path.read_text() == text

    def test_sim_spans_carry_virtual_timestamps(self):
        with using_runtime(Runtime(seed=0)) as runtime:
            run_multilayer_experiment(runtime)
            stage_spans = runtime.tracer.spans("fog.pipeline.stage")
            assert stage_spans
            assert all(s.clock == "sim" for s in stage_spans)
            # virtual timestamps: tiny simulated quantities, consistent
            # with Environment.now, not wall-clock epoch values
            assert all(0 <= s.start <= s.end < 60 for s in stage_spans)
            flume_spans = runtime.tracer.spans("streaming.flume.deliver")
            assert flume_spans
            assert all(s.clock == "wall" for s in flume_spans)
