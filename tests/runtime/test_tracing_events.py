"""Tests for span tracing and the structured event log.

The acceptance-critical property lives here: the *same* ``tracer.span``
call site records virtual-clock timestamps while a DES environment is
bound and wall-clock timestamps otherwise.
"""

import pytest

from repro.cluster.sim import Environment
from repro.runtime import Runtime


class TestSpans:
    def test_wall_clock_span_outside_simulation(self):
        runtime = Runtime()
        with runtime.tracer.span("op", layer="test"):
            pass
        (span,) = runtime.tracer.spans("op")
        assert span.clock == "wall"
        assert span.duration >= 0

    def test_sim_clock_span_inside_simulation(self):
        runtime = Runtime()
        env = Environment(runtime=runtime)

        def process(env):
            with runtime.tracer.span("work"):
                yield env.timeout(2.5)

        env.process(process(env))
        env.run()
        (span,) = runtime.tracer.spans("work")
        assert span.clock == "sim"
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == pytest.approx(2.5)

    def test_span_survives_generator_suspension(self):
        """A span stays open across interleaved DES processes."""
        runtime = Runtime()
        env = Environment(runtime=runtime)

        def slow(env):
            with runtime.tracer.span("slow"):
                yield env.timeout(1.0)
                yield env.timeout(1.0)

        def fast(env):
            with runtime.tracer.span("fast"):
                yield env.timeout(0.5)

        env.process(slow(env))
        env.process(fast(env))
        env.run()
        assert runtime.tracer.total_duration("slow") == pytest.approx(2.0)
        assert runtime.tracer.total_duration("fast") == pytest.approx(0.5)

    def test_same_call_site_both_clocks(self):
        """No call-site change needed to switch clock domains."""
        runtime = Runtime()

        def record():
            with runtime.tracer.span("shared"):
                pass

        record()  # outside any simulation
        env = Environment(runtime=runtime)

        def process(env):
            record()
            yield env.timeout(0)

        env.process(process(env))
        env.run()
        clocks = [s.clock for s in runtime.tracer.spans("shared")]
        assert clocks == ["wall", "sim"]

    def test_annotate_and_duration_guard(self):
        runtime = Runtime()
        with runtime.tracer.span("op") as span:
            span.annotate(outcome="committed")
            with pytest.raises(RuntimeError):
                _ = span.duration
        assert span.labels["outcome"] == "committed"

    def test_total_duration_filters_labels(self):
        runtime = Runtime()
        with runtime.tracer.span("op", agent="a"):
            pass
        with runtime.tracer.span("op", agent="b"):
            pass
        both = runtime.tracer.total_duration("op")
        only_a = runtime.tracer.total_duration("op", agent="a")
        assert only_a <= both


class TestEvents:
    def test_emit_and_filter(self):
        runtime = Runtime()
        runtime.events.emit("node.failed", node="edge-0")
        runtime.events.emit("node.recovered", node="edge-0")
        assert runtime.events.count() == 2
        (failed,) = runtime.events.records("node.failed")
        assert failed.data["node"] == "edge-0"
        assert failed.clock == "wall"

    def test_events_use_sim_clock_when_bound(self):
        runtime = Runtime()
        env = Environment(runtime=runtime)

        def process(env):
            yield env.timeout(4.0)
            runtime.events.emit("late", detail=1)

        env.process(process(env))
        env.run()
        (record,) = runtime.events.records("late")
        assert record.clock == "sim"
        assert record.time == 4.0

    def test_dump_round_trips(self):
        runtime = Runtime()
        runtime.events.emit("e", b=2, a=1)
        (payload,) = runtime.events.dump()
        assert payload["kind"] == "e"
        assert list(payload["data"]) == ["a", "b"]
