"""Tests for span tracing and the structured event log.

The acceptance-critical property lives here: the *same* ``tracer.span``
call site records virtual-clock timestamps while a DES environment is
bound and wall-clock timestamps otherwise.
"""

import pytest

from repro.cluster.sim import Environment
from repro.runtime import Runtime


class TestSpans:
    def test_wall_clock_span_outside_simulation(self):
        runtime = Runtime()
        with runtime.tracer.span("op", layer="test"):
            pass
        (span,) = runtime.tracer.spans("op")
        assert span.clock == "wall"
        assert span.duration >= 0

    def test_sim_clock_span_inside_simulation(self):
        runtime = Runtime()
        env = Environment(runtime=runtime)

        def process(env):
            with runtime.tracer.span("work"):
                yield env.timeout(2.5)

        env.process(process(env))
        env.run()
        (span,) = runtime.tracer.spans("work")
        assert span.clock == "sim"
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == pytest.approx(2.5)

    def test_span_survives_generator_suspension(self):
        """A span stays open across interleaved DES processes."""
        runtime = Runtime()
        env = Environment(runtime=runtime)

        def slow(env):
            with runtime.tracer.span("slow"):
                yield env.timeout(1.0)
                yield env.timeout(1.0)

        def fast(env):
            with runtime.tracer.span("fast"):
                yield env.timeout(0.5)

        env.process(slow(env))
        env.process(fast(env))
        env.run()
        assert runtime.tracer.total_duration("slow") == pytest.approx(2.0)
        assert runtime.tracer.total_duration("fast") == pytest.approx(0.5)

    def test_same_call_site_both_clocks(self):
        """No call-site change needed to switch clock domains."""
        runtime = Runtime()

        def record():
            with runtime.tracer.span("shared"):
                pass

        record()  # outside any simulation
        env = Environment(runtime=runtime)

        def process(env):
            record()
            yield env.timeout(0)

        env.process(process(env))
        env.run()
        clocks = [s.clock for s in runtime.tracer.spans("shared")]
        assert clocks == ["wall", "sim"]

    def test_annotate_and_duration_guard(self):
        runtime = Runtime()
        with runtime.tracer.span("op") as span:
            span.annotate(outcome="committed")
            with pytest.raises(RuntimeError):
                _ = span.duration
        assert span.labels["outcome"] == "committed"

    def test_span_ids_assigned_in_start_order(self):
        runtime = Runtime()
        with runtime.tracer.span("a"):
            with runtime.tracer.span("b"):
                pass
        with runtime.tracer.span("c"):
            pass
        ids = {s.name: s.span_id for s in runtime.tracer.spans()}
        assert ids == {"a": 0, "b": 1, "c": 2}

    def test_parent_child_nesting(self):
        runtime = Runtime()
        with runtime.tracer.span("outer") as outer:
            with runtime.tracer.span("child1") as child1:
                with runtime.tracer.span("grandchild") as grand:
                    pass
            with runtime.tracer.span("child2") as child2:
                pass
        assert outer.parent_id is None
        assert child1.parent_id == outer.span_id
        assert child2.parent_id == outer.span_id
        assert grand.parent_id == child1.span_id
        assert runtime.tracer.children_of(outer) == [child1, child2]

    def test_span_tree_forest(self):
        runtime = Runtime()
        with runtime.tracer.span("root1"):
            with runtime.tracer.span("kid"):
                pass
        with runtime.tracer.span("root2"):
            pass
        forest = runtime.tracer.span_tree()
        assert [node["name"] for node in forest] == ["root1", "root2"]
        (kid,) = forest[0]["children"]
        assert kid["name"] == "kid" and kid["children"] == []

    def test_dump_carries_tree_links(self):
        runtime = Runtime()
        with runtime.tracer.span("outer"):
            with runtime.tracer.span("inner"):
                pass
        inner, outer = runtime.tracer.dump()  # completion order
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert set(inner) >= {"span_id", "parent_id", "start", "end",
                              "duration", "clock", "labels"}

    def test_nesting_across_sim_clock(self):
        """Tree links are clock-agnostic: a sim span nests under it too."""
        runtime = Runtime()
        with runtime.tracer.span("outer") as outer:
            env = Environment(runtime=runtime)

            def process(env):
                with runtime.tracer.span("sim-child"):
                    yield env.timeout(1.0)

            env.process(process(env))
            env.run()
        (child,) = runtime.tracer.spans("sim-child")
        assert child.clock == "sim"
        assert child.parent_id == outer.span_id

    def test_reset_restarts_ids(self):
        runtime = Runtime()
        with runtime.tracer.span("a"):
            pass
        runtime.tracer.reset()
        with runtime.tracer.span("b"):
            pass
        (span,) = runtime.tracer.spans()
        assert span.span_id == 0

    def test_same_seed_runs_dump_identical_trees(self):
        def run():
            runtime = Runtime(seed=3)
            with runtime.tracer.span("req", tenant="t0"):
                with runtime.tracer.span("infer"):
                    pass
            dump = runtime.tracer.dump()
            for span in dump:
                span["start"] = span["end"] = span["duration"] = 0.0
            return dump

        assert run() == run()

    def test_total_duration_filters_labels(self):
        runtime = Runtime()
        with runtime.tracer.span("op", agent="a"):
            pass
        with runtime.tracer.span("op", agent="b"):
            pass
        both = runtime.tracer.total_duration("op")
        only_a = runtime.tracer.total_duration("op", agent="a")
        assert only_a <= both


class TestEvents:
    def test_emit_and_filter(self):
        runtime = Runtime()
        runtime.events.emit("node.failed", node="edge-0")
        runtime.events.emit("node.recovered", node="edge-0")
        assert runtime.events.count() == 2
        (failed,) = runtime.events.records("node.failed")
        assert failed.data["node"] == "edge-0"
        assert failed.clock == "wall"

    def test_events_use_sim_clock_when_bound(self):
        runtime = Runtime()
        env = Environment(runtime=runtime)

        def process(env):
            yield env.timeout(4.0)
            runtime.events.emit("late", detail=1)

        env.process(process(env))
        env.run()
        (record,) = runtime.events.records("late")
        assert record.clock == "sim"
        assert record.time == 4.0

    def test_dump_round_trips(self):
        runtime = Runtime()
        runtime.events.emit("e", b=2, a=1)
        (payload,) = runtime.events.dump()
        assert payload["kind"] == "e"
        assert list(payload["data"]) == ["a", "b"]


class TestSpanSampler:
    def test_every_one_records_every_span(self):
        runtime = Runtime()
        sampler = runtime.tracer.sampler("op", every=1)
        for _ in range(4):
            with sampler.span(layer="test"):
                pass
        assert len(runtime.tracer.spans("op")) == 4

    def test_every_n_records_first_then_every_nth(self):
        runtime = Runtime()
        sampler = runtime.tracer.sampler("op", every=4)
        for _ in range(9):
            with sampler.span():
                pass
        # calls 0, 4 and 8 are real spans; the rest are no-ops
        assert len(runtime.tracer.spans("op")) == 3

    def test_skipped_spans_consume_no_ids(self):
        # a no-op span must not perturb span ids, or sampled and
        # unsampled runs would dump different trees
        runtime = Runtime()
        sampler = runtime.tracer.sampler("sampled", every=100)
        with sampler.span():
            pass
        for _ in range(50):
            with sampler.span():       # all no-ops
                pass
        with runtime.tracer.span("real"):
            pass
        (first,) = runtime.tracer.spans("sampled")
        (second,) = runtime.tracer.spans("real")
        assert second.span_id == first.span_id + 1

    def test_noop_span_supports_annotate(self):
        runtime = Runtime()
        sampler = runtime.tracer.sampler("op", every=2)
        with sampler.span():           # real
            pass
        with sampler.span() as span:   # no-op
            assert span.annotate(outcome="ok") is span
        assert len(runtime.tracer.spans("op")) == 1

    def test_real_spans_carry_labels(self):
        runtime = Runtime()
        sampler = runtime.tracer.sampler("op", every=1)
        with sampler.span(topic="events"):
            pass
        (span,) = runtime.tracer.spans("op")
        assert span.labels["topic"] == "events"

    def test_reset_restarts_cadence(self):
        runtime = Runtime()
        sampler = runtime.tracer.sampler("op", every=3)
        with sampler.span():           # call 0: real
            pass
        sampler.reset()
        with sampler.span():           # call 0 again: real
            pass
        assert len(runtime.tracer.spans("op")) == 2

    def test_every_validated(self):
        runtime = Runtime()
        with pytest.raises(ValueError):
            runtime.tracer.sampler("op", every=0)
