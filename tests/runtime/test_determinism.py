"""Whole-stack determinism: same seed -> byte-identical dumps.

The contract that makes simulated experiments replayable: running the
same fog stream under two fresh, identically-seeded runtimes must produce
byte-identical observability dumps — metric label values (gensym
counters), RNG draws, and span timestamps (virtual clock) all included.
"""

from repro.cluster import NetworkTopology, Tier
from repro.fog import FogPipeline, model_split_from_early_exit, place_bottom_up
from repro.runtime import Runtime, using_runtime
from repro.viz import registry_to_json


def build_pipeline():
    topology = NetworkTopology.build_fog_hierarchy(
        edges_per_fog=2, fogs_per_server=2, servers=1)
    stages = model_split_from_early_exit(
        local_flops=1e8, remote_flops=5e9,
        feature_bytes=8_192, input_bytes=3 * 32 * 32,
        local_exit_flops=1e6)
    edge = topology.machines(Tier.EDGE)[0].name
    return FogPipeline(place_bottom_up(topology, stages, edge))


def run_stream_once(seed):
    with using_runtime(Runtime(seed=seed)) as runtime:
        pipeline = build_pipeline()
        stats = pipeline.simulate_stream(
            num_items=12, arrival_interval_s=0.005,
            exit_probabilities={1: 0.5}, seed=3)
        return registry_to_json(runtime), stats


class TestDeterminism:
    def test_identical_seeds_byte_identical_dumps(self):
        dump_a, stats_a = run_stream_once(seed=5)
        dump_b, stats_b = run_stream_once(seed=5)
        assert dump_a == dump_b
        assert stats_a == stats_b

    def test_different_seeds_differ(self):
        dump_a, _ = run_stream_once(seed=5)
        dump_b, _ = run_stream_once(seed=6)
        assert dump_a != dump_b

    def test_shared_streams_deterministic(self):
        def run(seed):
            with using_runtime(Runtime(seed=seed)) as runtime:
                from repro.fog.pipeline import simulate_shared_streams
                pipeline = build_pipeline()
                simulate_shared_streams([
                    {"pipeline": pipeline, "num_items": 6,
                     "arrival_interval_s": 0.004,
                     "exit_probabilities": {1: 0.5}},
                    {"pipeline": pipeline, "num_items": 6,
                     "arrival_interval_s": 0.004,
                     "exit_probabilities": {1: 0.5}},
                ], seed=1)
                return registry_to_json(runtime)

        assert run(2) == run(2)

    def test_exit_draws_come_from_runtime_rng(self):
        """Same runtime seed + stream seed -> identical exit pattern."""
        _, stats_a = run_stream_once(seed=9)
        _, stats_b = run_stream_once(seed=9)
        assert stats_a.resolved_per_stage == stats_b.resolved_per_stage
