"""Tests for social/gang data, open city data, and the secure store."""

import numpy as np
import pytest

from repro.data import (
    GangNetworkGenerator,
    LawEnforcementFeed,
    OpenCityData,
    SecureStore,
    TweetGenerator,
    WazeGenerator,
)
from repro.data.city import DISTRICT_RATES


class TestGangNetwork:
    def test_paper_statistics(self):
        # Sec. IV-B: 67 groups, 982 members, ~14 first-degree associates.
        graph = GangNetworkGenerator(seed=0).generate()
        assert graph.num_vertices == 982
        groups = {attrs["group"] for attrs in graph.vertices.values()}
        assert len(groups) == 67
        assert graph.mean_degree() == pytest.approx(14.0, rel=0.05)

    def test_second_degree_field_scale(self):
        # Paper: second-degree extension yields a field of ~200 associates.
        graph = GangNetworkGenerator(seed=0).generate()
        rng = np.random.default_rng(1)
        members = list(graph.vertices)
        fields = [len(graph.n_degree_neighborhood(members[i], 2))
                  for i in rng.choice(len(members), 50, replace=False)]
        mean_field = float(np.mean(fields))
        assert 120 < mean_field < 320  # same order as the paper's ~200

    def test_within_group_ties_far_above_random(self):
        graph = GangNetworkGenerator(seed=0).generate()
        same = sum(1 for s, d, _ in graph.edges
                   if graph.vertices[s]["group"] == graph.vertices[d]["group"])
        # Random pairing would land within-group ~1.5% of the time
        # (67 groups of ~15); the generator keeps ~40% within.
        assert same / graph.num_edges > 0.3

    def test_deterministic(self):
        a = GangNetworkGenerator(seed=5).generate(num_groups=5,
                                                  total_members=50)
        b = GangNetworkGenerator(seed=5).generate(num_groups=5,
                                                  total_members=50)
        assert a.edges == b.edges

    def test_small_network_parameters(self):
        graph = GangNetworkGenerator(seed=0).generate(
            num_groups=4, total_members=40, mean_first_degree=5.0)
        assert graph.num_vertices == 40
        assert graph.mean_degree() == pytest.approx(5.0, rel=0.1)

    def test_validates(self):
        with pytest.raises(ValueError):
            GangNetworkGenerator().generate(num_groups=10, total_members=5)


class TestTweets:
    def test_chatter_volume_and_fields(self):
        tweets = TweetGenerator(seed=0).chatter(50)
        assert len(tweets) == 50
        first = tweets[0]
        assert 0 <= first.location[0] <= 1
        assert first.text

    def test_unique_ids(self):
        generator = TweetGenerator(seed=0)
        tweets = generator.chatter(30) + generator.chatter(30)
        ids = [t.tweet_id for t in tweets]
        assert len(set(ids)) == 60

    def test_incident_burst_near_location_and_time(self):
        generator = TweetGenerator(seed=0)
        burst = generator.incident_burst(
            ["user0001", "user0002"], location=(0.5, 0.5), time=12.0)
        assert len(burst) == 2
        for tweet in burst:
            assert abs(tweet.location[0] - 0.5) < 0.15
            assert abs(tweet.time - 12.0) < 3.0

    def test_incident_text_contains_incident_terms(self):
        generator = TweetGenerator(seed=0)
        burst = generator.incident_burst(["user0001"], (0.5, 0.5), 12.0)
        hits = TweetGenerator.keyword_filter(burst, ["shots", "gunshot",
                                                     "police", "sirens",
                                                     "fight", "robbery",
                                                     "fired", "heard",
                                                     "scared", "avenue"])
        assert hits  # incident tweets match the watch keywords

    def test_keyword_filter(self):
        generator = TweetGenerator(seed=1)
        tweets = generator.chatter(200)
        music = TweetGenerator.keyword_filter(tweets, ["music"])
        assert all("music" in t.text for t in music)
        assert 0 < len(music) < len(tweets)

    def test_geo_filter(self):
        generator = TweetGenerator(seed=2)
        tweets = generator.chatter(200)
        near = TweetGenerator.geo_filter(tweets, (0.5, 0.5), 0.2)
        assert 0 < len(near) < len(tweets)
        for tweet in near:
            assert np.hypot(tweet.location[0] - 0.5,
                            tweet.location[1] - 0.5) <= 0.2

    def test_as_document(self):
        tweet = TweetGenerator(seed=0).chatter(1)[0]
        doc = tweet.as_document()
        assert doc["tweet_id"] == tweet.tweet_id
        assert isinstance(doc["location"], list)

    def test_validates(self):
        with pytest.raises(ValueError):
            TweetGenerator(num_users=0)


class TestWaze:
    def test_report_fields(self):
        reports = WazeGenerator(seed=0).reports(20)
        assert len(reports) == 20
        kinds = {r["type"] for r in reports}
        assert kinds <= set(WazeGenerator.REPORT_TYPES)

    def test_jams_are_system_generated(self):
        reports = WazeGenerator(seed=0).reports(200)
        for report in reports:
            if report["type"] == "JAM":
                assert report["source"] == "system"
            else:
                assert report["source"] == "user"


class TestOpenCityData:
    def test_crime_rates_follow_district_profile(self):
        records = OpenCityData(seed=0).crime_incidents(days=60)
        counts = {d: 0 for d in DISTRICT_RATES}
        for record in records:
            counts[record["district"]] += 1
        # district 4 (rate 2.4) must out-crime district 5 (rate 0.5)
        assert counts[4] > 2 * counts[5]

    def test_crime_locations_near_district_centers(self):
        records = OpenCityData(seed=0).crime_incidents(days=30)
        d4 = [r["location"] for r in records if r["district"] == 4]
        center = np.mean(d4, axis=0)
        np.testing.assert_allclose(center, [0.3, 0.3], atol=0.05)

    def test_daily_crime_counts_series(self):
        city = OpenCityData(seed=0)
        records = city.crime_incidents(days=30)
        series = city.daily_crime_counts(records)
        assert len(series) == 30
        assert sum(series) == len(records)

    def test_daily_counts_filter_by_district(self):
        city = OpenCityData(seed=0)
        records = city.crime_incidents(days=10)
        d1 = city.daily_crime_counts(records, district=1)
        assert sum(d1) == sum(1 for r in records if r["district"] == 1)

    def test_emergency_calls(self):
        calls = OpenCityData(seed=0).emergency_calls(days=5)
        assert calls
        assert all(r["kind"] == "911" for r in calls)
        assert all(1 <= r["priority"] <= 3 for r in calls)

    def test_traffic_and_service(self):
        city = OpenCityData(seed=0)
        assert city.traffic_incidents(days=5)
        requests = city.service_requests(days=5)
        assert {r["status"] for r in requests} <= {"open", "closed"}

    def test_validates(self):
        with pytest.raises(ValueError):
            OpenCityData().crime_incidents(days=0)

    def test_empty_series(self):
        assert OpenCityData().daily_crime_counts([]) == []


class TestLawEnforcement:
    def test_monthly_batch_schema(self):
        records = LawEnforcementFeed(seed=0).monthly_batch(month=1)
        assert len(records) == 40
        record = records[0]
        assert record["offense"] in ("homicide", "robbery",
                                     "aggravated assault",
                                     "illegal use of a weapon")
        assert record["suspects"]
        assert record["month"] == 1

    def test_unique_report_numbers_across_months(self):
        feed = LawEnforcementFeed(seed=0)
        january = feed.monthly_batch(1)
        february = feed.monthly_batch(2)
        numbers = [r["report_number"] for r in january + february]
        assert len(set(numbers)) == len(numbers)

    def test_co_offense_edges(self):
        feed = LawEnforcementFeed(seed=0)
        records = feed.monthly_batch(1, incidents=10)
        edges = feed.co_offense_edges(records)
        assert edges
        for a, b in edges:
            assert a < b  # normalized ordering, no self-loops

    def test_validates(self):
        with pytest.raises(ValueError):
            LawEnforcementFeed(num_persons=1)


class TestSecureStore:
    def test_authorized_access_only(self):
        store = SecureStore()
        store.upload("2018-01", [{"a": 1}], day=0)
        with pytest.raises(PermissionError):
            store.read("2018-01")
        assert store.read("2018-01", authorized=True) == [{"a": 1}]

    def test_retention_purges_old_uploads(self):
        store = SecureStore(retention_days=90)
        store.upload("jan", [{"a": 1}], day=0)
        store.upload("apr", [{"a": 2}], day=89)
        assert store.purge(current_day=91) == 1
        assert store.upload_ids() == ["apr"]
        with pytest.raises(KeyError):
            store.read("jan", authorized=True)

    def test_purge_boundary_exact_retention_kept(self):
        store = SecureStore(retention_days=90)
        store.upload("x", [], day=0)
        assert store.purge(current_day=90) == 0  # exactly 90 days: kept
        assert store.purge(current_day=91) == 1

    def test_duplicate_upload_rejected(self):
        store = SecureStore()
        store.upload("u", [], day=0)
        with pytest.raises(ValueError):
            store.upload("u", [], day=1)

    def test_validates(self):
        with pytest.raises(ValueError):
            SecureStore(retention_days=0)
