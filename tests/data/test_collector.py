"""Tests for the keyword/geo tweet collector."""

import pytest

from repro.data import TweetCollector, TweetGenerator
from repro.data.social import Tweet
from repro.streaming import MessageBus


def tweet(text="hello world", location=(0.5, 0.5), user="u1", tid=1):
    return Tweet(tweet_id=tid, user_id=user, text=text,
                 location=location, time=12.0)


class TestSubscriptions:
    def test_add_and_list(self):
        collector = TweetCollector()
        collector.add_keywords("guns", ["gunshot", "shots"])
        collector.add_location("downtown", (0.5, 0.5), 0.1)
        assert collector.subscription_names() == ["downtown", "guns"]

    def test_duplicate_rejected(self):
        collector = TweetCollector()
        collector.add_keywords("a", ["x"])
        with pytest.raises(ValueError):
            collector.add_location("a", (0, 0), 0.1)

    def test_remove(self):
        collector = TweetCollector()
        collector.add_keywords("a", ["x"])
        collector.remove("a")
        assert collector.subscription_names() == []
        with pytest.raises(KeyError):
            collector.remove("a")

    def test_validates(self):
        collector = TweetCollector()
        with pytest.raises(ValueError):
            collector.add_keywords("empty", [])
        with pytest.raises(ValueError):
            collector.add_location("zero", (0, 0), 0.0)


class TestMatching:
    def test_keyword_matches_whole_tokens(self):
        collector = TweetCollector()
        collector.add_keywords("guns", ["shots"])
        assert collector.matching_subscriptions(
            tweet("heard shots nearby")) == ["guns"]
        # substring inside another word must not match
        assert collector.matching_subscriptions(
            tweet("gunshots is one token")) == []

    def test_keyword_case_insensitive(self):
        collector = TweetCollector()
        collector.add_keywords("guns", ["SHOTS"])
        assert collector.matching_subscriptions(tweet("Shots fired"))

    def test_geo_circle(self):
        collector = TweetCollector()
        collector.add_location("downtown", (0.5, 0.5), 0.1)
        assert collector.matching_subscriptions(tweet(location=(0.55, 0.5)))
        assert not collector.matching_subscriptions(tweet(location=(0.9, 0.9)))

    def test_multiple_matches_reported(self):
        collector = TweetCollector()
        collector.add_keywords("guns", ["shots"])
        collector.add_location("downtown", (0.5, 0.5), 0.2)
        matched = collector.matching_subscriptions(
            tweet("shots", location=(0.5, 0.5)))
        assert matched == ["downtown", "guns"]


class TestCollection:
    def test_requires_subscriptions(self):
        with pytest.raises(RuntimeError):
            TweetCollector().collect([tweet()])

    def test_filters_and_tags(self):
        collector = TweetCollector()
        collector.add_keywords("guns", ["shots"])
        accepted = collector.collect([
            tweet("shots fired", tid=1),
            tweet("nice weather", tid=2),
        ])
        assert len(accepted) == 1
        assert accepted[0]["tweet_id"] == 1
        assert accepted[0]["matched"] == ["guns"]
        assert collector.accepted == 1
        assert collector.rejected == 1

    def test_publishes_to_bus(self):
        bus = MessageBus()
        collector = TweetCollector(bus=bus, topic="watch")
        collector.add_keywords("guns", ["shots"])
        collector.collect([tweet("shots", user="u7")])
        records = bus.consumer("g", ["watch"]).drain()
        assert len(records) == 1
        assert records[0].key == "u7"
        assert records[0].value["matched"] == ["guns"]

    def test_realistic_stream_filtering(self):
        generator = TweetGenerator(num_users=50, seed=0)
        tweets = generator.chatter(300)
        tweets += generator.incident_burst(["user0001"], (0.5, 0.5), 12.0)
        collector = TweetCollector()
        collector.add_keywords("watch", ["gunshot", "shots", "police",
                                         "robbery", "sirens", "fired"])
        accepted = collector.collect(tweets)
        assert 0 < len(accepted) < len(tweets)
        # the incident tweet is among the accepted
        assert any("just" in doc["text"] for doc in accepted)
