"""Tests for the camera registry and the procedural video generators."""

import numpy as np
import pytest

from repro.data import (
    ActionClipGenerator,
    Camera,
    CameraRegistry,
    SceneGenerator,
    VehicleCatalog,
    build_dotd_registry,
)
from repro.data.cameras import LOUISIANA_CITIES
from repro.data.video import ACTION_CLASSES


class TestCameraRegistry:
    def test_paper_scale(self):
        registry = build_dotd_registry(seed=0)
        # Paper: "more than 200 cameras" across 9 cities.
        assert len(registry) > 200
        assert len(registry.cities()) == 9

    def test_baton_rouge_densest(self):
        registry = build_dotd_registry(seed=0)
        counts = {city: len(registry.by_city(city))
                  for city in registry.cities()}
        assert max(counts, key=counts.get) == "Baton Rouge"

    def test_deterministic(self):
        a = build_dotd_registry(seed=3)
        b = build_dotd_registry(seed=3)
        assert [c.camera_id for c in a] == [c.camera_id for c in b]
        assert [c.lat for c in a] == [c.lat for c in b]

    def test_custom_counts(self):
        registry = build_dotd_registry(
            seed=0, cameras_per_city={"Houma": 3})
        assert len(registry.by_city("Houma")) == 3

    def test_by_highway(self):
        registry = build_dotd_registry(seed=0)
        i10 = registry.by_highway("I-10")
        assert i10
        assert all(c.highway == "I-10" for c in i10)

    def test_get_and_missing(self):
        registry = build_dotd_registry(seed=0)
        camera = registry.all()[0]
        assert registry.get(camera.camera_id) == camera
        with pytest.raises(KeyError):
            registry.get("ghost")

    def test_nearest(self):
        registry = build_dotd_registry(seed=0)
        br = next(c for c in LOUISIANA_CITIES if c.name == "Baton Rouge")
        nearest = registry.nearest(br.lat, br.lon)
        assert nearest.city == "Baton Rouge"

    def test_within_radius(self):
        registry = build_dotd_registry(seed=0)
        br = next(c for c in LOUISIANA_CITIES if c.name == "Baton Rouge")
        nearby = registry.within_radius(br.lat, br.lon, 0.5)
        assert len(nearby) >= len(registry.by_city("Baton Rouge")) * 0.8

    def test_duplicate_ids_rejected(self):
        camera = Camera("c1", "X", "I-0", 0, 0, 30, 640, 480)
        with pytest.raises(ValueError):
            CameraRegistry([camera, camera])

    def test_feed_rates(self):
        camera = Camera("c1", "X", "I-0", 0, 0, 30, 640, 480)
        assert camera.bytes_per_frame == 640 * 480 * 3
        assert camera.bytes_per_second == camera.bytes_per_frame * 30

    def test_coverage_summary(self):
        registry = build_dotd_registry(seed=0)
        rows = registry.coverage_summary()
        assert len(rows) == 9
        assert sum(r["cameras"] for r in rows) == len(registry)
        assert all(r["mbytes_per_second"] > 0 for r in rows)

    def test_total_ingest_positive(self):
        assert build_dotd_registry(seed=0).total_ingest_bytes_per_second() > 0


class TestVehicleCatalog:
    def test_paper_scale_catalog(self):
        catalog = VehicleCatalog(400)
        labels = catalog.labels()
        assert len(labels) == 400
        assert len(set(labels)) == 400  # all distinct

    def test_label_format(self):
        label = VehicleCatalog(10).label(0)
        assert any(make in label for make in ["Toyota", "Ford"])

    def test_validates(self):
        with pytest.raises(ValueError):
            VehicleCatalog(0)
        with pytest.raises(ValueError):
            VehicleCatalog(10_000)
        with pytest.raises(ValueError):
            VehicleCatalog(10).label(10)


class TestSceneGenerator:
    def test_scene_shape_and_range(self):
        generator = SceneGenerator(image_size=32, num_classes=5, seed=0)
        frame, boxes = generator.generate_scene(num_vehicles=2)
        assert frame.shape == (1, 32, 32)
        assert frame.min() >= 0.0 and frame.max() <= 1.0
        assert len(boxes) == 2

    def test_boxes_within_frame(self):
        generator = SceneGenerator(image_size=32, num_classes=5, seed=1)
        _, boxes = generator.generate_scene(num_vehicles=4)
        for box in boxes:
            assert 0 <= box.cx - box.w / 2 and box.cx + box.w / 2 <= 1.0001
            assert 0 <= box.cy - box.h / 2 and box.cy + box.h / 2 <= 1.0001

    def test_signatures_distinguish_classes(self):
        generator = SceneGenerator(image_size=32, num_classes=5, seed=0)
        a = generator.render_vehicle(0, 8, 8)
        b = generator.render_vehicle(1, 8, 8)
        assert not np.allclose(a, b)

    def test_signature_stable_across_sizes(self):
        generator = SceneGenerator(image_size=32, num_classes=5, seed=0)
        small = generator.render_vehicle(2, 4, 4)
        large = generator.render_vehicle(2, 8, 8)
        # the large render downsampled at corners matches the small pattern
        assert large[0, 0] == small[0, 0]

    def test_classification_dataset_balanced(self):
        generator = SceneGenerator(image_size=16, num_classes=4, seed=0)
        images, labels = generator.classification_dataset(40)
        assert images.shape == (40, 1, 16, 16)
        counts = np.bincount(labels)
        assert (counts == 10).all()

    def test_batch_generation(self):
        generator = SceneGenerator(image_size=16, num_classes=3, seed=0)
        frames, truth = generator.generate_batch(5, vehicles_per_scene=1)
        assert frames.shape == (5, 1, 16, 16)
        assert all(len(b) == 1 for b in truth)

    def test_validates(self):
        with pytest.raises(ValueError):
            SceneGenerator(image_size=4)
        with pytest.raises(ValueError):
            SceneGenerator(num_classes=0)
        with pytest.raises(ValueError):
            SceneGenerator(num_classes=3).render_vehicle(5, 4, 4)


class TestActionClipGenerator:
    def test_clip_shape(self):
        generator = ActionClipGenerator(image_size=16, frames=8, seed=0)
        clip = generator.generate_clip(0)
        assert clip.shape == (8, 1, 16, 16)
        assert clip.min() >= 0 and clip.max() <= 1

    def test_all_classes_generate(self):
        generator = ActionClipGenerator(seed=0)
        for class_id in range(len(ACTION_CLASSES)):
            assert generator.generate_clip(class_id).shape[0] == 8

    def test_motion_distinguishes_running_from_loitering(self):
        generator = ActionClipGenerator(image_size=16, frames=8, seed=0,
                                        noise=0.0)
        running = generator.generate_clip(ACTION_CLASSES.index("running"))
        loitering = generator.generate_clip(ACTION_CLASSES.index("loitering"))

        def travel(clip):
            # horizontal travel of the intensity centroid
            xs = np.arange(clip.shape[-1])
            centroids = [(frame[0] * xs).sum() / frame[0].sum()
                         for frame in clip]
            return abs(centroids[-1] - centroids[0])

        assert travel(running) > 3 * travel(loitering)

    def test_dataset_interleaves_classes(self):
        generator = ActionClipGenerator(image_size=8, frames=4, seed=0)
        clips, labels = generator.dataset(clips_per_class=2)
        assert clips.shape[0] == 2 * len(ACTION_CLASSES)
        assert labels[:len(ACTION_CLASSES)].tolist() == \
            list(range(len(ACTION_CLASSES)))

    def test_validates(self):
        with pytest.raises(ValueError):
            ActionClipGenerator(image_size=2)
        with pytest.raises(ValueError):
            ActionClipGenerator(frames=1)
        with pytest.raises(ValueError):
            ActionClipGenerator().generate_clip(99)
        with pytest.raises(ValueError):
            ActionClipGenerator().dataset(0)
