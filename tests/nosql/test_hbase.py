"""Tests for the HBase-like wide-column store."""

import pytest

from repro.dfs import DistributedFileSystem
from repro.nosql import HBaseError, HTable
from repro.nosql.hbase import Cell, _decode_cells, _encode_cells


def make_table(flush=1000, families=("info", "geo")):
    dfs = DistributedFileSystem.with_datanodes(3, replication=2)
    return HTable("t", dfs, families=families, memstore_flush_cells=flush)


class TestCodec:
    def test_roundtrip(self):
        cells = [
            Cell("row1", "info", "type", b"robbery", 5),
            Cell("row2", "geo", "loc", b"\x00\x01\xff", 7, tombstone=True),
        ]
        assert _decode_cells(_encode_cells(cells)) == cells

    def test_empty(self):
        assert _decode_cells(_encode_cells([])) == []

    def test_unicode_keys(self):
        cells = [Cell("résumé", "info", "café", b"v", 1)]
        assert _decode_cells(_encode_cells(cells)) == cells


class TestPutGet:
    def test_roundtrip(self):
        table = make_table()
        table.put("r1", "info", "type", b"robbery")
        assert table.get_value("r1", "info", "type") == b"robbery"

    def test_get_whole_row(self):
        table = make_table()
        table.put("r1", "info", "type", b"robbery")
        table.put("r1", "geo", "district", b"4")
        row = table.get("r1")
        assert row[("info", "type")] == b"robbery"
        assert row[("geo", "district")] == b"4"

    def test_get_filtered_by_family(self):
        table = make_table()
        table.put("r1", "info", "type", b"robbery")
        table.put("r1", "geo", "district", b"4")
        assert list(table.get("r1", "geo")) == [("geo", "district")]

    def test_latest_version_wins(self):
        table = make_table()
        table.put("r1", "info", "status", b"open")
        table.put("r1", "info", "status", b"closed")
        assert table.get_value("r1", "info", "status") == b"closed"

    def test_missing_row_empty(self):
        assert make_table().get("nope") == {}

    def test_unknown_family_rejected(self):
        table = make_table()
        with pytest.raises(HBaseError):
            table.put("r", "ghosts", "q", b"v")
        with pytest.raises(HBaseError):
            table.get("r", "ghosts")

    def test_non_bytes_value_rejected(self):
        with pytest.raises(HBaseError):
            make_table().put("r", "info", "q", "string")

    def test_requires_family(self):
        dfs = DistributedFileSystem.with_datanodes(3, replication=2)
        with pytest.raises(HBaseError):
            HTable("t", dfs, families=())


class TestFlushAndRead:
    def test_explicit_flush_persists_to_dfs(self):
        table = make_table()
        table.put("r1", "info", "a", b"1")
        path = table.flush()
        assert path is not None
        assert table.dfs.exists(path)
        assert table.memstore_size == 0
        assert table.get_value("r1", "info", "a") == b"1"

    def test_flush_empty_memstore_noop(self):
        assert make_table().flush() is None

    def test_auto_flush_at_threshold(self):
        table = make_table(flush=5)
        for i in range(5):
            table.put(f"r{i}", "info", "a", b"x")
        assert table.hfile_count == 1
        assert table.memstore_size == 0

    def test_read_merges_memstore_over_hfile(self):
        table = make_table()
        table.put("r1", "info", "a", b"old")
        table.flush()
        table.put("r1", "info", "a", b"new")
        assert table.get_value("r1", "info", "a") == b"new"

    def test_read_merges_across_hfiles(self):
        table = make_table()
        table.put("r1", "info", "a", b"v1")
        table.flush()
        table.put("r1", "info", "b", b"v2")
        table.flush()
        row = table.get("r1")
        assert row == {("info", "a"): b"v1", ("info", "b"): b"v2"}

    def test_cache_survives_reload(self):
        table = make_table()
        table.put("r1", "info", "a", b"1")
        path = table.flush()
        table._hfile_cache.clear()  # force DFS read path
        assert table.get_value("r1", "info", "a") == b"1"


class TestDelete:
    def test_delete_hides_value(self):
        table = make_table()
        table.put("r1", "info", "a", b"1")
        table.delete("r1", "info", "a")
        assert table.get_value("r1", "info", "a") is None

    def test_delete_across_flush(self):
        table = make_table()
        table.put("r1", "info", "a", b"1")
        table.flush()
        table.delete("r1", "info", "a")
        table.flush()
        assert table.get("r1") == {}

    def test_put_after_delete_resurrects(self):
        table = make_table()
        table.put("r1", "info", "a", b"1")
        table.delete("r1", "info", "a")
        table.put("r1", "info", "a", b"2")
        assert table.get_value("r1", "info", "a") == b"2"


class TestScan:
    def test_scan_sorted_by_row_key(self):
        table = make_table()
        for key in ["c", "a", "b"]:
            table.put(key, "info", "x", key.encode())
        rows = [row for row, _ in table.scan()]
        assert rows == ["a", "b", "c"]

    def test_scan_range(self):
        table = make_table()
        for key in ["a", "b", "c", "d"]:
            table.put(key, "info", "x", b"1")
        rows = [row for row, _ in table.scan(start_row="b", stop_row="d")]
        assert rows == ["b", "c"]

    def test_scan_skips_fully_deleted_rows(self):
        table = make_table()
        table.put("a", "info", "x", b"1")
        table.put("b", "info", "x", b"1")
        table.delete("a", "info", "x")
        rows = [row for row, _ in table.scan()]
        assert rows == ["b"]

    def test_row_count(self):
        table = make_table()
        for i in range(7):
            table.put(f"r{i}", "info", "x", b"1")
        assert table.row_count() == 7


class TestCompaction:
    def test_compaction_merges_files(self):
        table = make_table()
        for i in range(3):
            table.put(f"r{i}", "info", "x", str(i).encode())
            table.flush()
        assert table.hfile_count == 3
        table.compact()
        assert table.hfile_count == 1
        for i in range(3):
            assert table.get_value(f"r{i}", "info", "x") == str(i).encode()

    def test_compaction_drops_tombstones(self):
        table = make_table()
        table.put("r1", "info", "x", b"1")
        table.flush()
        table.delete("r1", "info", "x")
        table.flush()
        path = table.compact()
        cells = table._hfile_cells(path)
        assert cells == []

    def test_compaction_drops_stale_versions(self):
        table = make_table()
        table.put("r1", "info", "x", b"old")
        table.flush()
        table.put("r1", "info", "x", b"new")
        table.flush()
        path = table.compact()
        cells = table._hfile_cells(path)
        assert len(cells) == 1
        assert cells[0].value == b"new"

    def test_compaction_frees_dfs_space(self):
        table = make_table()
        for i in range(5):
            table.put("r1", "info", "x", b"v" * 100)
            table.flush()
        before = table.dfs.total_bytes_stored()
        table.compact()
        assert table.dfs.total_bytes_stored() < before

    def test_compact_empty_table(self):
        assert make_table().compact() is None

    def test_random_reads_after_heavy_churn(self):
        table = make_table(flush=10)
        for i in range(100):
            table.put(f"r{i % 20}", "info", "x", str(i).encode())
        # last writer per row wins: row k holds the largest i with i%20==k
        for k in range(20):
            expected = str(80 + k).encode()
            assert table.get_value(f"r{k}", "info", "x") == expected
