"""Tests for the MongoDB-like document store."""

import pytest

from repro.nosql import Collection, DocumentStore, MongoError


def crimes_collection():
    coll = Collection("crimes")
    coll.insert_many([
        {"type": "robbery", "district": 4, "severity": 8,
         "location": [0.30, 0.40], "tags": ["armed"]},
        {"type": "assault", "district": 4, "severity": 6,
         "location": [0.31, 0.41]},
        {"type": "burglary", "district": 2, "severity": 5,
         "location": [0.70, 0.80]},
        {"type": "robbery", "district": 1, "severity": 9,
         "location": [0.90, 0.10]},
    ])
    return coll


class TestInsert:
    def test_insert_assigns_ids(self):
        coll = Collection("c")
        first = coll.insert({"a": 1})
        second = coll.insert({"a": 2})
        assert first != second
        assert len(coll) == 2

    def test_explicit_id_respected(self):
        coll = Collection("c")
        assert coll.insert({"_id": 99, "a": 1}) == 99

    def test_duplicate_id_rejected(self):
        coll = Collection("c")
        coll.insert({"_id": 1})
        with pytest.raises(MongoError):
            coll.insert({"_id": 1})

    def test_non_dict_rejected(self):
        with pytest.raises(MongoError):
            Collection("c").insert(["not", "a", "doc"])

    def test_insert_copies_document(self):
        coll = Collection("c")
        original = {"a": 1}
        coll.insert(original)
        original["a"] = 999
        assert coll.find_one({})["a"] == 1


class TestQueries:
    def test_equality(self):
        coll = crimes_collection()
        assert coll.count({"type": "robbery"}) == 2

    def test_empty_query_returns_all(self):
        assert crimes_collection().count({}) == 4

    def test_comparison_operators(self):
        coll = crimes_collection()
        assert coll.count({"severity": {"$gt": 6}}) == 2
        assert coll.count({"severity": {"$gte": 6}}) == 3
        assert coll.count({"severity": {"$lt": 6}}) == 1
        assert coll.count({"severity": {"$lte": 6}}) == 2
        assert coll.count({"severity": {"$ne": 8}}) == 3

    def test_in_nin(self):
        coll = crimes_collection()
        assert coll.count({"type": {"$in": ["robbery", "assault"]}}) == 3
        assert coll.count({"type": {"$nin": ["robbery", "assault"]}}) == 1

    def test_exists(self):
        coll = crimes_collection()
        assert coll.count({"tags": {"$exists": True}}) == 1
        assert coll.count({"tags": {"$exists": False}}) == 3

    def test_regex(self):
        assert crimes_collection().count({"type": {"$regex": "^rob"}}) == 2

    def test_and(self):
        coll = crimes_collection()
        assert coll.count({"$and": [{"district": 4},
                                    {"severity": {"$gt": 7}}]}) == 1

    def test_or(self):
        coll = crimes_collection()
        assert coll.count({"$or": [{"district": 1}, {"district": 2}]}) == 2

    def test_combined_fields_implicit_and(self):
        assert crimes_collection().count(
            {"type": "robbery", "district": 4}) == 1

    def test_missing_field_no_match(self):
        assert crimes_collection().count({"ghost": 1}) == 0

    def test_unsupported_operator_raises(self):
        with pytest.raises(MongoError):
            crimes_collection().count({"severity": {"$mod": 2}})

    def test_dotted_path(self):
        coll = Collection("c")
        coll.insert({"meta": {"source": "waze"}})
        assert coll.count({"meta.source": "waze"}) == 1

    def test_sort_and_limit(self):
        coll = crimes_collection()
        docs = coll.find({}, sort="severity", descending=True, limit=2)
        assert [d["severity"] for d in docs] == [9, 8]

    def test_find_one(self):
        assert crimes_collection().find_one({"district": 2})["type"] == "burglary"
        assert crimes_collection().find_one({"district": 99}) is None

    def test_distinct(self):
        assert sorted(crimes_collection().distinct("district")) == [1, 2, 4]

    def test_results_are_copies(self):
        coll = crimes_collection()
        doc = coll.find_one({"type": "burglary"})
        doc["type"] = "hacked"
        assert coll.count({"type": "hacked"}) == 0


class TestUpdateDelete:
    def test_update_set(self):
        coll = crimes_collection()
        changed = coll.update({"type": "robbery"}, {"$set": {"reviewed": True}})
        assert changed == 2
        assert coll.count({"reviewed": True}) == 2

    def test_update_dotted_path(self):
        coll = Collection("c")
        coll.insert({"a": 1})
        coll.update({"a": 1}, {"$set": {"meta.status": "ok"}})
        assert coll.find_one({})["meta"]["status"] == "ok"

    def test_update_requires_set(self):
        with pytest.raises(MongoError):
            crimes_collection().update({}, {"$inc": {"severity": 1}})

    def test_delete(self):
        coll = crimes_collection()
        assert coll.delete({"district": 4}) == 2
        assert len(coll) == 2


class TestHashIndex:
    def test_index_used_for_equality(self):
        coll = crimes_collection()
        coll.create_index("type")
        assert coll.count({"type": "robbery"}) == 2
        assert coll.last_query_used_index

    def test_full_scan_without_index(self):
        coll = crimes_collection()
        coll.count({"type": "robbery"})
        assert not coll.last_query_used_index

    def test_index_not_used_for_range(self):
        coll = crimes_collection()
        coll.create_index("severity")
        coll.count({"severity": {"$gt": 6}})
        assert not coll.last_query_used_index

    def test_index_maintained_on_insert(self):
        coll = crimes_collection()
        coll.create_index("type")
        coll.insert({"type": "robbery"})
        assert coll.count({"type": "robbery"}) == 3
        assert coll.last_query_used_index

    def test_index_maintained_on_update(self):
        coll = crimes_collection()
        coll.create_index("type")
        coll.update({"type": "burglary"}, {"$set": {"type": "theft"}})
        assert coll.count({"type": "theft"}) == 1
        assert coll.count({"type": "burglary"}) == 0

    def test_index_maintained_on_delete(self):
        coll = crimes_collection()
        coll.create_index("type")
        coll.delete({"type": "robbery"})
        assert coll.count({"type": "robbery"}) == 0

    def test_index_on_list_valued_field(self):
        coll = crimes_collection()
        coll.create_index("tags")  # list values must be hashable
        assert coll.count({"type": "robbery"}) == 2


class TestGeoQueries:
    def test_near_with_max_distance(self):
        coll = crimes_collection()
        near = coll.find({"location": {"$near": [0.30, 0.40],
                                       "$maxDistance": 0.05}})
        assert {d["type"] for d in near} == {"robbery", "assault"}

    def test_near_unbounded_matches_all_points(self):
        coll = crimes_collection()
        assert coll.count({"location": {"$near": [0.5, 0.5]}}) == 4

    def test_geo_within_box(self):
        coll = crimes_collection()
        box = {"$geoWithin": {"low": [0.0, 0.0], "high": [0.5, 0.5]}}
        assert coll.count({"location": box}) == 2

    def test_geo_index_accelerates_near(self):
        coll = crimes_collection()
        coll.create_geo_index("location", cell_size=0.1)
        hits = coll.find({"location": {"$near": [0.30, 0.40],
                                       "$maxDistance": 0.05}})
        assert len(hits) == 2
        assert coll.last_query_used_index

    def test_geo_index_same_answers_as_scan(self):
        plain = crimes_collection()
        indexed = crimes_collection()
        indexed.create_geo_index("location", cell_size=0.07)
        query = {"location": {"$near": [0.7, 0.8], "$maxDistance": 0.2}}
        assert ({d["type"] for d in plain.find(query)}
                == {d["type"] for d in indexed.find(query)})

    def test_geo_index_box_query(self):
        coll = crimes_collection()
        coll.create_geo_index("location", cell_size=0.05)
        box = {"$geoWithin": {"low": [0.0, 0.0], "high": [0.5, 0.5]}}
        assert coll.count({"location": box}) == 2
        assert coll.last_query_used_index

    def test_doc_without_point_not_matched(self):
        coll = Collection("c")
        coll.insert({"location": "not-a-point"})
        assert coll.count({"location": {"$near": [0, 0]}}) == 0


class TestDocumentStore:
    def test_collections_created_on_demand(self):
        store = DocumentStore()
        store.collection("tweets").insert({"text": "hi"})
        assert store.collection_names() == ["tweets"]
        assert store.collection("tweets").count({}) == 1

    def test_same_collection_returned(self):
        store = DocumentStore()
        assert store.collection("a") is store.collection("a")

    def test_drop_collection(self):
        store = DocumentStore()
        store.collection("a").insert({})
        store.drop_collection("a")
        assert store.collection("a").count({}) == 0
