"""Tests for the vehicle detection & classification app (Fig. 5/6)."""

import numpy as np
import pytest

from repro.apps.vehicle import VehicleDetectionApp
from repro.cluster import NetworkTopology, Tier
from repro.nosql import Collection


@pytest.fixture(scope="module")
def trained_app():
    app = VehicleDetectionApp(num_classes=3, image_size=16, seed=0)
    app.train(num_scenes=48, epochs=30, lr=0.01)
    return app


class TestTraining:
    def test_losses_decrease(self):
        fresh = VehicleDetectionApp(num_classes=3, image_size=16, seed=0)
        losses = fresh.train(num_scenes=16, epochs=5)
        assert losses[-1] < losses[0]

    def test_server_exit_detection_quality(self, trained_app):
        # All-server inference (threshold > 1): the full model's quality.
        report = trained_app.evaluate(num_scenes=16, threshold=1.01)
        assert report.detection_metrics["recall"] > 0.5
        assert report.detection_metrics["f1"] > 0.4

    def test_local_exit_weaker_than_server(self, trained_app):
        # The Fig. 5 premise: the tiny local model trails the full model.
        local = trained_app.evaluate(num_scenes=16, threshold=0.0)
        server = trained_app.evaluate(num_scenes=16, threshold=1.01)
        assert (local.detection_metrics["f1"]
                <= server.detection_metrics["f1"] + 0.05)


class TestEarlyExitBehaviour:
    def test_threshold_zero_everything_local(self, trained_app):
        report = trained_app.evaluate(num_scenes=8, threshold=0.0)
        assert report.local_fraction == 1.0
        assert report.bytes_shipped == 0

    def test_threshold_above_one_everything_server(self, trained_app):
        report = trained_app.evaluate(num_scenes=8, threshold=1.01)
        assert report.local_fraction == 0.0
        assert report.bytes_shipped > 0

    def test_sweep_monotone_offload(self, trained_app):
        rows = trained_app.threshold_sweep([0.0, 0.3, 0.6, 1.01],
                                           num_scenes=12)
        fractions = [r["local_fraction"] for r in rows]
        assert fractions == sorted(fractions, reverse=True)
        shipped = [r["bytes_shipped"] for r in rows]
        assert shipped == sorted(shipped)

    def test_annotations_carry_labels(self, trained_app):
        report = trained_app.evaluate(num_scenes=8, threshold=0.5)
        if report.annotations:
            annotation = report.annotations[0]
            assert {"frame", "label", "score", "box", "exit"} <= set(annotation)


class TestDatasets:
    def test_classification_dataset_shape(self):
        app = VehicleDetectionApp(num_classes=4, image_size=16, seed=0)
        images, labels = app.build_classification_dataset(20)
        assert images.shape == (20, 1, 16, 16)
        assert set(labels) == {0, 1, 2, 3}

    def test_catalog_matches_class_count(self):
        app = VehicleDetectionApp(num_classes=5, image_size=16, seed=0)
        assert app.catalog.num_classes == 5


class TestDeployment:
    def test_fog_pipeline_places_three_stages(self, trained_app):
        topology = NetworkTopology.build_fog_hierarchy()
        edge = topology.machines(Tier.EDGE)[0].name
        pipeline = trained_app.fog_pipeline(topology, edge)
        assert len(pipeline.stages) == 3
        tiers = [pipeline.placement.topology.machine(m).tier
                 for m in pipeline.placement.machines]
        assert tiers == [Tier.EDGE, Tier.FOG, Tier.SERVER]

    def test_fog_pipeline_costs_reflect_split(self, trained_app):
        topology = NetworkTopology.build_fog_hierarchy()
        edge = topology.machines(Tier.EDGE)[0].name
        pipeline = trained_app.fog_pipeline(topology, edge)
        local = pipeline.item_cost(1)
        server = pipeline.item_cost(2)
        assert server.total_s > local.total_s

    def test_index_annotations(self, trained_app):
        collection = Collection("vehicle_annotations")
        report = trained_app.evaluate(num_scenes=8, threshold=0.0)
        written = trained_app.index_annotations(collection, report)
        assert written == len(report.annotations)
        assert collection.count({}) == written
