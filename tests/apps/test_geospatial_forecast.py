"""Tests for spatial CNN analysis (Sec. III-A) and temporal forecasting
(Sec. III-B)."""

import numpy as np
import pytest

from repro.apps.forecast import CrimeForecaster, LSTMRegressor
from repro.apps.forecast.crime import seasonal_series, windows
from repro.apps.geospatial import HotspotCnnApp
from repro.nn.tensor import Tensor


class TestHotspotCnn:
    def test_sample_day_is_valid_density(self):
        app = HotspotCnnApp(grid=8, seed=0)
        day = app.sample_day(2)
        assert day.shape == (8, 8)
        assert 0.0 <= day.min() and day.max() == 1.0

    def test_sample_day_validates(self):
        with pytest.raises(ValueError):
            HotspotCnnApp(seed=0).sample_day(4)
        with pytest.raises(ValueError):
            HotspotCnnApp(grid=7)

    def test_hot_quadrant_carries_most_mass_in_easy_regime(self):
        app = HotspotCnnApp(grid=8, seed=0, cluster_points=20,
                            noise_points=10)
        day = app.sample_day(0)  # quadrant 0: low x, low y
        assert day[:4, :4].sum() > day[4:, 4:].sum()

    def test_dataset_balanced(self):
        app = HotspotCnnApp(seed=0)
        images, labels = app.dataset(days_per_quadrant=5)
        assert images.shape == (20, 1, 8, 8)
        assert np.bincount(labels).tolist() == [5, 5, 5, 5]
        with pytest.raises(ValueError):
            app.dataset(0)

    def test_training_reduces_loss(self):
        app = HotspotCnnApp(seed=0)
        losses = app.train(days_per_quadrant=10, epochs=10)
        assert losses[-1] < losses[0]

    def test_cnn_beats_quadrant_count_baseline(self):
        # The Sec. III-A claim: spatial structure beats aggregate counts
        # in the noisy regime.
        app = HotspotCnnApp(grid=8, seed=0)
        app.train(days_per_quadrant=25, epochs=40)
        cnn = app.evaluate(days_per_quadrant=15)
        baseline = app.quadrant_count_baseline(train_days=25, test_days=15)
        assert cnn > baseline
        assert cnn > 0.6  # far above the 25% chance level


class TestWindows:
    def test_window_shapes(self):
        inputs, targets = windows([1, 2, 3, 4, 5], length=2)
        assert inputs.shape == (3, 2, 1)
        np.testing.assert_allclose(targets, [3, 4, 5])
        np.testing.assert_allclose(inputs[0, :, 0], [1, 2])

    def test_window_validates(self):
        with pytest.raises(ValueError):
            windows([1, 2], length=0)
        with pytest.raises(ValueError):
            windows([1, 2], length=2)


class TestSeasonalSeries:
    def test_nonnegative_and_seasonal(self):
        series = seasonal_series(70, seed=0)
        assert (series >= 0).all()
        # weekly autocorrelation: day t correlates with day t+7
        a, b = series[:-7], series[7:]
        corr = np.corrcoef(a, b)[0, 1]
        assert corr > 0.5

    def test_deterministic(self):
        np.testing.assert_allclose(seasonal_series(30, seed=3),
                                   seasonal_series(30, seed=3))


class TestLSTMRegressor:
    def test_output_shape(self):
        model = LSTMRegressor(hidden_size=6)
        out = model(Tensor(np.zeros((4, 7, 1))))
        assert out.shape == (4, 1)


class TestCrimeForecaster:
    @pytest.fixture(scope="class")
    def fitted(self):
        forecaster = CrimeForecaster(window=7, seed=0)
        forecaster.fit(seasonal_series(120, seed=0), epochs=120)
        return forecaster

    def test_fit_reduces_loss(self):
        forecaster = CrimeForecaster(window=7, seed=1)
        losses = forecaster.fit(seasonal_series(60, seed=0), epochs=30)
        assert losses[-1] < losses[0]

    def test_predictions_have_right_length(self, fitted):
        series = seasonal_series(40, seed=2)
        assert len(fitted.predict(series)) == 40 - 7

    def test_lstm_beats_naive_baselines(self, fitted):
        # Sec. III-B: LSTMs discover the (weekly) long-range correlation
        # that persistence and moving averages cannot exploit.
        report = fitted.compare(seasonal_series(60, seed=9))
        assert report["lstm"] < report["persistence"]
        assert report["lstm"] < report["moving_average"]

    def test_predictions_track_seasonality(self, fitted):
        series = seasonal_series(60, seed=5, noise=0.0)
        predictions = fitted.predict(series)
        targets = windows(series, 7)[1]
        corr = np.corrcoef(predictions, targets)[0, 1]
        assert corr > 0.9
