"""Tests for gang-network analysis and multimodal triangulation (Sec. IV-B)."""

import numpy as np
import pytest

from repro.apps.social import (
    MultimodalTriangulation,
    OpioidAnalytics,
    SocialNetworkAnalysis,
)
from repro.data import GangNetworkGenerator, LawEnforcementFeed, TweetGenerator


@pytest.fixture(scope="module")
def paper_network():
    return SocialNetworkAnalysis.paper_scale(seed=0)


class TestNetworkAnalysis:
    def test_paper_scale_statistics(self, paper_network):
        sizes = paper_network.mean_field_sizes(sample=60, seed=1)
        assert sizes["first_degree"] == pytest.approx(14.0, rel=0.15)
        assert 120 < sizes["second_degree"] < 320  # the paper's ~200

    def test_field_size_report(self, paper_network):
        member = sorted(paper_network.graph.vertices)[0]
        report = paper_network.field_size_report(member)
        assert report.person == member
        assert report.second_degree >= report.first_degree

    def test_key_players_ranked(self, paper_network):
        top = paper_network.key_players(top=5)
        assert len(top) == 5
        ranks = [rank for _, rank in top]
        assert ranks == sorted(ranks, reverse=True)

    def test_group_lookup(self, paper_network):
        member = sorted(paper_network.graph.vertices)[0]
        assert paper_network.group_of(member) is not None
        with pytest.raises(KeyError):
            paper_network.group_of("nobody")

    def test_from_incident_records(self):
        feed = LawEnforcementFeed(seed=0)
        records = feed.monthly_batch(1, incidents=25)
        analysis = SocialNetworkAnalysis.from_incidents(records)
        assert analysis.graph.num_vertices > 0
        assert analysis.graph.num_edges > 0
        # every edge comes from people co-listed on a record
        expected = set(feed.co_offense_edges(records))
        actual = {(s, d) for s, d, _ in analysis.graph.edges}
        assert actual <= expected

    def test_shared_co_offenders(self):
        records = [{"suspects": ["a", "b"], "victims": []},
                   {"suspects": ["b", "c"], "victims": []}]
        analysis = SocialNetworkAnalysis.from_incidents(records)
        assert analysis.shared_co_offenders("a", "c") == {"b"}

    def test_empty_network_field_sizes(self):
        from repro.compute.graphx import Graph
        empty = SocialNetworkAnalysis(Graph({}, []))
        sizes = empty.mean_field_sizes()
        assert sizes == {"first_degree": 0.0, "second_degree": 0.0}


class TestTriangulation:
    def build_scenario(self, seed=0):
        """A small network + tweets where exactly two associates tweeted
        incident language near the incident in time and space."""
        network = SocialNetworkAnalysis(
            GangNetworkGenerator(seed=seed).generate(
                num_groups=4, total_members=60, mean_first_degree=6))
        members = sorted(network.graph.vertices)
        anchor = members[0]
        field = sorted(network.associates(anchor, 2))
        assert len(field) >= 4
        tweeters = TweetGenerator(num_users=60, seed=seed)
        # rename generator users to network members so ids align
        tweeters.users = members
        incident_location, incident_time = (0.4, 0.6), 12.0
        tweets = tweeters.chatter(400)
        guilty = field[:2]
        tweets += tweeters.incident_burst(
            guilty, incident_location, incident_time,
            geo_spread=0.01, time_spread=0.2)
        # an associate tweeting incident words far away (should be filtered)
        tweets += tweeters.incident_burst(
            [field[2]], (0.9, 0.1), incident_time, geo_spread=0.01)
        # an associate tweeting incident words nearby but hours later
        tweets += tweeters.incident_burst(
            [field[3]], incident_location, incident_time + 8.0,
            geo_spread=0.01, time_spread=0.1)
        return network, anchor, tweets, incident_location, incident_time, guilty

    def test_narrowing_pipeline(self):
        (network, anchor, tweets, location, time,
         guilty) = self.build_scenario()
        triangulation = MultimodalTriangulation(network)
        report = triangulation.investigate(anchor, location, time, tweets,
                                           geo_radius=0.08, time_window=2.0)
        assert set(guilty) <= report.persons_of_interest
        assert len(report.persons_of_interest) < report.field_size
        assert report.narrowing_factor > 2

    def test_stage_counts_monotone(self):
        network, anchor, tweets, location, time, _ = self.build_scenario(1)
        report = MultimodalTriangulation(network).investigate(
            anchor, location, time, tweets)
        counts = [count for _, count in report.stages()]
        assert counts == sorted(counts, reverse=True)

    def test_geo_filter_excludes_distant_tweeter(self):
        (network, anchor, tweets, location, time,
         guilty) = self.build_scenario(2)
        report = MultimodalTriangulation(network).investigate(
            anchor, location, time, tweets, geo_radius=0.08)
        assert report.after_geo_filter <= report.after_text_filter

    def test_time_filter_excludes_late_tweeter(self):
        (network, anchor, tweets, location, time,
         guilty) = self.build_scenario(3)
        report = MultimodalTriangulation(network).investigate(
            anchor, location, time, tweets, time_window=2.0)
        assert report.after_time_filter <= report.after_geo_filter

    def test_text_ranking_prefers_incident_tweeters(self):
        (network, anchor, tweets, location, time,
         guilty) = self.build_scenario(4)
        triangulation = MultimodalTriangulation(network)
        candidates = network.associates(anchor, 2)
        ranking = triangulation.rank_by_text_similarity(tweets, candidates)
        if ranking:
            ranked_users = [user for user, _ in ranking]
            for guilty_user in guilty:
                if guilty_user in ranked_users:
                    # guilty users appear in the top half of the ranking
                    assert (ranked_users.index(guilty_user)
                            < max(len(ranked_users) // 2, 2))

    def test_report_without_hits(self):
        network = SocialNetworkAnalysis(
            GangNetworkGenerator(seed=9).generate(
                num_groups=3, total_members=30, mean_first_degree=4))
        anchor = sorted(network.graph.vertices)[0]
        report = MultimodalTriangulation(network).investigate(
            anchor, (0.5, 0.5), 12.0, tweets=[])
        assert report.persons_of_interest == set()
        assert report.with_tweets == 0


class TestOpioid:
    def test_overdoses_follow_district_profile(self):
        analytics = OpioidAnalytics(seed=0)
        overdoses = analytics.synthetic_overdoses(days=90)
        counts = analytics.district_counts(overdoses)
        assert counts[4] > counts[5]

    def test_report_correlations_positive(self):
        report = OpioidAnalytics(seed=0).report(days=90)
        assert report["overdose_vs_crime"] > 0.5
        assert -1.0 <= report["overdose_vs_911"] <= 1.0

    def test_correlation_validates(self):
        with pytest.raises(ValueError):
            OpioidAnalytics.correlation({1: 2}, {1: 3})

    def test_correlation_constant_profile_is_zero(self):
        assert OpioidAnalytics.correlation(
            {1: 5, 2: 5}, {1: 1, 2: 2}) == 0.0
