"""Tests for multimodal gunshot fusion (Sec. III-C) and DQN camera control
(Sec. III-D)."""

import numpy as np
import pytest

from repro.apps.drl import (
    DQNAgent,
    PTZCameraEnv,
    ReplayBuffer,
    evaluate_policy,
    random_policy,
    static_policy,
)
from repro.apps.fusion import GunshotEventGenerator, GunshotFusionApp


class TestGunshotGenerator:
    def test_sample_shapes(self):
        generator = GunshotEventGenerator(seed=0)
        audio, video = generator.sample(0)
        assert audio.shape == (20,)
        assert video.shape == (16,)

    def test_dataset_binary_labels(self):
        audio, video, labels = GunshotEventGenerator(seed=0).dataset(10)
        assert len(labels) == 30
        assert labels.sum() == 10  # one class in three is a gunshot

    def test_confuser_structure(self):
        generator = GunshotEventGenerator(seed=0, noise=0.0)
        gun_audio, gun_video = generator.sample(0)
        fw_audio, fw_video = generator.sample(1)
        bf_audio, bf_video = generator.sample(2)
        # fireworks share the flash, backfire shares the impulse
        np.testing.assert_allclose(gun_video, fw_video)
        np.testing.assert_allclose(gun_audio, bf_audio)
        assert not np.allclose(gun_audio, fw_audio)
        assert not np.allclose(gun_video, bf_video)

    def test_validates(self):
        with pytest.raises(ValueError):
            GunshotEventGenerator().sample(5)
        with pytest.raises(ValueError):
            GunshotEventGenerator().dataset(0)


class TestGunshotFusion:
    @pytest.fixture(scope="class")
    def results(self):
        return GunshotFusionApp(seed=0).run(
            train_per_class=50, test_per_class=30, ae_epochs=120)

    def test_single_modalities_are_confused(self, results):
        # Each modality alone cannot beat ~5/6 accuracy: its confuser class
        # is indistinguishable (up to noise) in that modality.
        assert results["audio_only"] < 0.9
        assert results["video_only"] < 0.9

    def test_fusion_beats_single_modalities(self, results):
        best_single = max(results["audio_only"], results["video_only"])
        assert results["ae_fusion"] > best_single
        assert results["cca_fusion"] > best_single

    def test_fusion_is_accurate(self, results):
        assert results["ae_fusion"] > 0.85
        assert results["cca_fusion"] > 0.7  # linear/unsupervised: weaker

    def test_missing_modality_degrades_gracefully(self):
        report = GunshotFusionApp(seed=1).missing_modality_accuracy(
            train_per_class=50, test_per_class=30, ae_epochs=120)
        assert report["both"] >= report["audio_missing_video"] - 0.05
        assert report["both"] >= report["video_missing_audio"] - 0.05
        # degraded, but still above chance (0.5 for the binary label)
        assert report["audio_missing_video"] > 0.5


class TestPTZEnv:
    def test_reset_returns_observation(self):
        env = PTZCameraEnv(seed=0)
        obs = env.reset()
        assert obs.shape == (5,)
        assert env.zoom == 0

    def test_fov_shrinks_with_zoom(self):
        env = PTZCameraEnv(seed=0)
        env.reset()
        wide = env.fov_half_width()
        env.step(4)  # zoom_in
        assert env.fov_half_width() == wide / 2

    def test_zoom_bounds(self):
        env = PTZCameraEnv(seed=0)
        env.reset()
        for _ in range(10):
            env.step(4)
        assert env.zoom == env.MAX_ZOOM
        for _ in range(10):
            env.step(5)
        assert env.zoom == 0

    def test_pan_moves_camera_and_clips(self):
        env = PTZCameraEnv(seed=0)
        env.reset()
        for _ in range(20):
            env.step(0)  # pan_left
        assert env.cam[0] == 0.0

    def test_episode_terminates(self):
        env = PTZCameraEnv(episode_length=5, seed=0)
        env.reset()
        done = False
        steps = 0
        while not done:
            _, _, done = env.step(6)
            steps += 1
        assert steps == 5

    def test_reward_favours_zoomed_visible(self):
        env = PTZCameraEnv(seed=0, incident_speed=0.0)
        env.reset(incident_at=(0.5, 0.5))
        env.zoom = env.MAX_ZOOM
        _, reward_zoomed, _ = env.step(6)
        env.reset(incident_at=(0.5, 0.5))
        _, reward_wide, _ = env.step(6)
        assert reward_zoomed > reward_wide

    def test_reward_penalizes_losing_incident(self):
        env = PTZCameraEnv(seed=0, incident_speed=0.0)
        env.reset(incident_at=(0.95, 0.95))
        env.zoom = env.MAX_ZOOM  # tiny fov at center: incident lost
        _, reward, _ = env.step(6)
        assert reward == -0.2

    def test_invalid_action(self):
        env = PTZCameraEnv(seed=0)
        env.reset()
        with pytest.raises(ValueError):
            env.step(99)

    def test_validates_params(self):
        with pytest.raises(ValueError):
            PTZCameraEnv(episode_length=0)


class TestReplayBuffer:
    def test_push_and_sample(self):
        buffer = ReplayBuffer(capacity=10, seed=0)
        for i in range(10):
            buffer.push(np.zeros(3), i % 2, float(i), np.ones(3), False)
        states, actions, rewards, next_states, dones = buffer.sample(4)
        assert states.shape == (4, 3)
        assert len(actions) == 4

    def test_capacity_evicts_oldest(self):
        buffer = ReplayBuffer(capacity=3, seed=0)
        for i in range(5):
            buffer.push(np.array([i]), 0, 0.0, np.array([i]), False)
        assert len(buffer) == 3

    def test_sample_validates(self):
        buffer = ReplayBuffer(seed=0)
        with pytest.raises(ValueError):
            buffer.sample(1)
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)


class TestDQN:
    def test_epsilon_decays(self):
        agent = DQNAgent(5, 7, epsilon_decay_steps=10)
        assert agent.epsilon == 1.0
        agent._step = 10
        assert agent.epsilon == pytest.approx(0.05)

    def test_act_returns_valid_action(self):
        agent = DQNAgent(5, 7, seed=0)
        action = agent.act(np.zeros(5), greedy=True)
        assert 0 <= action < 7

    def test_learn_updates_network(self):
        agent = DQNAgent(5, 7, seed=0)
        buffer = ReplayBuffer(seed=0)
        rng = np.random.default_rng(0)
        for _ in range(40):
            buffer.push(rng.random(5), int(rng.integers(7)),
                        float(rng.random()), rng.random(5), False)
        before = [p.data.copy() for p in agent.q.parameters()]
        agent.learn(buffer.sample(16))
        changed = any(not np.allclose(b, p.data)
                      for b, p in zip(before, agent.q.parameters()))
        assert changed

    def test_target_sync(self):
        agent = DQNAgent(5, 7, target_sync_every=1, seed=0)
        buffer = ReplayBuffer(seed=0)
        rng = np.random.default_rng(0)
        for _ in range(40):
            buffer.push(rng.random(5), int(rng.integers(7)),
                        float(rng.random()), rng.random(5), False)
        agent.learn(buffer.sample(16))
        for q_param, t_param in zip(agent.q.parameters(),
                                    agent.target.parameters()):
            np.testing.assert_allclose(q_param.data, t_param.data)

    def test_validates_gamma(self):
        with pytest.raises(ValueError):
            DQNAgent(5, 7, gamma=1.0)

    def test_trained_agent_beats_baselines(self):
        env = PTZCameraEnv(episode_length=30, incident_speed=0.01, seed=0)
        agent = DQNAgent(env.observation_dim, env.num_actions,
                         hidden=24, lr=3e-3, epsilon_decay_steps=1200,
                         seed=0)
        agent.train(env, episodes=50, batch_size=32, warmup=100)
        eval_env = PTZCameraEnv(episode_length=30, incident_speed=0.01,
                                seed=42)
        trained = evaluate_policy(eval_env, agent.policy(), episodes=10)
        rand = evaluate_policy(eval_env, random_policy(env.num_actions),
                               episodes=10)
        static = evaluate_policy(eval_env, static_policy(), episodes=10)
        assert trained > rand
        assert trained > static
