"""Tests for AMBER-Alert vehicle search over indexed annotations."""

import pytest

from repro.apps.vehicle import AmberAlertSearch
from repro.nosql import Collection


def searchable(min_score=0.3):
    collection = Collection("sightings")
    search = AmberAlertSearch(collection, min_score=min_score)
    rows = [
        ("cam-a", 10.0, "2014 Ford Sedan", 0.9),
        ("cam-b", 12.0, "2014 Ford Sedan", 0.8),
        ("cam-a", 15.0, "2014 Ford Sedan", 0.7),
        ("cam-c", 11.0, "2013 Toyota SUV", 0.9),
        ("cam-a", 13.0, "2014 Ford Sedan", 0.1),  # below min_score
    ]
    for camera, time, label, score in rows:
        search.index_sighting(camera, time, label, score)
    return search


class TestSearch:
    def test_matches_description_case_insensitive(self):
        track = searchable().search("ford sedan")
        assert len(track.sightings) == 3
        assert all("Ford" in s.label for s in track.sightings)

    def test_sightings_time_ordered(self):
        track = searchable().search("Ford")
        times = [s.time for s in track.sightings]
        assert times == sorted(times)
        assert track.first_seen == 10.0
        assert track.last_seen == 15.0

    def test_low_confidence_filtered(self):
        track = searchable().search("Ford")
        assert all(s.score >= 0.3 for s in track.sightings)

    def test_time_range_filter(self):
        track = searchable().search("Ford", time_range=(11.0, 14.0))
        assert [s.time for s in track.sightings] == [12.0]

    def test_empty_time_range_rejected(self):
        with pytest.raises(ValueError):
            searchable().search("Ford", time_range=(14.0, 11.0))

    def test_no_match_returns_empty_track(self):
        track = searchable().search("Dodge Pickup")
        assert track.sightings == []
        assert track.first_seen is None

    def test_cameras_deduplicated_in_order(self):
        track = searchable().search("Ford")
        assert track.cameras == ["cam-a", "cam-b"]

    def test_regex_metacharacters_safe(self):
        search = searchable()
        search.index_sighting("cam-z", 1.0, "Weird (test) label", 0.9)
        track = search.search("(test)")
        assert len(track.sightings) == 1

    def test_validates_min_score(self):
        with pytest.raises(ValueError):
            AmberAlertSearch(Collection("c"), min_score=2.0)


class TestStakeout:
    def test_cameras_ranked_by_sightings(self):
        ranked = searchable().cameras_to_stake_out("Ford")
        assert ranked[0] == ("cam-a", 2)
        assert ranked[1] == ("cam-b", 1)

    def test_top_limits_results(self):
        assert len(searchable().cameras_to_stake_out("Ford", top=1)) == 1


class TestPipelineIntegration:
    def test_detection_annotations_searchable(self):
        # End-to-end: a trained detector's indexed annotations answer an
        # AMBER query with no schema translation.
        from repro.apps.vehicle import VehicleDetectionApp
        app = VehicleDetectionApp(num_classes=3, image_size=16, seed=0)
        app.train(num_scenes=24, epochs=12)
        report = app.evaluate(num_scenes=12, threshold=0.0)
        collection = Collection("annotations")
        search = AmberAlertSearch(collection, min_score=0.0)
        for annotation in report.annotations:
            search.index_sighting(
                camera_id="br-007",
                time=float(annotation["frame"]),
                label=annotation["label"],
                score=annotation["score"])
        if report.annotations:
            some_label = report.annotations[0]["label"]
            make = some_label.split()[1]  # e.g. "Ford"
            track = search.search(make)
            assert track.sightings
            assert track.cameras == ["br-007"]
