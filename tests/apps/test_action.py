"""Tests for the action-recognition app (Fig. 7/8)."""

import numpy as np
import pytest

from repro.apps.action import ActionEarlyExitModel, ActionRecognitionApp
from repro.nosql import Collection
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def trained_app():
    app = ActionRecognitionApp(image_size=16, frames=6, seed=0)
    app.train(clips_per_class=6, epochs=18, lr=0.01)
    return app


class TestModelShape:
    def test_forward_shapes(self):
        model = ActionEarlyExitModel(image_size=16, num_classes=5)
        clips = Tensor(np.zeros((3, 4, 1, 16, 16)))
        local, remote = model(clips)
        assert local.shape == (3, 5)
        assert remote.shape == (3, 5)

    def test_block1_feature_maps(self):
        model = ActionEarlyExitModel(image_size=16, num_classes=5,
                                     block1_channels=4)
        clips = Tensor(np.zeros((2, 3, 1, 16, 16)))
        features = model.block1_features(clips)
        assert features.shape == (6, 4, 8, 8)

    def test_feature_map_bytes_formula(self):
        model = ActionEarlyExitModel(image_size=16, block1_channels=4)
        assert model.feature_map_bytes(frames=6) == 6 * 4 * 8 * 8 * 4
        assert model.raw_clip_bytes(frames=6) == 6 * 16 * 16

    def test_shortcut_ablation_constructible(self):
        for shortcut in ("conv", "maxpool"):
            ActionEarlyExitModel(image_size=16, shortcut=shortcut)

    def test_conv_shortcut_has_more_parameters(self):
        conv = ActionEarlyExitModel(image_size=16, shortcut="conv")
        pool = ActionEarlyExitModel(image_size=16, shortcut="maxpool")
        assert conv.num_parameters() > pool.num_parameters()


class TestTraining:
    def test_losses_decrease(self):
        app = ActionRecognitionApp(image_size=16, frames=6, seed=1)
        losses = app.train(clips_per_class=4, epochs=5)
        assert losses[-1] < losses[0]

    def test_both_exits_learn(self, trained_app):
        accuracies = trained_app.exit_accuracies(clips_per_class=4)
        chance = 1.0 / trained_app.clips.num_classes
        assert accuracies["local"] > 1.5 * chance
        assert accuracies["remote"] > 1.5 * chance

    def test_remote_at_least_matches_local(self, trained_app):
        accuracies = trained_app.exit_accuracies(clips_per_class=6)
        assert accuracies["remote"] >= accuracies["local"] - 0.15


class TestEarlyExit:
    def test_huge_entropy_budget_all_local(self, trained_app):
        data, _ = trained_app.clips.dataset(2)
        results = trained_app.model.infer(Tensor(data), max_entropy=10.0)
        assert all(r["exit_index"] == 1 for r in results)
        assert all(r["shipped_bytes"] == 0 for r in results)

    def test_zero_entropy_budget_all_remote(self, trained_app):
        data, _ = trained_app.clips.dataset(2)
        results = trained_app.model.infer(Tensor(data), max_entropy=0.0)
        assert all(r["exit_index"] == 2 for r in results)
        assert all(r["shipped_bytes"] > 0 for r in results)

    def test_entropy_sweep_monotone(self, trained_app):
        rows = trained_app.entropy_sweep([0.0, 0.5, 1.0, 10.0],
                                         clips_per_class=3)
        fractions = [r["local_fraction"] for r in rows]
        assert fractions == sorted(fractions)
        assert fractions[0] == 0.0
        assert fractions[-1] == 1.0

    def test_results_contain_entropy(self, trained_app):
        data, _ = trained_app.clips.dataset(1)
        results = trained_app.model.infer(Tensor(data), max_entropy=0.5)
        assert all(r["entropy"] >= 0 for r in results)


class TestAlertIndexing:
    def test_suspicious_alerts_logged(self, trained_app):
        collection = Collection("alerts")
        data, _ = trained_app.clips.dataset(2)
        results = trained_app.model.infer(Tensor(data), max_entropy=0.5)
        suspicious = [3, 4]  # fighting, breaking_in
        alerts = trained_app.index_alerts(collection, results,
                                          camera_id="cam-7",
                                          suspicious_classes=suspicious)
        assert collection.count({"needs_review": True}) == alerts
        for doc in collection.find({}):
            assert doc["camera_id"] == "cam-7"
            assert doc["activity"] in ("fighting", "breaking_in")
