"""Cross-module integration tests: whole-paper scenarios.

Each test wires several substrates together exactly as the
cyberinfrastructure would and checks an end-to-end invariant — these are
the scenarios the unit suites cannot see.
"""

import numpy as np
import pytest

from repro.apps.action import ActionRecognitionApp
from repro.apps.social import SocialNetworkAnalysis
from repro.apps.vehicle import VehicleDetectionApp
from repro.cluster import FailureInjector, NetworkTopology, Tier
from repro.compute import SparkContext, StreamingContext
from repro.core import CyberInfrastructure, InfraConfig
from repro.data import LawEnforcementFeed, OpenCityData, SecureStore, WazeGenerator
from repro.dfs import DistributedFileSystem
from repro.nosql import Collection, HTable
from repro.nn.tensor import Tensor
from repro.streaming import MessageBus, RelationalDatabase, SqoopImporter
from repro.viz import heatmap_svg


class TestVideoPathEndToEnd:
    """Camera frames -> trained early-exit model -> fog stream -> index."""

    def test_trained_exits_drive_fog_simulation(self):
        app = VehicleDetectionApp(num_classes=3, image_size=16, seed=0)
        app.train(num_scenes=24, epochs=12)
        frames, _ = app.build_detection_dataset(20)
        results = app.model.infer(Tensor(frames), threshold=0.4)
        # Map the model's real per-frame exits onto pipeline stages:
        # exit 1 -> stage 1 (fog), exit 2 -> stage 2 (server).
        outcomes = [r["exit_index"] for r in results]
        topology = NetworkTopology.build_fog_hierarchy()
        edge = topology.machines(Tier.EDGE)[0].name
        pipeline = app.fog_pipeline(topology, edge)
        stats = pipeline.simulate_stream(
            num_items=len(outcomes), arrival_interval_s=0.05,
            exit_outcomes=outcomes)
        assert stats.completed == 20
        assert (stats.resolved_per_stage.get(1, 0)
                == sum(1 for r in results if r["exit_index"] == 1))

    def test_annotations_survive_storage_roundtrip(self):
        app = VehicleDetectionApp(num_classes=3, image_size=16, seed=1)
        app.train(num_scenes=16, epochs=10)
        report = app.evaluate(num_scenes=8, threshold=0.0)
        collection = Collection("annotations")
        app.index_annotations(collection, report)
        by_exit = collection.count({"exit": 1})
        assert by_exit == len(report.annotations)  # threshold 0: all local


class TestStorageUnderFailures:
    """DFS + HBase + failure injector: data survives datanode churn."""

    def test_htable_reads_survive_datanode_failures(self):
        dfs = DistributedFileSystem.with_datanodes(5, replication=3)
        table = HTable("events", dfs, families=("d",),
                       memstore_flush_cells=20)
        for index in range(60):
            table.put(f"row-{index:03d}", "d", "v", str(index).encode())
        table.flush()
        table._hfile_cache.clear()  # force DFS reads
        injector = FailureInjector(dfs.datanodes, seed=0)
        injector.fail_one()
        injector.fail_one()
        for index in range(0, 60, 7):
            assert (table.get_value(f"row-{index:03d}", "d", "v")
                    == str(index).encode())

    def test_re_replication_then_more_failures(self):
        dfs = DistributedFileSystem.with_datanodes(6, replication=2)
        payload = bytes(range(256)) * 10
        dfs.create("/survivor", payload)
        injector = FailureInjector(
            dfs.datanodes, seed=1,
            on_fail=lambda node: dfs.re_replicate())
        # Repeated single failures with healing in between: data persists.
        for _ in range(3):
            injector.fail_one()
            assert dfs.read("/survivor") == payload
            injector.recover_all()


class TestSqoopToSpark:
    """Legacy RDBMS -> Sqoop import -> DFS -> Spark analysis."""

    def test_imported_table_analyzable_with_rdd(self):
        db = RelationalDatabase("police")
        table = db.create_table("arrests", ["arrest_id", "offense", "year"])
        table.insert_many([
            {"arrest_id": i, "offense": "dui" if i % 3 else "theft",
             "year": 2017 + i % 2}
            for i in range(30)
        ])
        dfs = DistributedFileSystem.with_datanodes(3, replication=2)
        report = SqoopImporter(db, dfs).import_table(
            "arrests", "/imports/arrests", num_mappers=4)
        assert report.rows == 30
        # Spark over the imported CSV lines (skip per-file headers).
        context = SparkContext()
        counts = dict(
            context.text_file(dfs, "/imports/arrests")
            .filter(lambda line: not line.startswith("arrest_id"))
            .map(lambda line: (line.split(",")[1], 1))
            .reduceByKey(lambda a, b: a + b)
            .collect())
        assert counts["theft"] == 10
        assert counts["dui"] == 20


class TestLawEnforcementToInvestigation:
    """Monthly transfers -> secure store -> network -> investigation."""

    def test_full_investigative_chain(self):
        feed = LawEnforcementFeed(seed=0, num_persons=80)
        store = SecureStore(retention_days=90)
        for month in range(1, 4):
            store.upload(f"2018-{month:02d}",
                         feed.monthly_batch(month, incidents=20),
                         day=30 * (month - 1))
        # Retention at day 150: January (age 150) and February (age 120)
        # both exceed the 90-day window; only March survives.
        purged = store.purge(current_day=150)
        assert purged == 2
        assert store.upload_ids() == ["2018-03"]
        records = []
        for upload_id in store.upload_ids():
            records.extend(store.read(upload_id, authorized=True))
        analysis = SocialNetworkAnalysis.from_incidents(records)
        assert analysis.graph.num_vertices > 0
        person = sorted(analysis.graph.vertices)[0]
        report = analysis.field_size_report(person)
        assert report.second_degree >= report.first_degree > 0


class TestStreamingDashboard:
    """Bus -> micro-batch engine -> grid aggregation -> SVG heatmap."""

    def test_waze_stream_to_heatmap(self):
        bus = MessageBus()
        bus.create_topic("waze", partitions=4)
        reports = WazeGenerator(seed=0).reports(300)
        for report in reports:
            bus.produce("waze", report)
        context = StreamingContext(bus, batch_max_records=50)
        accidents = []
        (context.stream("waze")
         .filter(lambda r: r["type"] == "ACCIDENT")
         .foreach_batch(accidents.extend))
        consumed = context.run_until_idle()
        assert consumed == 300
        from repro.compute import GridAggregator
        grid = GridAggregator(rows=5, cols=5).aggregate(
            [r["location"] for r in accidents])
        svg = heatmap_svg(grid.tolist(), title="accidents")
        assert svg.count("<rect") == 25
        assert grid.sum() == len(accidents) > 0


class TestInfrastructureWithApplications:
    """The facade hosting a real application's outputs."""

    def test_action_alerts_into_infra_collection(self):
        infra = CyberInfrastructure(InfraConfig(
            edges_per_fog=2, fogs_per_server=1, servers=1,
            datanodes=3, dfs_replication=2))
        app = ActionRecognitionApp(image_size=16, frames=6, seed=0)
        app.train(clips_per_class=4, epochs=10)
        clips, _ = app.clips.dataset(clips_per_class=2)
        results = app.model.infer(Tensor(clips), max_entropy=0.9)
        alerts = app.index_alerts(
            infra.collection("alerts"), results,
            camera_id="br-001", suspicious_classes=[3, 4])
        assert infra.collection("alerts").count({"camera_id": "br-001"}) \
            == alerts

    def test_crime_records_through_htable_and_spark(self):
        infra = CyberInfrastructure(InfraConfig(
            edges_per_fog=2, fogs_per_server=1, servers=1,
            datanodes=3, dfs_replication=2))
        city = OpenCityData(seed=0)
        records = city.crime_incidents(days=10)
        table = infra.htable("crimes_wide", families=("info",))
        for record in records:
            table.put(f"incident-{record['incident_id']:06d}", "info",
                      "offense", record["offense"].encode())
        table.flush()
        # Scan the wide-column store into Spark for a count-by-offense.
        rows = [(values[("info", "offense")].decode(), 1)
                for _, values in table.scan()]
        counts = dict(infra.spark.parallelize(rows)
                      .reduceByKey(lambda a, b: a + b).collect())
        assert sum(counts.values()) == len(records)
