"""Capstone integration: the whole paper in one scenario.

Train the Fig. 5 early-exit detector, deploy its weight halves to device
and server tiers, stream two cameras against shared machine queues using
the *trained model's real exit decisions*, index the confident sightings,
and resolve an AMBER alert — touching nn, fog (placement, deployment,
contention), data, nosql and apps in a single flow.
"""

import numpy as np
import pytest

from repro.apps.vehicle import AmberAlertSearch, VehicleDetectionApp
from repro.cluster import NetworkTopology, Tier
from repro.fog import TwoTierDeployment, simulate_shared_streams
from repro.nosql import DocumentStore
from repro.nn.models.yolo import EarlyExitDetector
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def trained():
    app = VehicleDetectionApp(num_classes=3, image_size=16, seed=0)
    app.train(num_scenes=32, epochs=18)
    return app


def test_capstone_train_deploy_stream_search(trained):
    app = trained
    # --- deploy the trained weights to two tiers -------------------------
    deployment = TwoTierDeployment(
        lambda: EarlyExitDetector(1, app.image_size, app.num_classes,
                                  grid=app.grid,
                                  rng=np.random.default_rng(123)),
        local_modules=["stem", "local_branch", "local_head"],
        remote_modules=["remote_branch", "remote_head"])
    deployment.deploy(app.model)
    assert deployment.payload_bytes["device"] > 0

    # --- two cameras stream through shared fog/server queues -------------
    topology = NetworkTopology.build_fog_hierarchy(
        edges_per_fog=2, fogs_per_server=1, servers=1)
    edges = [m.name for m in topology.machines(Tier.EDGE)][:2]
    store = DocumentStore()
    search = AmberAlertSearch(store.collection("sightings"), min_score=0.2)

    streams = []
    per_camera_results = {}
    for camera_index, edge in enumerate(edges):
        frames, _ = app.build_detection_dataset(num_scenes=10)
        results = app.model.infer(Tensor(frames), threshold=0.5)
        per_camera_results[edge] = results
        pipeline = app.fog_pipeline(topology, edge)
        streams.append({
            "pipeline": pipeline,
            "num_items": len(results),
            "arrival_interval_s": 0.05,
            # drive the simulation with the model's REAL exit outcomes
            "exit_probabilities": None,
        })
    # simulate_shared_streams draws exits from probabilities; translate
    # the measured local fraction instead.
    for stream, edge in zip(streams, edges):
        results = per_camera_results[edge]
        local_fraction = (sum(1 for r in results if r["exit_index"] == 1)
                          / len(results))
        stream["exit_probabilities"] = {1: local_fraction}
    stats = simulate_shared_streams(streams, seed=0)
    assert all(s.completed == 10 for s in stats)
    server_busy = stats[0].machine_busy_s.get("server-0", 0.0)
    assert server_busy >= 0.0

    # --- index sightings and answer an AMBER alert ------------------------
    for camera_index, edge in enumerate(edges):
        for frame_index, result in enumerate(per_camera_results[edge]):
            for detection in result["detections"]:
                search.index_sighting(
                    camera_id=f"cam-{camera_index}",
                    time=60.0 * camera_index + frame_index,
                    label=app.catalog.label(detection.class_id),
                    score=detection.score)
    total = store.collection("sightings").count({})
    assert total > 0
    labels = store.collection("sightings").distinct("label")
    description = labels[0].split(" ", 1)[1]
    track = search.search(description)
    assert track.sightings
    times = [s.time for s in track.sightings]
    assert times == sorted(times)
    assert search.cameras_to_stake_out(description)
