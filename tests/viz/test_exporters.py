"""Tests for the visualization exporters."""

import json

import pytest

from repro.data import build_dotd_registry
from repro.viz import (
    bar_chart_svg,
    cameras_to_geojson,
    heatmap_svg,
    points_to_geojson,
    timeseries_json,
)


class TestGeoJson:
    def test_points_roundtrip(self):
        payload = points_to_geojson([
            {"lon": -91.1, "lat": 30.4, "kind": "crime"},
            {"lon": -90.0, "lat": 29.9, "kind": "traffic"},
        ])
        parsed = json.loads(payload)
        assert parsed["type"] == "FeatureCollection"
        assert len(parsed["features"]) == 2
        first = parsed["features"][0]
        assert first["geometry"]["coordinates"] == [-91.1, 30.4]
        assert first["properties"]["kind"] == "crime"

    def test_missing_coordinates_rejected(self):
        with pytest.raises(KeyError):
            points_to_geojson([{"lat": 30.0}])

    def test_property_selection(self):
        payload = points_to_geojson(
            [{"lon": 0, "lat": 0, "a": 1, "b": 2}], properties=["a"])
        props = json.loads(payload)["features"][0]["properties"]
        assert props == {"a": 1}

    def test_camera_registry_export(self):
        registry = build_dotd_registry(seed=0)
        parsed = json.loads(cameras_to_geojson(registry))
        assert len(parsed["features"]) == len(registry)
        assert parsed["features"][0]["properties"]["city"]


class TestTimeseries:
    def test_roundtrip(self):
        payload = timeseries_json({"crimes": [1, 2, 3], "calls": [4, 5, 6]})
        parsed = json.loads(payload)
        assert parsed["x"] == [0, 1, 2]
        assert parsed["series"]["crimes"] == [1.0, 2.0, 3.0]

    def test_validates(self):
        with pytest.raises(ValueError):
            timeseries_json({})
        with pytest.raises(ValueError):
            timeseries_json({"a": [1], "b": [1, 2]})


class TestSvg:
    def test_bar_chart_contains_bars_and_labels(self):
        svg = bar_chart_svg({"d1": 5.0, "d2": 10.0}, title="crimes")
        assert svg.startswith("<svg")
        assert svg.count("<rect") == 2
        assert "crimes" in svg
        assert "d1" in svg

    def test_bar_chart_validates(self):
        with pytest.raises(ValueError):
            bar_chart_svg({})

    def test_heatmap_cell_count(self):
        svg = heatmap_svg([[0.0, 1.0], [0.5, 0.2]])
        assert svg.count("<rect") == 4

    def test_heatmap_scales_colors(self):
        svg = heatmap_svg([[0.0, 1.0]])
        assert "rgb(255,255,255)" in svg  # zero cell is white
        assert "rgb(255,0,0)" in svg      # peak cell is red

    def test_heatmap_validates(self):
        with pytest.raises(ValueError):
            heatmap_svg([])
        with pytest.raises(ValueError):
            heatmap_svg([[1.0], [1.0, 2.0]])

    def test_heatmap_all_zero_safe(self):
        svg = heatmap_svg([[0.0, 0.0]])
        assert svg.count("<rect") == 2
