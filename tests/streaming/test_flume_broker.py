"""Flume ↔ broker integration: transaction commit is offset commit.

The at-least-once pipeline the issue demands, end to end: sink failure →
transaction rollback → broker redelivery on the next poll, with no loss
and no duplication in the committed output; plus backpressure propagating
from a bounded topic back through the Flume channel to the source.
"""

import pytest

from repro.streaming import (
    BackpressureStall,
    Broker,
    ChannelFullError,
    ConsumerChannel,
    FlumeAgent,
    FunctionSource,
    SinkError,
    broker_sink,
)


def make_broker(**topic_kwargs):
    broker = Broker()
    broker.create_topic("events", partitions=2, **topic_kwargs)
    return broker


class TestBrokerSink:
    def test_batches_land_on_topic(self):
        broker = make_broker()
        agent = FlumeAgent(FunctionSource(range(20)),
                           broker_sink(broker, "events"), batch_size=6)
        metrics = agent.run()
        assert metrics.events_delivered == 20
        values = [r.value for r in broker.consumer("g", ["events"]).drain()]
        assert sorted(values) == list(range(20))

    def test_backpressure_stall_becomes_sink_error(self):
        broker = make_broker(max_partition_records=1)
        sink = broker_sink(broker, "events")
        sink(["fits-a"])                  # one per partition still fits
        sink(["fits-b"])
        with pytest.raises(SinkError):
            sink(["overflow"])

    def test_backpressure_propagates_to_channel_and_source(self):
        """A full topic rolls batches back into the channel; when the
        channel fills, the source stops being pumped — no data is lost,
        it just waits upstream."""
        broker = make_broker(max_partition_records=2)
        source = FunctionSource(range(50))
        agent = FlumeAgent(source, broker_sink(broker, "events"),
                           batch_size=4)
        metrics = agent.run(max_cycles=30)
        # the bounded topic admitted at most its capacity...
        assert metrics.events_delivered <= 4
        # ...and everything else is retained: in the channel or unpumped
        assert metrics.events_delivered + len(agent.channel) \
            + (50 - source.emitted) == 50

    def test_stalled_pipeline_resumes_after_consumers_commit(self):
        broker = make_broker(max_partition_records=3)
        agent = FlumeAgent(FunctionSource(range(24)),
                           broker_sink(broker, "events"), batch_size=3)
        consumer = broker.consumer("g", ["events"])   # auto-commit
        received = []
        for _ in range(40):
            agent.pump_source(agent.batch_size)
            agent.pump_sink()
            received.extend(r.value for r in consumer.poll(6))
            if len(received) == 24:
                break
        assert sorted(received) == list(range(24))    # no loss, no dupes


class TestConsumerChannelAgent:
    def test_sink_failure_redelivers_without_loss_or_duplication(self):
        broker = make_broker()
        for i in range(20):
            broker.produce("events", i, key=f"k{i % 3}")
        committed = []
        failures = {"remaining": 4}

        def flaky_sink(events):
            if failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise SinkError("transient outage")
            committed.extend(events)

        consumer = broker.consumer("store", ["events"], auto_commit=False)
        agent = FlumeAgent.from_consumer(consumer, flaky_sink, batch_size=5)
        metrics = agent.run()
        assert sorted(committed) == list(range(20))   # exactly once
        assert metrics.batches_rolled_back == 4
        assert broker.lag("store", "events") == 0

    def test_uncommitted_work_is_replayed_by_next_member(self):
        """A member that processes but never commits leaves the committed
        output empty; a successor re-processes every record."""
        broker = make_broker()
        for i in range(8):
            broker.produce("events", i)

        def dead_sink(events):
            raise SinkError("permanently down")

        doomed = broker.consumer("store", ["events"], auto_commit=False)
        FlumeAgent.from_consumer(doomed, dead_sink, batch_size=4).run(
            max_cycles=10)
        doomed.close()
        assert broker.lag("store", "events") == 8     # nothing committed

        committed = []
        survivor = broker.consumer("store", ["events"], auto_commit=False)
        FlumeAgent.from_consumer(survivor, committed.extend,
                                 batch_size=4).run()
        assert sorted(committed) == list(range(8))

    def test_commit_advances_offsets_per_batch(self):
        broker = make_broker()
        for i in range(10):
            broker.produce("events", i)
        consumer = broker.consumer("store", ["events"], auto_commit=False)
        agent = FlumeAgent.from_consumer(consumer, lambda events: None,
                                         batch_size=4)
        agent.pump_sink()
        lag_after_one = broker.lag("store", "events")
        assert lag_after_one == 6          # first batch committed
        agent.run()
        assert broker.lag("store", "events") == 0

    def test_channel_requires_manual_commit_consumer(self):
        broker = make_broker()
        auto = broker.consumer("g", ["events"])
        with pytest.raises(ValueError):
            ConsumerChannel(auto)

    def test_channel_rejects_put(self):
        broker = make_broker()
        consumer = broker.consumer("g", ["events"], auto_commit=False)
        channel = ConsumerChannel(consumer)
        with pytest.raises(ChannelFullError):
            channel.put("event")

    def test_channel_length_is_group_lag(self):
        broker = make_broker()
        consumer = broker.consumer("g", ["events"], auto_commit=False)
        channel = ConsumerChannel(consumer)
        assert len(channel) == 0
        for i in range(7):
            broker.produce("events", i)
        assert len(channel) == 7
        transaction = channel.take_batch(7)
        transaction.commit()
        assert len(channel) == 0

    def test_rollback_then_take_redelivers_same_events(self):
        broker = make_broker()
        for i in range(6):
            broker.produce("events", i)
        consumer = broker.consumer("g", ["events"], auto_commit=False)
        channel = ConsumerChannel(consumer)
        first = channel.take_batch(6)
        first.rollback()
        second = channel.take_batch(6)
        assert sorted(second.events) == sorted(first.events)
        second.commit()
        assert channel.take_batch(6).events == []
