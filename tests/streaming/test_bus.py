"""Tests for the partitioned message bus."""

import pytest

from repro.streaming import BusError, MessageBus


def make_bus(partitions=4):
    bus = MessageBus()
    bus.create_topic("tweets", partitions=partitions)
    return bus


class TestTopics:
    def test_create_and_list(self):
        bus = make_bus()
        bus.create_topic("waze", partitions=2)
        assert bus.topic_names() == ["tweets", "waze"]
        assert bus.partition_count("waze") == 2

    def test_duplicate_topic_rejected(self):
        bus = make_bus()
        with pytest.raises(BusError):
            bus.create_topic("tweets")

    def test_invalid_partitions(self):
        bus = MessageBus()
        with pytest.raises(BusError):
            bus.create_topic("bad", partitions=0)

    def test_unknown_topic(self):
        with pytest.raises(BusError):
            make_bus().produce("ghost", {})


class TestProduce:
    def test_offsets_increase_within_partition(self):
        bus = make_bus(partitions=1)
        first = bus.produce("tweets", "a")
        second = bus.produce("tweets", "b")
        assert (first.offset, second.offset) == (0, 1)

    def test_same_key_same_partition(self):
        bus = make_bus()
        partitions = {bus.produce("tweets", i, key="user-42").partition
                      for i in range(10)}
        assert len(partitions) == 1

    def test_different_keys_spread(self):
        bus = make_bus()
        partitions = {bus.produce("tweets", i, key=f"user-{i}").partition
                      for i in range(50)}
        assert len(partitions) > 1

    def test_unkeyed_records_balance(self):
        bus = make_bus(partitions=4)
        for i in range(40):
            bus.produce("tweets", i)
        topic = bus._topic("tweets")
        sizes = [len(p) for p in topic.partitions]
        assert max(sizes) - min(sizes) <= 1

    def test_topic_size(self):
        bus = make_bus()
        for i in range(7):
            bus.produce("tweets", i)
        assert bus.topic_size("tweets") == 7


class TestConsume:
    def test_poll_returns_produced_records(self):
        bus = make_bus()
        for i in range(5):
            bus.produce("tweets", f"msg-{i}")
        consumer = bus.consumer("analytics", ["tweets"])
        values = {r.value for r in consumer.drain()}
        assert values == {f"msg-{i}" for i in range(5)}

    def test_poll_advances_offsets(self):
        bus = make_bus(partitions=1)
        for i in range(5):
            bus.produce("tweets", i)
        consumer = bus.consumer("g", ["tweets"])
        first = consumer.poll(3)
        second = consumer.poll(3)
        assert [r.value for r in first] == [0, 1, 2]
        assert [r.value for r in second] == [3, 4]

    def test_per_key_order_preserved(self):
        bus = make_bus()
        for i in range(20):
            bus.produce("tweets", i, key="cam-7")
        consumer = bus.consumer("g", ["tweets"])
        values = [r.value for r in consumer.drain()]
        assert values == list(range(20))

    def test_independent_groups_see_all_records(self):
        bus = make_bus()
        for i in range(10):
            bus.produce("tweets", i)
        a = bus.consumer("group-a", ["tweets"]).drain()
        b = bus.consumer("group-b", ["tweets"]).drain()
        assert len(a) == len(b) == 10

    def test_lag_tracks_unconsumed(self):
        bus = make_bus()
        for i in range(10):
            bus.produce("tweets", i)
        assert bus.lag("g", "tweets") == 10
        consumer = bus.consumer("g", ["tweets"])
        consumer.poll(4)
        assert bus.lag("g", "tweets") == 6
        consumer.drain()
        assert bus.lag("g", "tweets") == 0

    def test_reset_group_replays(self):
        bus = make_bus()
        for i in range(5):
            bus.produce("tweets", i)
        consumer = bus.consumer("g", ["tweets"])
        consumer.drain()
        bus.reset_group("g", "tweets")
        assert len(consumer.drain()) == 5

    def test_multi_topic_consumer(self):
        bus = make_bus()
        bus.create_topic("waze")
        bus.produce("tweets", "t")
        bus.produce("waze", "w")
        consumer = bus.consumer("g", ["tweets", "waze"])
        assert {r.value for r in consumer.drain()} == {"t", "w"}

    def test_consumer_validates(self):
        bus = make_bus()
        with pytest.raises(BusError):
            bus.consumer("g", [])
        with pytest.raises(BusError):
            bus.consumer("g", ["ghost"])
        with pytest.raises(BusError):
            bus.consumer("g", ["tweets"]).poll(0)

    def test_records_carry_metadata(self):
        bus = make_bus()
        record = bus.produce("tweets", {"text": "hi"}, key="u1")
        assert record.topic == "tweets"
        assert record.key == "u1"
        assert record.timestamp >= 0


class TestRoundRobin:
    def test_unkeyed_records_cycle_partitions_in_order(self):
        bus = make_bus(partitions=4)
        partitions = [bus.produce("tweets", i).partition for i in range(8)]
        assert partitions == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_keyed_records_do_not_advance_cursor(self):
        bus = make_bus(partitions=4)
        assert bus.produce("tweets", 0).partition == 0
        for i in range(5):
            bus.produce("tweets", i, key="user-42")
        # the keyed burst must not disturb the unkeyed rotation
        assert bus.produce("tweets", 99).partition == 1

    def test_cursor_is_per_topic(self):
        bus = make_bus(partitions=4)
        bus.create_topic("waze", partitions=4)
        assert bus.produce("tweets", "a").partition == 0
        assert bus.produce("waze", "b").partition == 0
        assert bus.produce("tweets", "c").partition == 1
