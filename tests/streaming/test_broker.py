"""Broker semantics: committed offsets, rebalancing, retention, backpressure.

The compat surface (produce/consume, round-robin, lag) is covered by
``test_bus.py``; this file exercises what makes the broker a broker.
"""

import numpy as np
import pytest

from repro.runtime import Runtime, using_runtime
from repro.streaming import (
    BackpressureError,
    BackpressureStall,
    Broker,
    BrokerError,
    MessageBus,
    RebalanceError,
)


class FakeClock:
    """Stands in for a DES environment: runtime.sim_clock only reads .now."""

    def __init__(self, now=0.0):
        self.now = now


def make_broker(partitions=4, **topic_kwargs):
    broker = Broker()
    broker.create_topic("events", partitions=partitions, **topic_kwargs)
    return broker


class TestCommitReplay:
    def test_manual_commit_holds_offsets(self):
        broker = make_broker(partitions=1)
        for i in range(6):
            broker.produce("events", i)
        consumer = broker.consumer("g", ["events"], auto_commit=False)
        assert [r.value for r in consumer.poll(3)] == [0, 1, 2]
        # nothing committed yet: the committed offset is still 0
        assert broker.committed_offset("g", "events", 0) == 0
        consumer.commit()
        assert broker.committed_offset("g", "events", 0) == 3

    def test_uncommitted_poll_is_redelivered_after_seek(self):
        broker = make_broker(partitions=1)
        for i in range(5):
            broker.produce("events", i)
        consumer = broker.consumer("g", ["events"], auto_commit=False)
        first = consumer.poll(3)
        consumer.seek_to_committed()     # the "crash": drop the in-flight read
        replay = consumer.poll(5)
        assert [r.value for r in replay][:3] == [r.value for r in first]
        assert [r.value for r in replay] == [0, 1, 2, 3, 4]

    def test_crashed_member_loses_nothing(self):
        """The at-least-once contract the old bus could not honour: a
        member that dies before committing leaves the records for the
        next member of the group."""
        broker = make_broker(partitions=1)
        for i in range(4):
            broker.produce("events", i)
        doomed = broker.consumer("g", ["events"], auto_commit=False)
        assert len(doomed.poll(4)) == 4
        doomed.close()                   # left without committing
        survivor = broker.consumer("g", ["events"], auto_commit=False)
        assert [r.value for r in survivor.poll(10)] == [0, 1, 2, 3]

    def test_auto_commit_preserves_old_semantics(self):
        broker = make_broker(partitions=1)
        for i in range(4):
            broker.produce("events", i)
        consumer = broker.consumer("g", ["events"])  # auto_commit default
        consumer.poll(2)
        assert broker.committed_offset("g", "events", 0) == 2

    def test_commit_reports_advanced_offsets(self):
        broker = make_broker(partitions=1)
        broker.produce("events", "a")
        consumer = broker.consumer("g", ["events"], auto_commit=False)
        consumer.poll(1)
        assert consumer.commit() == {("events", 0): 1}
        assert consumer.commit() == {}   # idempotent: nothing new

    def test_closed_consumer_rejected(self):
        broker = make_broker()
        consumer = broker.consumer("g", ["events"])
        consumer.close()
        with pytest.raises(BrokerError):
            consumer.poll()
        consumer.close()                 # idempotent


class TestRebalance:
    def test_single_member_owns_everything(self):
        broker = make_broker(partitions=4)
        consumer = broker.consumer("g", ["events"])
        assert consumer.assignment() == [("events", p) for p in range(4)]

    def test_join_redistributes_partitions(self):
        broker = make_broker(partitions=4)
        a = broker.consumer("g", ["events"])
        b = broker.consumer("g", ["events"])
        owned_a = {p for _, p in a.assignment()}
        owned_b = {p for _, p in b.assignment()}
        assert owned_a | owned_b == {0, 1, 2, 3}
        assert owned_a.isdisjoint(owned_b)

    def test_generation_bumps_on_membership_change(self):
        broker = make_broker()
        a = broker.consumer("g", ["events"])
        assert broker.group_generation("g") == 1
        b = broker.consumer("g", ["events"])
        assert broker.group_generation("g") == 2
        b.close()
        assert broker.group_generation("g") == 3
        assert broker.group_members("g") == [a.member_id]

    def test_stale_generation_commit_fenced(self):
        broker = make_broker(partitions=2)
        for i in range(4):
            broker.produce("events", i)
        a = broker.consumer("g", ["events"], auto_commit=False)
        a.poll(4)
        broker.consumer("g", ["events"], auto_commit=False)  # rebalance
        with pytest.raises(RebalanceError):
            a.commit()

    def test_rebalance_redelivers_uncommitted_records(self):
        broker = make_broker(partitions=2)
        for i in range(6):
            broker.produce("events", i)
        a = broker.consumer("g", ["events"], auto_commit=False)
        a.poll(6)                        # read everything, commit nothing
        b = broker.consumer("g", ["events"], auto_commit=False)
        with pytest.raises(RebalanceError):
            a.commit()
        # between the two members every record is redelivered
        redelivered = [r.value for r in a.poll(10)] \
            + [r.value for r in b.poll(10)]
        assert sorted(redelivered) == [0, 1, 2, 3, 4, 5]

    def test_group_splits_consumption_without_overlap(self):
        broker = make_broker(partitions=4)
        for i in range(20):
            broker.produce("events", i)
        a = broker.consumer("g", ["events"])
        b = broker.consumer("g", ["events"])
        got_a = [r.value for r in a.drain()]
        got_b = [r.value for r in b.drain()]
        assert sorted(got_a + got_b) == list(range(20))

    def test_member_leave_hands_partitions_over(self):
        broker = make_broker(partitions=2)
        a = broker.consumer("g", ["events"])
        b = broker.consumer("g", ["events"])
        b.close()
        assert {p for _, p in a.assignment()} == {0, 1}


class TestRetention:
    def test_size_retention_keeps_tail(self):
        broker = make_broker(partitions=1, retention_max_records=3)
        for i in range(10):
            broker.produce("events", i)
        assert broker.topic_size("events") == 3
        consumer = broker.consumer("g", ["events"])
        assert [r.value for r in consumer.drain()] == [7, 8, 9]
        # absolute offsets are preserved across eviction
        assert broker.begin_offset("events", 0) == 7
        assert broker.end_offset("events", 0) == 10

    def test_age_retention_on_sim_clock(self):
        clock = FakeClock(0.0)
        with using_runtime(Runtime(seed=0)) as runtime:
            with runtime.sim_clock(clock):
                broker = Broker(runtime=runtime)
                broker.create_topic("events", partitions=1,
                                    retention_max_age_s=10.0)
                broker.produce("events", "old")
                clock.now = 5.0
                broker.produce("events", "mid")
                clock.now = 12.0
                broker.produce("events", "new")
                assert broker.run_retention("events") == 1  # only "old" aged out
                values = [r.value
                          for r in broker.consumer("g", ["events"]).drain()]
        assert values == ["mid", "new"]

    def test_compaction_keeps_latest_per_key(self):
        broker = make_broker(partitions=1, compact=True)
        broker.produce("events", 1, key="a")
        broker.produce("events", 2, key="b")
        broker.produce("events", 3, key="a")
        removed = broker.compact("events")
        assert removed == 1
        records = broker.consumer("g", ["events"]).drain()
        assert [(r.key, r.value) for r in records] == [("b", 2), ("a", 3)]

    def test_tombstone_deletes_key(self):
        broker = make_broker(partitions=1, compact=True)
        broker.produce("events", 1, key="a")
        broker.produce("events", 2, key="b")
        broker.produce("events", None, key="a")  # tombstone
        broker.compact("events")
        records = broker.consumer("g", ["events"]).drain()
        assert [(r.key, r.value) for r in records] == [("b", 2)]

    def test_compaction_spares_unkeyed_records(self):
        broker = make_broker(partitions=1, compact=True)
        broker.produce("events", "unkeyed")
        broker.produce("events", 1, key="a")
        broker.produce("events", 2, key="a")
        broker.compact("events")
        values = [r.value for r in broker.consumer("g", ["events"]).drain()]
        assert values == ["unkeyed", 2]

    def test_committed_position_survives_compaction(self):
        broker = make_broker(partitions=1, compact=True)
        for i in range(4):
            broker.produce("events", i, key="k")
        consumer = broker.consumer("g", ["events"])
        consumer.poll(4)                 # committed through offset 4
        broker.compact("events")
        broker.produce("events", 9, key="k")
        assert [r.value for r in consumer.drain()] == [9]

    def test_run_retention_covers_all_topics(self):
        broker = Broker()
        broker.create_topic("a", partitions=1, retention_max_records=1)
        broker.create_topic("b", partitions=1)
        for i in range(5):
            broker.produce("a", i)
            broker.produce("b", i)
        broker.run_retention()
        assert broker.topic_size("a") == 1
        assert broker.topic_size("b") == 5

    def test_invalid_configs_rejected(self):
        broker = Broker()
        with pytest.raises(BrokerError):
            broker.create_topic("x", retention_max_records=0)
        with pytest.raises(BrokerError):
            broker.create_topic("x", retention_max_age_s=-1.0)
        with pytest.raises(BrokerError):
            broker.create_topic("x", backpressure="explode")


class TestBackpressure:
    def test_block_policy_raises_retryable_stall(self):
        broker = make_broker(partitions=1, max_partition_records=2)
        broker.produce("events", 0)
        broker.produce("events", 1)
        with pytest.raises(BackpressureStall):
            broker.produce("events", 2)
        # a stall is retryable backpressure, not a hard error class of its own
        assert issubclass(BackpressureStall, BackpressureError)

    def test_stalled_batch_is_all_or_nothing(self):
        broker = make_broker(partitions=1, max_partition_records=3)
        broker.produce("events", 0)
        with pytest.raises(BackpressureStall):
            broker.produce_batch("events", [1, 2, 3])
        # nothing from the failed batch landed, and a later fitting batch
        # is not disturbed by the earlier attempt
        assert broker.topic_size("events") == 1
        broker.produce_batch("events", [1, 2])
        values = [r.value for r in broker.consumer("g", ["events"]).drain()]
        assert values == [0, 1, 2]

    def test_produce_unblocks_after_consumers_commit(self):
        broker = make_broker(partitions=1, max_partition_records=2)
        broker.produce("events", 0)
        broker.produce("events", 1)
        consumer = broker.consumer("g", ["events"])
        consumer.poll(2)                 # auto-commits both records
        broker.produce("events", 2)      # head is consumed-evictable now
        assert broker.topic_size("events") <= 2
        assert [r.value for r in consumer.drain()] == [2]

    def test_drop_policy_discards_overflow(self):
        broker = make_broker(partitions=1, max_partition_records=2,
                             backpressure="drop")
        produced = broker.produce_batch("events", [0, 1, 2, 3])
        assert len(produced) == 2
        assert broker.produce("events", 9) is None
        values = [r.value for r in broker.consumer("g", ["events"]).drain()]
        assert values == [0, 1]

    def test_error_policy_raises_hard(self):
        broker = make_broker(partitions=1, max_partition_records=1,
                             backpressure="error")
        broker.produce("events", 0)
        with pytest.raises(BackpressureError) as err:
            broker.produce("events", 1)
        assert not isinstance(err.value, BackpressureStall)

    def test_unconsumed_records_are_never_evicted_by_capacity(self):
        broker = make_broker(partitions=1, max_partition_records=2)
        broker.produce("events", 0)
        broker.produce("events", 1)
        consumer = broker.consumer("g", ["events"], auto_commit=False)
        consumer.poll(2)                 # read but NOT committed
        with pytest.raises(BackpressureStall):
            broker.produce("events", 2)  # uncommitted head must survive


def keys_for_partitions(partitions):
    """One key per partition, found by probing a scratch broker (the key
    hash is stable across brokers with equal partition counts)."""
    probe = Broker()
    probe.create_topic("probe", partitions=partitions)
    found = {}
    i = 0
    while len(found) < partitions:
        key = f"k{i}"
        found.setdefault(probe.produce("probe", 0, key=key).partition, key)
        i += 1
    return found


class TestFairFetch:
    def test_hot_partition_cannot_starve_siblings(self):
        """Regression: the old bus always scanned from partition 0, so a
        bounded poll against a hot partition 0 starved 1..N forever."""
        keys = keys_for_partitions(2)
        broker = make_broker(partitions=2)
        consumer = broker.consumer("g", ["events"])
        broker.produce("events", "cold", key=keys[1])
        seen = []
        for round_no in range(10):
            # partition 0 refills faster than the poll budget drains it
            for i in range(4):
                broker.produce("events", f"hot-{round_no}-{i}", key=keys[0])
            seen.extend(r.value for r in consumer.poll(2))
        assert "cold" in seen

    def test_fetch_cursor_rotates_across_polls(self):
        broker = make_broker(partitions=4)
        for i in range(40):
            broker.produce("events", i)   # round-robin: 10 per partition
        consumer = broker.consumer("g", ["events"])
        first = consumer.poll(10)
        second = consumer.poll(10)
        # capped polls move on to the next partition instead of re-pinning
        # the scan to partition 0
        assert {r.partition for r in first} != {r.partition for r in second}

    def test_rotation_still_delivers_everything(self):
        broker = make_broker(partitions=4)
        for i in range(37):
            broker.produce("events", i)
        consumer = broker.consumer("g", ["events"])
        out = []
        while True:
            batch = consumer.poll(5)
            if not batch:
                break
            out.extend(r.value for r in batch)
        assert sorted(out) == list(range(37))


class TestZeroCopy:
    def test_large_arrays_ride_shared_memory(self):
        broker = Broker()
        broker.create_topic("frames", partitions=1, share_ndarrays=True)
        frame = np.arange(64 * 1024, dtype=np.float32)  # 256 KiB
        broker.produce("frames", frame)
        record = broker.consumer("g", ["frames"]).poll(1)[0]
        np.testing.assert_array_equal(record.value, frame)
        assert not record.value.flags.writeable     # zero-copy view
        assert broker.shm_bytes_staged() >= frame.nbytes

    def test_two_groups_share_one_staging(self):
        broker = Broker()
        broker.create_topic("frames", partitions=1, share_ndarrays=True)
        frame = np.ones((512, 512), dtype=np.float64)
        broker.produce("frames", frame)
        a = broker.consumer("ga", ["frames"]).poll(1)[0]
        b = broker.consumer("gb", ["frames"]).poll(1)[0]
        # both groups read the same shared segment, staged exactly once
        assert a.value.base is not None and b.value.base is not None
        assert broker.shm_bytes_staged() == frame.nbytes

    def test_small_payloads_skip_staging(self):
        broker = Broker()
        broker.create_topic("frames", partitions=1, share_ndarrays=True)
        small = np.arange(8)
        broker.produce("frames", small)
        record = broker.consumer("g", ["frames"]).poll(1)[0]
        np.testing.assert_array_equal(record.value, small)
        assert broker.shm_bytes_staged() == 0

    def test_eviction_unlinks_segments(self):
        broker = Broker()
        broker.create_topic("frames", partitions=1, share_ndarrays=True,
                            retention_max_records=1)
        for _ in range(3):
            broker.produce("frames", np.zeros(64 * 1024, dtype=np.float32))
        # only the retained record's segment is still tracked
        assert broker.tracked_segments() == 1
        broker.close()
        assert broker.tracked_segments() == 0


class TestTimestamps:
    def test_wall_mode_uses_logical_ticks(self):
        broker = make_broker(partitions=1)
        stamps = [broker.produce("events", i).timestamp for i in range(5)]
        assert stamps == [float(i) for i in range(5)]  # deterministic ticks

    def test_sim_mode_uses_sim_clock(self):
        clock = FakeClock(3.5)
        with using_runtime(Runtime(seed=0)) as runtime:
            with runtime.sim_clock(clock):
                broker = Broker(runtime=runtime)
                broker.create_topic("events", partitions=1)
                first = broker.produce("events", "a")
                clock.now = 7.25
                second = broker.produce("events", "b")
        assert first.timestamp == 3.5
        assert second.timestamp == 7.25

    def test_same_seed_runs_stamp_identically(self):
        def stamps():
            with using_runtime(Runtime(seed=0)):
                broker = make_broker(partitions=2)
                return [broker.produce("events", i).timestamp
                        for i in range(6)]

        assert stamps() == stamps()


class TestMessageBusCompat:
    def test_message_bus_is_a_broker(self):
        assert issubclass(MessageBus, Broker)

    def test_old_import_path_still_works(self):
        from repro.streaming.bus import MessageBus as OldBus
        assert OldBus is MessageBus
