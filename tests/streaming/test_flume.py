"""Tests for Flume-style agents: transactional channels, retry delivery."""

import pytest

from repro.dfs import DistributedFileSystem
from repro.nosql import Collection
from repro.streaming import (
    Channel,
    ChannelFullError,
    FlumeAgent,
    FunctionSource,
    MessageBus,
    SinkError,
    collection_sink,
    dfs_sink,
    topic_sink,
)


class TestFunctionSource:
    def test_iterable_source(self):
        source = FunctionSource([1, 2, 3])
        assert [source.next_event() for _ in range(4)] == [1, 2, 3, None]
        assert source.emitted == 3

    def test_callable_source(self):
        source = FunctionSource(lambda: iter("ab"))
        assert source.next_event() == "a"


class TestChannel:
    def test_put_take_fifo(self):
        channel = Channel()
        for i in range(5):
            channel.put(i)
        txn = channel.take_batch(3)
        assert txn.events == [0, 1, 2]
        txn.commit()
        assert len(channel) == 2

    def test_capacity_enforced(self):
        channel = Channel(capacity=2)
        channel.put(1)
        channel.put(2)
        assert channel.full
        with pytest.raises(ChannelFullError):
            channel.put(3)

    def test_rollback_restores_order(self):
        channel = Channel()
        for i in range(5):
            channel.put(i)
        txn = channel.take_batch(3)
        txn.rollback()
        txn2 = channel.take_batch(5)
        assert txn2.events == [0, 1, 2, 3, 4]

    def test_double_commit_rejected(self):
        channel = Channel()
        channel.put(1)
        txn = channel.take_batch(1)
        txn.commit()
        with pytest.raises(RuntimeError):
            txn.commit()
        with pytest.raises(RuntimeError):
            txn.rollback()

    def test_validates(self):
        with pytest.raises(ValueError):
            Channel(capacity=0)
        with pytest.raises(ValueError):
            Channel().take_batch(0)


class TestFlumeAgent:
    def test_delivers_everything(self):
        received = []
        agent = FlumeAgent(FunctionSource(range(25)), received.extend,
                           batch_size=4)
        metrics = agent.run()
        assert received == list(range(25))
        assert metrics.events_delivered == 25
        assert metrics.source_exhausted

    def test_at_least_once_under_sink_failures(self):
        received = []
        failures = {"remaining": 3}

        def flaky_sink(events):
            if failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise SinkError("transient outage")
            received.extend(events)

        agent = FlumeAgent(FunctionSource(range(20)), flaky_sink, batch_size=5)
        metrics = agent.run()
        assert sorted(received) == list(range(20))
        assert metrics.batches_rolled_back == 3
        assert metrics.events_delivered == 20

    def test_order_preserved_despite_failures(self):
        received = []
        fail_next = {"flag": True}

        def alternating_sink(events):
            if fail_next["flag"]:
                fail_next["flag"] = False
                raise SinkError("blip")
            fail_next["flag"] = True
            received.extend(events)

        agent = FlumeAgent(FunctionSource(range(12)), alternating_sink,
                           batch_size=3)
        agent.run()
        assert received == list(range(12))

    def test_max_cycles_bounds_permanent_failure(self):
        def dead_sink(events):
            raise SinkError("permanently down")

        agent = FlumeAgent(FunctionSource(range(10)), dead_sink, batch_size=5)
        metrics = agent.run(max_cycles=20)
        assert metrics.events_delivered == 0
        assert len(agent.channel) > 0  # data retained, not lost

    def test_validates_batch_size(self):
        with pytest.raises(ValueError):
            FlumeAgent(FunctionSource([]), lambda e: None, batch_size=0)


class TestSinks:
    def test_dfs_sink_writes_parts(self):
        dfs = DistributedFileSystem.with_datanodes(3, replication=2)
        agent = FlumeAgent(FunctionSource(range(10)),
                           dfs_sink(dfs, "/raw/tweets"), batch_size=4)
        agent.run()
        parts = dfs.listdir("/raw/tweets")
        assert len(parts) == 3  # 4 + 4 + 2
        assert dfs.read(parts[0]) == b"0\n1\n2\n3"

    def test_collection_sink_inserts(self):
        collection = Collection("tweets")
        events = [{"text": f"tweet {i}"} for i in range(7)]
        agent = FlumeAgent(FunctionSource(events),
                           collection_sink(collection), batch_size=3)
        agent.run()
        assert collection.count({}) == 7

    def test_topic_sink_produces_keyed(self):
        bus = MessageBus()
        bus.create_topic("tweets", partitions=4)
        events = [{"user": f"u{i % 2}", "text": str(i)} for i in range(8)]
        agent = FlumeAgent(
            FunctionSource(events),
            topic_sink(bus, "tweets", key_fn=lambda e: e["user"]),
            batch_size=4)
        agent.run()
        assert bus.topic_size("tweets") == 8
        consumer = bus.consumer("g", ["tweets"])
        u0 = [r.value["text"] for r in consumer.drain() if r.key == "u0"]
        assert u0 == ["0", "2", "4", "6"]  # per-key order preserved


class TestTransactionSemantics:
    def test_sink_failure_requeues_batch_at_channel_head(self):
        """A rolled-back batch sits at the head of the channel, in its
        original order, ahead of later arrivals."""
        def failing_sink(events):
            raise SinkError("down")

        agent = FlumeAgent(FunctionSource(range(10)), failing_sink,
                           batch_size=3)
        agent.pump_source(6)          # channel: [0..5]
        assert agent.pump_sink() == 0  # batch [0,1,2] fails, rolls back
        agent.pump_source(4)           # later arrivals behind the retry
        assert list(agent.channel._queue) == list(range(10))
        assert agent.metrics.batches_rolled_back == 1
        assert agent.metrics.events_delivered == 0

    def test_retry_delivers_exactly_once_counts(self):
        """At-least-once transport + rollback-before-commit means every
        event is delivered exactly once and the registry counters agree."""
        received = []
        failures = {"remaining": 4}

        def flaky_sink(events):
            if failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise SinkError("transient")
            received.extend(events)

        agent = FlumeAgent(FunctionSource(range(30)), flaky_sink,
                           batch_size=6)
        metrics = agent.run()
        assert received == list(range(30))          # no loss, no dupes
        assert metrics.events_received == 30
        assert metrics.events_delivered == 30
        assert metrics.batches_rolled_back == 4
        assert metrics.source_exhausted

    def test_rollback_spans_annotated(self):
        """Each delivery attempt leaves a streaming.flume.deliver span whose
        outcome label records commit vs rollback."""
        from repro.runtime import Runtime

        runtime = Runtime()
        calls = {"n": 0}

        def once_failing_sink(events):
            calls["n"] += 1
            if calls["n"] == 1:
                raise SinkError("blip")

        agent = FlumeAgent(FunctionSource(range(4)), once_failing_sink,
                           batch_size=4, runtime=runtime)
        agent.run()
        outcomes = [s.labels["outcome"]
                    for s in runtime.tracer.spans("streaming.flume.deliver")]
        assert outcomes == ["rolled_back", "committed"]
