"""Columnar record batches: the data-plane fast path stays semantics-free.

``produce_batch`` → ``poll_batch`` must be an *optimization*, never a
behaviour change: every column round-trips exactly what the per-record
``produce()``/``poll()`` path delivers, the logical tick clock advances
identically, backpressure and rotation follow the same rules, and the
normalized registry dump is byte-identical whichever path carried the
records — including when a :class:`RecordBatch` rides straight into
``TwoTierDeployment.serve_streams`` across worker counts.
"""

import json

import numpy as np
import pytest

from repro.fog import TwoTierDeployment
from repro.fog.policies import ScoreThresholdPolicy
from repro import nn
from repro.nn.models.earlyexit import EarlyExitNetwork
from repro.runtime import (
    ParallelExecutor,
    Runtime,
    fork_available,
    using_runtime,
)
from repro.runtime.parallel import deterministic_dump
from repro.streaming import (
    BackpressureError,
    BackpressureStall,
    Broker,
    BrokerError,
    RecordBatch,
)
from repro.streaming.broker import (
    VOLATILE_METRIC_PREFIXES,
    VOLATILE_SPAN_PREFIXES,
)

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform lacks fork")


def normalized_dump(runtime):
    return json.dumps(
        deterministic_dump(runtime,
                           drop_metric_prefixes=VOLATILE_METRIC_PREFIXES,
                           drop_span_prefixes=VOLATILE_SPAN_PREFIXES),
        sort_keys=True)


def make_broker(partitions=4, **topic_kwargs):
    broker = Broker()
    broker.create_topic("events", partitions=partitions, **topic_kwargs)
    return broker


def sample_batch():
    return RecordBatch("events", [0, 1, 0], [0, 0, 1],
                       ["a", None, "a"], [10, 11, 12], [0.0, 1.0, 2.0])


class TestRecordBatchShape:
    def test_empty_batch_is_falsy(self):
        batch = RecordBatch.empty("events")
        assert len(batch) == 0
        assert not batch
        assert batch.records() == []

    def test_record_materializes_row(self):
        record = sample_batch().record(1)
        assert (record.topic, record.partition, record.offset) == \
            ("events", 1, 0)
        assert record.key is None
        assert record.value == 11
        assert record.timestamp == 1.0

    def test_negative_index_and_bounds(self):
        batch = sample_batch()
        assert batch.record(-1).value == 12
        with pytest.raises(IndexError):
            batch.record(3)
        with pytest.raises(IndexError):
            batch.record(-4)

    def test_iteration_matches_records(self):
        batch = sample_batch()
        assert [r.value for r in batch] == [10, 11, 12]
        assert list(batch) == batch.records()

    def test_getitem_int_and_slice(self):
        batch = sample_batch()
        assert batch[0].value == 10
        tail = batch[1:]
        assert isinstance(tail, RecordBatch)
        assert tail.values == [11, 12]
        assert tail.offsets == [0, 1]

    def test_select_shares_payload_objects(self):
        payload = np.arange(4)
        batch = RecordBatch("t", [0], [0], [None], [payload], [0.0])
        assert batch.select([0]).values[0] is payload

    def test_groups_sorted_none_first(self):
        groups = sample_batch().groups()
        assert [key for key, _ in groups] == [None, "a"]
        by_key = dict(groups)
        assert by_key[None].values == [11]
        assert by_key["a"].values == [10, 12]    # arrival order kept

    def test_stacked_values_cached(self):
        batch = RecordBatch("t", [0, 0], [0, 1], [None, None],
                            [np.zeros(3), np.ones(3)], [0.0, 1.0])
        stacked = batch.stacked_values()
        assert stacked.shape == (2, 3)
        assert batch.stacked_values() is stacked

    def test_stacked_values_rejects_empty(self):
        with pytest.raises(BrokerError):
            RecordBatch.empty().stacked_values()

    def test_concat_same_topic_keeps_scalar(self):
        merged = RecordBatch.concat([sample_batch(), sample_batch()])
        assert merged.topics == "events"
        assert len(merged) == 6
        assert merged.topic_at(5) == "events"

    def test_concat_mixed_topics_expands_per_row(self):
        one = RecordBatch("a", [0], [0], [None], [1], [0.0])
        two = RecordBatch("b", [0], [0], [None], [2], [1.0])
        merged = RecordBatch.concat([one, two])
        assert merged.topics == ["a", "b"]
        assert merged.record(0).topic == "a"
        assert merged.record(1).topic == "b"

    def test_concat_drops_empties_and_passes_single_through(self):
        batch = sample_batch()
        assert RecordBatch.concat([RecordBatch.empty(), batch]) is batch
        assert len(RecordBatch.concat([])) == 0


class TestRoundTrip:
    def test_poll_batch_matches_per_record_poll(self):
        def consume(batch_path):
            broker = make_broker()
            broker.produce_batch("events", list(range(20)),
                                 key_fn=lambda v: f"k{v % 3}")
            consumer = broker.consumer("g", ["events"], auto_commit=False)
            rows = []
            while True:
                if batch_path:
                    got = consumer.poll_batch(7).records()
                else:
                    got = consumer.poll(7)
                if not got:
                    return rows
                rows.extend((r.topic, r.partition, r.offset, r.key,
                             r.value, r.timestamp) for r in got)
                consumer.commit()

        assert consume(True) == consume(False)

    def test_produce_batch_returns_columnar_batch(self):
        broker = make_broker(partitions=2)
        produced = broker.produce_batch("events", [5, 6, 7])
        assert isinstance(produced, RecordBatch)
        assert produced.topics == "events"
        assert produced.values == [5, 6, 7]
        assert len(produced) == 3

    def test_multi_topic_poll_batch_concats(self):
        broker = Broker()
        broker.create_topic("a", partitions=1)
        broker.create_topic("b", partitions=1)
        broker.produce("a", 1)
        broker.produce("b", 2)
        consumer = broker.consumer("g", ["a", "b"], auto_commit=False)
        batch = consumer.poll_batch(10)
        assert sorted(batch.values) == [1, 2]
        assert sorted(batch.topic_at(i) for i in range(len(batch))) == \
            ["a", "b"]

    def test_zero_copy_values_resolve_in_batch(self):
        broker = Broker()
        broker.create_topic("frames", partitions=1, share_ndarrays=True)
        frame = np.arange(64 * 1024, dtype=np.float32)   # 256 KiB
        broker.produce_batch("frames", [frame])
        batch = broker.consumer("g", ["frames"]).poll_batch(1)
        np.testing.assert_array_equal(batch.values[0], frame)
        assert not batch.values[0].flags.writeable        # shared view
        assert broker.shm_bytes_staged() >= frame.nbytes


class TestTimestampTicks:
    def test_batch_assigns_consecutive_ticks(self):
        broker = make_broker(partitions=2)
        produced = broker.produce_batch("events", list(range(5)))
        assert produced.timestamps == [float(i) for i in range(5)]

    def test_ticks_continue_across_single_and_batch(self):
        broker = make_broker(partitions=1)
        first = broker.produce("events", "a")
        produced = broker.produce_batch("events", ["b", "c"])
        last = broker.produce("events", "d")
        assert first.timestamp == 0.0
        assert produced.timestamps == [1.0, 2.0]
        assert last.timestamp == 3.0

    def test_dropped_records_consume_no_ticks(self):
        broker = make_broker(partitions=1, max_partition_records=2,
                             backpressure="drop")
        produced = broker.produce_batch("events", [0, 1, 2, 3])
        assert produced.timestamps == [0.0, 1.0]
        assert broker.produce("events", 9) is None        # still full
        record = broker.consumer("g", ["events"]).poll(2)[0]
        assert record.timestamp == 0.0


class TestSingleProduceParity:
    def test_rotation_matches_batch_planning(self):
        def partitions(batched):
            broker = make_broker(partitions=3)
            if batched:
                produced = broker.produce_batch("events", list(range(7)))
                second = broker.produce_batch("events", [7, 8])
                return list(produced.partitions) + list(second.partitions)
            singles = [broker.produce("events", v) for v in range(9)]
            return [r.partition for r in singles]

        assert partitions(True) == partitions(False)

    def test_drop_policy_advances_rotation(self):
        # a dropped unkeyed record still consumes its round-robin slot,
        # exactly as the batch planner does
        broker = make_broker(partitions=2, max_partition_records=1,
                             backpressure="drop")
        assert broker.produce("events", 0).partition == 0
        assert broker.produce("events", 1).partition == 1
        assert broker.produce("events", 2) is None        # slot 0, dropped
        consumer = broker.consumer("g", ["events"])
        consumer.drain()                                  # frees both heads
        assert broker.produce("events", 3).partition == 1  # rotation moved

    def test_stall_and_error_policies_raise(self):
        broker = make_broker(partitions=1, max_partition_records=1)
        broker.produce("events", 0)
        with pytest.raises(BackpressureStall):
            broker.produce("events", 1)
        hard = Broker()
        hard.create_topic("events", partitions=1, max_partition_records=1,
                          backpressure="error")
        hard.produce("events", 0)
        with pytest.raises(BackpressureError) as err:
            hard.produce("events", 1)
        assert not isinstance(err.value, BackpressureStall)

    def test_keyed_produce_matches_batch_partitioning(self):
        keys = [f"k{i}" for i in range(8)]
        probe = make_broker()
        planned = probe.produce_batch("events", list(range(8)),
                                      key_fn=lambda v: keys[v]).partitions
        broker = make_broker()
        singles = [broker.produce("events", v, key=keys[v]).partition
                   for v in range(8)]
        assert singles == list(planned)


class TestPositionSnapshot:
    def test_commit_capped_at_snapshot(self):
        broker = make_broker(partitions=1)
        broker.produce_batch("events", list(range(6)))
        consumer = broker.consumer("g", ["events"], auto_commit=False)
        consumer.poll_batch(3)
        snapshot = consumer.position_snapshot()
        consumer.poll_batch(3)            # read ahead past the snapshot
        consumer.commit(positions=snapshot)
        assert broker.committed_offset("g", "events", 0) == 3
        assert broker.lag("g", "events") == 3

    def test_snapshot_only_covers_assignment(self):
        broker = make_broker(partitions=2)
        broker.produce_batch("events", list(range(4)))
        consumer = broker.consumer("g", ["events"], auto_commit=False)
        consumer.poll_batch(4)
        snapshot = consumer.position_snapshot()
        assert set(snapshot) == {("events", 0), ("events", 1)}
        consumer.commit(positions=snapshot)
        assert broker.lag("g", "events") == 0


class TestDumpParity:
    def test_batch_and_record_paths_dump_identically(self):
        def run(batch_path):
            runtime = Runtime(seed=3)
            broker = Broker(runtime=runtime)
            broker.create_topic("events", partitions=4)
            values = list(range(30))
            if batch_path:
                broker.produce_batch("events", values)
            else:
                for value in values:
                    broker.produce("events", value)
            consumer = broker.consumer("g", ["events"], auto_commit=False)
            out = []
            while True:
                if batch_path:
                    got = list(consumer.poll_batch(7).values)
                else:
                    got = [r.value for r in consumer.poll(7)]
                if not got:
                    break
                out.extend(got)
                consumer.commit()
            assert sorted(out) == values
            return normalized_dump(runtime)

        assert run(True) == run(False)


def build_network(seed):
    rng = np.random.default_rng(seed)
    return EarlyExitNetwork(
        local_stage=nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng), nn.ReLU()),
        local_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(4, 3, rng=rng)),
        remote_stage=nn.Sequential(
            nn.Conv2d(4, 8, 3, padding=1, rng=rng), nn.ReLU()),
        remote_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(8, 3, rng=rng)))


def deployed(executor=None):
    deployment = TwoTierDeployment(
        lambda: build_network(seed=99),
        local_modules=["local_stage", "local_head"],
        remote_modules=["remote_stage", "remote_head"],
        executor=executor)
    deployment.deploy(build_network(seed=1))
    return deployment


def camera_batch(broker):
    frames = np.random.default_rng(11).normal(0.0, 1.0, (9, 1, 8, 8))
    broker.create_topic("frames", partitions=2)
    broker.produce_batch("frames", list(frames),
                         key_fn=lambda f: f"cam-{int(f[0, 0, 0] > 0)}")
    return broker.consumer("fog", ["frames"]).poll_batch(9)


class TestServeStreamsOverBatch:
    def test_batch_input_matches_stacked_lists(self):
        policy = ScoreThresholdPolicy(0.45)
        with using_runtime(Runtime(seed=7)) as rt:
            batch = camera_batch(Broker(runtime=rt))
            legacy = [group.stacked_values() for _, group in batch.groups()]
            from_batch = deployed().serve_streams(batch, policy)
            from_lists = deployed().serve_streams(legacy, policy)
        assert len(from_batch) == len(from_lists)
        for a, b in zip(from_batch, from_lists):
            assert np.array_equal(a.predictions, b.predictions)
            assert np.array_equal(a.exit_index, b.exit_index)

    @needs_fork
    def test_dump_invariant_across_worker_counts(self):
        policy = ScoreThresholdPolicy(0.45)
        dumps = {}
        for workers in (1, 2, 4):
            with using_runtime(Runtime(seed=7)) as rt:
                batch = camera_batch(Broker(runtime=rt))
                deployed(ParallelExecutor(workers=workers)).serve_streams(
                    batch, policy)
                dumps[workers] = normalized_dump(rt)
        assert dumps[1] == dumps[2] == dumps[4]
