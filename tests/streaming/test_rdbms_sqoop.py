"""Tests for the relational store and the Sqoop importer."""

import pytest

from repro.dfs import DistributedFileSystem
from repro.nosql import Collection
from repro.streaming import RDBMSError, RelationalDatabase, SqoopImporter, Table
from repro.streaming.sqoop import csv_to_rows


def crime_db(rows=10):
    db = RelationalDatabase("police")
    table = db.create_table("incidents", ["report_id", "offense", "district"])
    table.insert_many([
        {"report_id": i, "offense": "robbery" if i % 2 else "assault",
         "district": i % 3}
        for i in range(rows)
    ])
    return db


class TestTable:
    def test_insert_and_get(self):
        table = Table("t", ["id", "name"])
        table.insert({"id": 1, "name": "a"})
        assert table.get(1) == {"id": 1, "name": "a"}
        assert table.get(2) is None

    def test_schema_validation(self):
        table = Table("t", ["id", "name"])
        with pytest.raises(RDBMSError):
            table.insert({"id": 1})
        with pytest.raises(RDBMSError):
            table.insert({"id": 1, "name": "a", "extra": 1})

    def test_duplicate_primary_key(self):
        table = Table("t", ["id"])
        table.insert({"id": 1})
        with pytest.raises(RDBMSError):
            table.insert({"id": 1})

    def test_needs_columns(self):
        with pytest.raises(RDBMSError):
            Table("t", [])
        with pytest.raises(RDBMSError):
            Table("t", ["a", "a"])

    def test_select_with_predicate(self):
        db = crime_db()
        table = db.table("incidents")
        robberies = table.select(lambda r: r["offense"] == "robbery")
        assert len(robberies) == 5

    def test_delete(self):
        table = Table("t", ["id"])
        table.insert({"id": 1})
        assert table.delete(1)
        assert not table.delete(1)
        assert len(table) == 0

    def test_scan_sorted_order(self):
        table = Table("t", ["id"])
        for key in [3, 1, 2]:
            table.insert({"id": key})
        assert [r["id"] for r in table.scan_sorted()] == [1, 2, 3]

    def test_split_ranges_cover_all_rows(self):
        table = crime_db(10).table("incidents")
        splits = table.split_ranges(3)
        assert len(splits) == 3
        total = sum(len(s) for s in splits)
        assert total == 10
        # contiguous key ranges
        flattened = [r["report_id"] for s in splits for r in s]
        assert flattened == sorted(flattened)

    def test_split_more_than_rows(self):
        table = crime_db(2).table("incidents")
        splits = table.split_ranges(5)
        assert sum(len(s) for s in splits) == 2

    def test_split_validates(self):
        with pytest.raises(RDBMSError):
            crime_db().table("incidents").split_ranges(0)


class TestRelationalDatabase:
    def test_create_and_lookup(self):
        db = RelationalDatabase()
        db.create_table("a", ["id"])
        assert db.table_names() == ["a"]
        assert db.table("a").name == "a"

    def test_duplicate_table_rejected(self):
        db = RelationalDatabase()
        db.create_table("a", ["id"])
        with pytest.raises(RDBMSError):
            db.create_table("a", ["id"])

    def test_missing_table(self):
        with pytest.raises(RDBMSError):
            RelationalDatabase().table("ghost")


class TestSqoopImport:
    def test_import_to_dfs_roundtrip(self):
        db = crime_db(10)
        dfs = DistributedFileSystem.with_datanodes(3, replication=2)
        report = SqoopImporter(db, dfs).import_table(
            "incidents", "/imports/incidents", num_mappers=3)
        assert report.rows == 10
        assert len(report.files) == 3
        recovered = []
        for path in report.files:
            recovered.extend(csv_to_rows(dfs.read(path)))
        assert len(recovered) == 10
        assert {r["offense"] for r in recovered} == {"robbery", "assault"}

    def test_import_skips_empty_mappers(self):
        db = crime_db(2)
        dfs = DistributedFileSystem.with_datanodes(3, replication=2)
        report = SqoopImporter(db, dfs).import_table(
            "incidents", "/imports/small", num_mappers=8)
        assert report.rows == 2
        assert len(report.files) <= 2

    def test_import_to_collection(self):
        db = crime_db(6)
        collection = Collection("incidents")
        report = SqoopImporter(db).import_to_collection("incidents", collection)
        assert report.rows == 6
        assert collection.count({"offense": "robbery"}) == 3

    def test_import_without_dfs_rejected(self):
        with pytest.raises(ValueError):
            SqoopImporter(crime_db()).import_table("incidents", "/x")

    def test_csv_preserves_types_as_strings(self):
        db = crime_db(3)
        dfs = DistributedFileSystem.with_datanodes(3, replication=2)
        report = SqoopImporter(db, dfs).import_table(
            "incidents", "/imports/t", num_mappers=1)
        rows = csv_to_rows(dfs.read(report.files[0]))
        assert rows[0]["report_id"] == "0"  # CSV is untyped text
