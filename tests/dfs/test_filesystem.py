"""Tests for the HDFS-like distributed file system."""

import pytest

from repro.dfs import (
    DataNode,
    DFSError,
    DistributedFileSystem,
    FileNotFound,
    NameNode,
    NotEnoughReplicas,
)
from repro.dfs.filesystem import FileAlreadyExists


def make_dfs(nodes=4, replication=2, block_size=64):
    return DistributedFileSystem.with_datanodes(
        nodes, replication=replication, block_size=block_size)


class TestBasicFileOps:
    def test_create_and_read_roundtrip(self):
        dfs = make_dfs()
        payload = b"hello smart city" * 10
        dfs.create("/data/file1", payload)
        assert dfs.read("/data/file1") == payload

    def test_create_empty_file(self):
        dfs = make_dfs()
        dfs.create("/empty", b"")
        assert dfs.read("/empty") == b""

    def test_create_duplicate_rejected(self):
        dfs = make_dfs()
        dfs.create("/dup", b"a")
        with pytest.raises(FileAlreadyExists):
            dfs.create("/dup", b"b")

    def test_read_missing_file(self):
        with pytest.raises(FileNotFound):
            make_dfs().read("/ghost")

    def test_multi_block_file_split(self):
        dfs = make_dfs(block_size=10)
        payload = b"x" * 35
        status = dfs.create("/big", payload)
        assert len(status.block_ids) == 4  # 10+10+10+5
        assert dfs.read("/big") == payload

    def test_append_adds_blocks(self):
        dfs = make_dfs(block_size=10)
        dfs.create("/log", b"a" * 10)
        dfs.append("/log", b"b" * 15)
        assert dfs.read("/log") == b"a" * 10 + b"b" * 15
        assert dfs.stat("/log").size == 25

    def test_delete_frees_space(self):
        dfs = make_dfs()
        dfs.create("/tmp/file", b"z" * 100)
        assert dfs.total_bytes_stored() > 0
        dfs.delete("/tmp/file")
        assert dfs.total_bytes_stored() == 0
        assert not dfs.exists("/tmp/file")

    def test_listdir_prefix(self):
        dfs = make_dfs()
        dfs.create("/videos/a", b"1")
        dfs.create("/videos/b", b"2")
        dfs.create("/tweets/c", b"3")
        assert dfs.listdir("/videos") == ["/videos/a", "/videos/b"]

    def test_stat_reports_size(self):
        dfs = make_dfs()
        dfs.create("/f", b"abc")
        assert dfs.stat("/f").size == 3


class TestReplication:
    def test_each_block_replicated(self):
        dfs = make_dfs(nodes=4, replication=3)
        status = dfs.create("/r", b"data")
        for block_id in status.block_ids:
            assert len(dfs.namenode.replicas(block_id)) == 3

    def test_storage_cost_scales_with_replication(self):
        low = make_dfs(nodes=4, replication=1)
        high = make_dfs(nodes=4, replication=3)
        low.create("/f", b"x" * 100)
        high.create("/f", b"x" * 100)
        assert high.total_bytes_stored() == 3 * low.total_bytes_stored()

    def test_targets_balance_load(self):
        dfs = make_dfs(nodes=4, replication=1, block_size=10)
        for i in range(8):
            dfs.create(f"/f{i}", b"0123456789")
        counts = [n.block_count for n in dfs.datanodes]
        assert max(counts) - min(counts) <= 1

    def test_insufficient_nodes_rejected(self):
        with pytest.raises(ValueError):
            DistributedFileSystem.with_datanodes(2, replication=3)

    def test_create_fails_when_too_few_live_nodes(self):
        dfs = make_dfs(nodes=3, replication=3)
        dfs.fail_datanode("datanode-0")
        with pytest.raises(NotEnoughReplicas):
            dfs.create("/f", b"x")


class TestFailureRecovery:
    def test_read_survives_single_failure(self):
        dfs = make_dfs(nodes=4, replication=2)
        dfs.create("/f", b"important")
        victim = next(iter(dfs.namenode.replicas(dfs.stat("/f").block_ids[0])))
        dfs.fail_datanode(victim)
        assert dfs.read("/f") == b"important"

    def test_read_fails_when_all_replicas_dead(self):
        dfs = make_dfs(nodes=4, replication=2)
        dfs.create("/f", b"gone")
        for name in dfs.namenode.replicas(dfs.stat("/f").block_ids[0]):
            dfs.fail_datanode(name)
        with pytest.raises(NotEnoughReplicas):
            dfs.read("/f")

    def test_under_replicated_detected(self):
        dfs = make_dfs(nodes=4, replication=2)
        dfs.create("/f", b"x" * 100)
        assert dfs.under_replicated() == []
        victim = next(iter(dfs.namenode.replicas(dfs.stat("/f").block_ids[0])))
        dfs.fail_datanode(victim)
        assert len(dfs.under_replicated()) >= 1

    def test_re_replication_restores_health(self):
        dfs = make_dfs(nodes=5, replication=2, block_size=16)
        dfs.create("/f", b"y" * 64)
        victim = next(iter(dfs.namenode.replicas(dfs.stat("/f").block_ids[0])))
        dfs.fail_datanode(victim)
        created = dfs.re_replicate()
        assert created >= 1
        assert dfs.under_replicated() == []
        assert dfs.read("/f") == b"y" * 64

    def test_re_replication_skips_lost_blocks(self):
        dfs = make_dfs(nodes=4, replication=2)
        dfs.create("/f", b"z")
        for name in dfs.namenode.replicas(dfs.stat("/f").block_ids[0]):
            dfs.fail_datanode(name)
        assert dfs.re_replicate() == 0
        assert any(r.lost for r in dfs.under_replicated())

    def test_recovered_node_serves_again(self):
        dfs = make_dfs(nodes=4, replication=2)
        dfs.create("/f", b"back")
        block = dfs.stat("/f").block_ids[0]
        replicas = list(dfs.namenode.replicas(block))
        for name in replicas:
            dfs.fail_datanode(name)
        dfs.recover_datanode(replicas[0])
        assert dfs.read("/f") == b"back"


class TestDataNode:
    def test_store_respects_capacity(self):
        node = DataNode("n", capacity_bytes=10)
        node.store(1, b"12345")
        with pytest.raises(DFSError):
            node.store(2, b"123456789")

    def test_dead_node_rejects_io(self):
        node = DataNode("n")
        node.store(1, b"x")
        node.alive = False
        with pytest.raises(DFSError):
            node.read(1)
        with pytest.raises(DFSError):
            node.store(2, b"y")

    def test_read_missing_block(self):
        with pytest.raises(DFSError):
            DataNode("n").read(99)


class TestNameNode:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            NameNode(replication=0)
        with pytest.raises(ValueError):
            NameNode(block_size=0)

    def test_duplicate_datanode_rejected(self):
        namenode = NameNode()
        namenode.register_datanode(DataNode("a"))
        with pytest.raises(ValueError):
            namenode.register_datanode(DataNode("a"))

    def test_unknown_datanode_lookup(self):
        with pytest.raises(KeyError):
            NameNode().datanode("ghost")

    def test_choose_targets_excludes(self):
        dfs = make_dfs(nodes=3, replication=1)
        targets = dfs.namenode.choose_targets(2, exclude=["datanode-0"])
        assert all(t.name != "datanode-0" for t in targets)

    def test_block_ids_unique(self):
        namenode = NameNode()
        ids = {namenode.allocate_block() for _ in range(100)}
        assert len(ids) == 100
