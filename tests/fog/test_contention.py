"""Tests for multi-camera contention on shared fog/server machines."""

import pytest

from repro.cluster import NetworkTopology, Tier
from repro.fog import (
    FogPipeline,
    model_split_from_early_exit,
    place_bottom_up,
    simulate_shared_streams,
)


def build_two_cameras():
    """Two edge devices under the same fog node and server."""
    topology = NetworkTopology.build_fog_hierarchy(
        edges_per_fog=2, fogs_per_server=1, servers=1)
    edges = [m.name for m in topology.machines(Tier.EDGE)]
    stages = model_split_from_early_exit(
        local_flops=1e8, remote_flops=5e9,
        feature_bytes=4_096, input_bytes=50_000)
    pipelines = [FogPipeline(place_bottom_up(topology, stages, edge))
                 for edge in edges[:2]]
    return pipelines


class TestSharedStreams:
    def test_all_streams_complete(self):
        pipelines = build_two_cameras()
        stats = simulate_shared_streams([
            {"pipeline": pipelines[0], "num_items": 15,
             "arrival_interval_s": 0.05, "exit_probabilities": {1: 0.5}},
            {"pipeline": pipelines[1], "num_items": 10,
             "arrival_interval_s": 0.05, "exit_probabilities": {1: 0.5}},
        ], seed=0)
        assert [s.completed for s in stats] == [15, 10]

    def test_contention_raises_latency(self):
        # One camera alone vs the same camera sharing the server with a
        # second heavy stream: shared queues must cost latency.
        pipelines = build_two_cameras()
        spec = {"pipeline": pipelines[0], "num_items": 20,
                "arrival_interval_s": 0.01,
                "exit_probabilities": {1: 0.0}}
        alone = simulate_shared_streams([dict(spec)], seed=1)[0]
        contended = simulate_shared_streams([
            dict(spec),
            {"pipeline": pipelines[1], "num_items": 20,
             "arrival_interval_s": 0.01, "exit_probabilities": {1: 0.0}},
        ], seed=1)[0]
        assert contended.mean_latency_s > alone.mean_latency_s

    def test_early_exits_shield_neighbours(self):
        # If camera B resolves everything at the fog tier, camera A sees
        # less server queueing than when B escalates everything.
        pipelines = build_two_cameras()
        camera_a = {"pipeline": pipelines[0], "num_items": 20,
                    "arrival_interval_s": 0.01,
                    "exit_probabilities": {1: 0.0}}

        def camera_b(exit_probability):
            return {"pipeline": pipelines[1], "num_items": 20,
                    "arrival_interval_s": 0.01,
                    "exit_probabilities": {1: exit_probability}}

        # Note: with a shared fog node too, B exiting at the fog still
        # uses the fog machine, so compare server busy time directly.
        noisy = simulate_shared_streams(
            [dict(camera_a), camera_b(0.0)], seed=2)
        polite = simulate_shared_streams(
            [dict(camera_a), camera_b(1.0)], seed=2)
        server = "server-0"
        assert (polite[0].machine_busy_s[server]
                < noisy[0].machine_busy_s[server])
        assert polite[0].mean_latency_s <= noisy[0].mean_latency_s

    def test_per_stream_stats_isolated(self):
        pipelines = build_two_cameras()
        stats = simulate_shared_streams([
            {"pipeline": pipelines[0], "num_items": 5,
             "arrival_interval_s": 0.1, "exit_probabilities": {1: 1.0}},
            {"pipeline": pipelines[1], "num_items": 5,
             "arrival_interval_s": 0.1, "exit_probabilities": {1: 0.0}},
        ], seed=3)
        assert stats[0].resolved_per_stage == {1: 5}
        assert stats[1].resolved_per_stage == {2: 5}
        # stream 0 exits at the fog: no bytes into the server
        assert all("server" not in hop.split("->")[1]
                   for hop in stats[0].bytes_per_hop)

    def test_validates(self):
        with pytest.raises(ValueError):
            simulate_shared_streams([])
        pipelines = build_two_cameras()
        with pytest.raises(ValueError):
            simulate_shared_streams([
                {"pipeline": pipelines[0], "num_items": 0,
                 "arrival_interval_s": 0.1}])

    def test_deterministic_given_seed(self):
        pipelines = build_two_cameras()
        spec = [{"pipeline": pipelines[0], "num_items": 10,
                 "arrival_interval_s": 0.05,
                 "exit_probabilities": {1: 0.5}}]
        a = simulate_shared_streams([dict(spec[0])], seed=7)[0]
        b = simulate_shared_streams([dict(spec[0])], seed=7)[0]
        assert a.mean_latency_s == b.mean_latency_s
        assert a.resolved_per_stage == b.resolved_per_stage
