"""Activation codec + deployment fast-path knobs (plans, int8 edge, codec)."""

import numpy as np
import pytest

from repro import nn
from repro.fog import TwoTierDeployment
from repro.fog.codec import AutoencoderCodec
from repro.fog.policies import ScoreThresholdPolicy
from repro.nn.models.autoencoder import Autoencoder
from repro.nn.models.earlyexit import EarlyExitNetwork
from repro.runtime import Runtime, using_runtime

IMG = 12


def build_early_exit(rng):
    return EarlyExitNetwork(
        local_stage=nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng),
            nn.BatchNorm2d(4), nn.ReLU()),
        local_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(4, 3, rng=rng)),
        remote_stage=nn.Sequential(
            nn.Conv2d(4, 8, 3, stride=2, padding=1, rng=rng),
            nn.BatchNorm2d(8), nn.ReLU()),
        remote_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(8, 3, rng=rng)),
    )


def make_codec(rng, quantize_code=True):
    autoencoder = Autoencoder(4 * IMG * IMG, [32], 16,
                              rng=rng).astype(np.float32)
    return AutoencoderCodec(autoencoder, quantize_code=quantize_code)


class TestAutoencoderCodec:
    def test_transfer_shape_dtype_and_freshness(self):
        with using_runtime(Runtime(seed=0)):
            rng = np.random.default_rng(0)
            codec = make_codec(rng)
            feats = rng.normal(size=(5, 4, IMG, IMG)).astype(np.float32)
            out = codec.transfer(feats)
            assert out.shape == feats.shape
            assert out.dtype == feats.dtype
            assert not np.shares_memory(out, feats)

    def test_transfer_deterministic(self):
        with using_runtime(Runtime(seed=0)):
            rng = np.random.default_rng(0)
            codec = make_codec(rng)
            feats = rng.normal(size=(5, 4, IMG, IMG)).astype(np.float32)
            assert np.array_equal(codec.transfer(feats),
                                  codec.transfer(feats))

    def test_byte_accounting_int8_code(self):
        with using_runtime(Runtime(seed=0)) as rt:
            rng = np.random.default_rng(0)
            codec = make_codec(rng)
            feats = rng.normal(size=(5, 4, IMG, IMG)).astype(np.float32)
            codec.transfer(feats)
            assert codec.transfers == 1
            assert codec.bytes_raw == feats.nbytes
            assert codec.bytes_sent == 5 * 16 + 16  # int8 codes + qparams
            assert codec.bytes_saved == codec.bytes_raw - codec.bytes_sent
            names = set(rt.registry.names())
            assert "fog.deploy.offload_bytes_saved" in names
            assert "fog.deploy.offload_transfers" in names

    def test_float_code_accounting(self):
        with using_runtime(Runtime(seed=0)):
            rng = np.random.default_rng(0)
            codec = make_codec(rng, quantize_code=False)
            feats = rng.normal(size=(3, 4, IMG, IMG)).astype(np.float32)
            codec.transfer(feats)
            assert codec.bytes_sent == 3 * 16 * 4  # float32 codes

    def test_geometry_mismatch_rejected(self):
        with using_runtime(Runtime(seed=0)):
            rng = np.random.default_rng(0)
            codec = make_codec(rng)
            bad = rng.normal(size=(2, 4, IMG, IMG + 1)).astype(np.float32)
            with pytest.raises(ValueError, match="input_dim"):
                codec.transfer(bad)

    def test_fidelity_is_relative_error(self):
        with using_runtime(Runtime(seed=0)):
            rng = np.random.default_rng(0)
            codec = make_codec(rng)
            feats = rng.normal(size=(4, 4, IMG, IMG)).astype(np.float32)
            fidelity = codec.fidelity(feats)
            assert np.isfinite(fidelity) and fidelity >= 0.0


class TestDeploymentKnobs:
    def deployment(self, **kwargs):
        return TwoTierDeployment(
            lambda: build_early_exit(np.random.default_rng(99)),
            local_modules=["local_stage", "local_head"],
            remote_modules=["remote_stage", "remote_head"],
            fuse_inference=True, inference_dtype=np.float32, **kwargs)

    def trained(self):
        rng = np.random.default_rng(0)
        model = build_early_exit(rng)
        for param in model.parameters():
            param.data += rng.normal(0, 0.1, param.data.shape)
        return model

    def frames(self, n=10):
        return np.random.default_rng(1).normal(0, 1, (n, 1, IMG, IMG))

    def test_capture_plans_matches_eager_decisions(self):
        with using_runtime(Runtime(seed=0)):
            trained = self.trained()
            plain = self.deployment()
            planned = self.deployment(capture_plans=True)
            plain.deploy(trained)
            planned.deploy(trained)
            policy = ScoreThresholdPolicy(0.6)
            x = self.frames()
            a = plain.serve_batched(x, policy, batch_size=4)
            b = planned.serve_batched(x, policy, batch_size=4)
            assert np.array_equal(a.predictions, b.predictions)
            assert np.array_equal(a.exit_index, b.exit_index)
            assert np.array_equal(a.confidence, b.confidence)
            stats = planned.plan_stats()
            assert stats["local_stage"]["plans"] >= 1

    def test_plan_stats_empty_before_deploy(self):
        with using_runtime(Runtime(seed=0)):
            assert self.deployment(capture_plans=True).plan_stats() == {}

    def test_quantize_edge_requires_calibration(self):
        with pytest.raises(ValueError, match="calibration"):
            self.deployment(quantize_edge=True)

    def test_quantize_edge_reports_savings_and_serves(self):
        with using_runtime(Runtime(seed=0)) as rt:
            deployment = self.deployment(quantize_edge=True,
                                         calibration=self.frames(8))
            deployment.deploy(self.trained())
            report = deployment.edge_quantization
            assert report["layers"] == 2  # local conv + local head linear
            assert 0 < report["int8_bytes"] < report["float_bytes"]
            names = set(rt.registry.names())
            assert "fog.deploy.quantized_layers" in names
            assert "fog.deploy.edge_int8_bytes_saved" in names
            decisions = deployment.serve_batched(
                self.frames(), ScoreThresholdPolicy(0.6))
            assert decisions.predictions.shape == (10,)

    def test_activation_codec_wired_and_metered(self):
        with using_runtime(Runtime(seed=0)):
            rng = np.random.default_rng(5)
            codec = make_codec(rng)
            deployment = self.deployment(capture_plans=True,
                                         activation_codec=codec)
            deployment.deploy(self.trained())
            # threshold 0.99: everything escalates through the codec
            deployment.serve_batched(self.frames(), ScoreThresholdPolicy(0.99))
            assert codec.transfers >= 1
            assert codec.bytes_saved > 0

    def test_codec_changes_remote_logits_not_shapes(self):
        with using_runtime(Runtime(seed=0)):
            rng = np.random.default_rng(6)
            plain = self.deployment()
            coded = self.deployment(activation_codec=make_codec(rng))
            trained = self.trained()
            plain.deploy(trained)
            coded.deploy(trained)
            policy = ScoreThresholdPolicy(0.99)
            x = self.frames()
            a = plain.serve_batched(x, policy)
            b = coded.serve_batched(x, policy)
            # local exit identical; escalated logits differ (lossy wire)
            assert np.array_equal(a.local_logits, b.local_logits)
            assert a.remote_logits is not None
            assert a.remote_logits.shape == b.remote_logits.shape
            assert not np.array_equal(a.remote_logits, b.remote_logits)
