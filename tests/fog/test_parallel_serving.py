"""Fog fan-out through the parallel engine: decisions identical to serial."""

import numpy as np
import pytest

from repro import nn
from repro.fog import TwoTierDeployment
from repro.fog.policies import ScoreThresholdPolicy, run_policy_batched
from repro.nn.models.earlyexit import EarlyExitNetwork
from repro.runtime import ParallelExecutor, Runtime, fork_available, using_runtime

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform lacks fork")


def build_network(seed=0):
    rng = np.random.default_rng(seed)
    return EarlyExitNetwork(
        local_stage=nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng), nn.ReLU()),
        local_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(4, 3, rng=rng)),
        remote_stage=nn.Sequential(
            nn.Conv2d(4, 8, 3, padding=1, rng=rng), nn.ReLU()),
        remote_head=nn.Sequential(
            nn.GlobalAvgPool2d(), nn.Linear(8, 3, rng=rng)))


def frames(seed, n=12):
    return np.random.default_rng(seed).normal(0.0, 1.0, (n, 1, 8, 8))


def decisions_equal(a, b):
    return (np.array_equal(a.predictions, b.predictions)
            and np.array_equal(a.exit_index, b.exit_index)
            and np.array_equal(a.confidence, b.confidence)
            and np.array_equal(a.local_logits, b.local_logits))


class TestRunPolicyBatchedExecutor:
    @needs_fork
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_decisions_identical_to_serial(self, workers):
        policy = ScoreThresholdPolicy(0.55)
        with using_runtime(Runtime(seed=5)):
            model = build_network()
            x = frames(7, n=16)
            serial = run_policy_batched(model, x, policy, batch_size=4)
            fanned = run_policy_batched(
                model, x, policy, batch_size=4,
                executor=ParallelExecutor(workers=workers))
        assert decisions_equal(serial, fanned)
        assert set(serial.exit_index) == {1, 2}  # both tiers exercised

    def test_executorless_call_omits_kwarg(self):
        # Pre-engine models implement infer_batch without an executor
        # kwarg; the serial call must stay compatible with them.
        class LegacyModel:
            def infer_batch(self, x, threshold, confidence=None,
                            batch_size=None):
                return ("legacy", len(x))

        policy = ScoreThresholdPolicy(0.5)
        with using_runtime(Runtime()):
            out = run_policy_batched(LegacyModel(), np.zeros((3, 1)), policy)
        assert out == ("legacy", 3)


def make_deployment(executor=None):
    return TwoTierDeployment(
        lambda: build_network(seed=99),
        local_modules=["local_stage", "local_head"],
        remote_modules=["remote_stage", "remote_head"],
        executor=executor)


def deployed(executor=None):
    deployment = make_deployment(executor)
    deployment.deploy(build_network(seed=1))
    return deployment


class TestDeploymentServing:
    def test_served_model_matches_monolith(self):
        with using_runtime(Runtime()):
            trained = build_network(seed=1)
            deployment = deployed()
            policy = ScoreThresholdPolicy(0.45)
            x = frames(2)
            direct = run_policy_batched(trained, x, policy)
            served = deployment.serve_batched(x, policy)
        assert decisions_equal(direct, served)

    def test_served_model_requires_early_exit_layout(self):
        with using_runtime(Runtime()):
            deployment = make_deployment()
            with pytest.raises(RuntimeError):
                deployment.served_model()  # deploy() not run yet

    @needs_fork
    def test_serve_batched_parallel_matches_serial(self):
        policy = ScoreThresholdPolicy(0.45)
        x = frames(3, n=16)
        with using_runtime(Runtime()):
            serial = deployed().serve_batched(x, policy, batch_size=4)
        with using_runtime(Runtime()):
            fanned = deployed(ParallelExecutor(workers=4)).serve_batched(
                x, policy, batch_size=4)
        assert decisions_equal(serial, fanned)

    @needs_fork
    def test_serve_streams_parallel_matches_serial(self):
        policy = ScoreThresholdPolicy(0.45)
        streams = [frames(seed, n=6) for seed in range(5)]
        with using_runtime(Runtime()) as rt:
            serial = deployed().serve_streams(streams, policy)
            assert rt.registry.counter(
                "fog.deploy.streams_served").total() == 5
        with using_runtime(Runtime()):
            fanned = deployed(ParallelExecutor(workers=4)).serve_streams(
                streams, policy)
        assert len(serial) == len(fanned) == 5
        assert all(decisions_equal(a, b) for a, b in zip(serial, fanned))
