"""Tests for the fog-computing model: splits, placements, policies, pipeline."""

import numpy as np
import pytest

from repro.cluster import NetworkTopology, Tier
from repro.fog import (
    EntropyThresholdPolicy,
    FogPipeline,
    PlacementError,
    ScoreThresholdPolicy,
    Stage,
    TierPlacement,
    measured_exit_fractions,
    model_split_from_early_exit,
    place_all_on,
    place_bottom_up,
)
from repro.fog.policies import accuracy_offload_tradeoff
from repro.fog.split import bottleneck_latency


def topo():
    return NetworkTopology.build_fog_hierarchy(
        edges_per_fog=2, fogs_per_server=2, servers=1)


def two_stage_split():
    return model_split_from_early_exit(
        local_flops=1e8, remote_flops=5e9,
        feature_bytes=8_192, input_bytes=3 * 32 * 32,
        local_exit_flops=1e6)


class TestStage:
    def test_validates(self):
        with pytest.raises(ValueError):
            Stage("s", flops=-1, output_bytes=0)
        with pytest.raises(ValueError):
            Stage("s", flops=0, output_bytes=-1)

    def test_canonical_split_shape(self):
        stages = two_stage_split()
        assert [s.name for s in stages] == ["ingest", "local", "server"]
        assert stages[1].has_exit
        assert not stages[2].has_exit


class TestPlacement:
    def test_bottom_up_ascends_tiers(self):
        t = topo()
        edge = t.machines(Tier.EDGE)[0].name
        placement = place_bottom_up(t, two_stage_split(), start=edge)
        tiers = [t.machine(m).tier for m in placement.machines]
        assert tiers == [Tier.EDGE, Tier.FOG, Tier.SERVER]

    def test_extra_stages_pile_on_last_machine(self):
        t = topo()
        edge = t.machines(Tier.EDGE)[0].name
        stages = [Stage(f"s{i}", 1e6, 10) for i in range(6)]
        placement = place_bottom_up(t, stages, start=edge)
        assert placement.machines[-1] == placement.machines[-2] == "cloud-0"

    def test_all_on_server_baseline(self):
        t = topo()
        edge = t.machines(Tier.EDGE)[0].name
        placement = place_all_on(t, two_stage_split(), "server-0",
                                 ingest_from=edge)
        assert placement.machines == [edge, "server-0", "server-0"]

    def test_rejects_downhill_placement(self):
        t = topo()
        edge = t.machines(Tier.EDGE)[0].name
        with pytest.raises(PlacementError):
            TierPlacement(t, two_stage_split(),
                          ["server-0", "server-0", edge])

    def test_rejects_sideways_placement(self):
        t = NetworkTopology.build_fog_hierarchy(
            edges_per_fog=2, fogs_per_server=1, servers=1)
        edges = [m.name for m in t.machines(Tier.EDGE)]
        with pytest.raises(PlacementError):
            TierPlacement(t, [Stage("a", 1, 1), Stage("b", 1, 1)],
                          [edges[0], edges[1]])

    def test_rejects_length_mismatch(self):
        t = topo()
        with pytest.raises(PlacementError):
            TierPlacement(t, two_stage_split(), ["cloud-0"])

    def test_rejects_empty(self):
        with pytest.raises(PlacementError):
            TierPlacement(topo(), [], [])

    def test_describe_rows(self):
        t = topo()
        edge = t.machines(Tier.EDGE)[0].name
        placement = place_bottom_up(t, two_stage_split(), start=edge)
        rows = placement.describe()
        assert len(rows) == 3
        assert rows[0]["tier"] == "edge"
        assert rows[2]["compute_ms"] > 0

    def test_bottleneck_latency_positive(self):
        t = topo()
        edge = t.machines(Tier.EDGE)[0].name
        placement = place_bottom_up(t, two_stage_split(), start=edge)
        assert bottleneck_latency(placement) > 0


class TestPolicies:
    def test_score_policy_thresholding(self):
        policy = ScoreThresholdPolicy(0.9)
        logits = np.array([[10.0, -10.0], [0.1, 0.0]])
        mask = policy.should_exit(logits)
        assert mask.tolist() == [True, False]

    def test_score_policy_validates(self):
        with pytest.raises(ValueError):
            ScoreThresholdPolicy(1.5)

    def test_entropy_policy_thresholding(self):
        policy = EntropyThresholdPolicy(max_entropy=0.1)
        confident = np.array([[10.0, -10.0]])
        unsure = np.array([[0.0, 0.0]])
        assert policy.should_exit(confident)[0]
        assert not policy.should_exit(unsure)[0]

    def test_entropy_policy_validates(self):
        with pytest.raises(ValueError):
            EntropyThresholdPolicy(-0.1)

    def test_exit_fraction(self):
        policy = ScoreThresholdPolicy(0.9)
        logits = np.array([[10.0, -10.0], [0.0, 0.0], [8.0, -8.0]])
        assert policy.exit_fraction(logits) == pytest.approx(2 / 3)

    def test_measured_exit_fractions_monotone(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(0, 2, (200, 4))
        policies = [ScoreThresholdPolicy(t) for t in (0.3, 0.6, 0.9)]
        fractions = measured_exit_fractions(logits, policies)
        assert fractions == sorted(fractions, reverse=True)

    def test_tradeoff_rows(self):
        rng = np.random.default_rng(1)
        n = 100
        targets = rng.integers(0, 3, n)
        # remote logits: near-perfect; local: noisy
        remote = np.eye(3)[targets] * 10 + rng.normal(0, 0.1, (n, 3))
        local = np.eye(3)[targets] * 1 + rng.normal(0, 1.0, (n, 3))
        rows = accuracy_offload_tradeoff(
            local, remote, targets,
            [ScoreThresholdPolicy(t) for t in (0.0, 0.5, 0.9, 1.0)])
        # threshold 0: everything local (lower accuracy);
        # threshold 1: everything remote (highest accuracy)
        assert rows[0]["local_fraction"] == 1.0
        assert rows[-1]["accuracy"] >= rows[0]["accuracy"]


class TestFogPipelineAnalytic:
    def make(self):
        t = topo()
        edge = t.machines(Tier.EDGE)[0].name
        return FogPipeline(place_bottom_up(t, two_stage_split(), start=edge))

    def test_local_exit_cheaper_than_server(self):
        pipeline = self.make()
        local = pipeline.item_cost(resolved_stage=1)
        server = pipeline.item_cost(resolved_stage=2)
        assert local.total_s < server.total_s
        assert local.bytes_shipped < server.bytes_shipped

    def test_item_cost_network_only_for_crossed_hops(self):
        pipeline = self.make()
        ingest_only = pipeline.item_cost(resolved_stage=0)
        assert ingest_only.network_s == 0.0
        assert ingest_only.bytes_shipped == 0

    def test_item_cost_range_check(self):
        with pytest.raises(ValueError):
            self.make().item_cost(9)

    def test_mean_cost_interpolates(self):
        pipeline = self.make()
        all_local = pipeline.mean_cost({1: 1.0})
        all_server = pipeline.mean_cost({2: 1.0})
        mixed = pipeline.mean_cost({1: 0.5, 2: 0.5})
        assert all_local.total_s < mixed.total_s < all_server.total_s

    def test_mean_cost_validates_fractions(self):
        with pytest.raises(ValueError):
            self.make().mean_cost({1: 0.4, 2: 0.4})

    def test_offload_saves_bytes_into_server_tier(self):
        # The paper's claim: with early exits, only the small feature map
        # (and only for unconfident items) crosses into the server tier,
        # versus the raw frame for every item in the all-server baseline.
        t = topo()
        edge = t.machines(Tier.EDGE)[0].name
        stages = model_split_from_early_exit(
            local_flops=1e8, remote_flops=5e9,
            feature_bytes=2_000, input_bytes=100_000)
        fog = FogPipeline(place_bottom_up(t, stages, start=edge))
        allserver = FogPipeline(place_all_on(t, stages, "server-0",
                                             ingest_from=edge))

        def server_ingress(stats):
            return sum(size for hop, size in stats.bytes_per_hop.items()
                       if hop.endswith("server-0"))

        fog_stats = fog.simulate_stream(
            num_items=20, arrival_interval_s=0.5,
            exit_probabilities={1: 0.7}, seed=3)
        server_stats = allserver.simulate_stream(
            num_items=20, arrival_interval_s=0.5,
            exit_probabilities={1: 0.0}, seed=3)
        assert server_ingress(fog_stats) < server_ingress(server_stats)


class TestFogPipelineStream:
    def make(self):
        t = topo()
        edge = t.machines(Tier.EDGE)[0].name
        return FogPipeline(place_bottom_up(t, two_stage_split(), start=edge))

    def test_completes_all_items(self):
        stats = self.make().simulate_stream(
            num_items=20, arrival_interval_s=0.5,
            exit_probabilities={1: 0.5}, seed=0)
        assert stats.completed == 20

    def test_exit_probability_one_resolves_all_locally(self):
        stats = self.make().simulate_stream(
            num_items=10, arrival_interval_s=0.5,
            exit_probabilities={1: 1.0})
        assert stats.resolved_fraction(1) == 1.0
        assert stats.bytes_per_hop == {} or all(
            "server" not in hop for hop in stats.bytes_per_hop)

    def test_exit_probability_zero_resolves_all_remotely(self):
        stats = self.make().simulate_stream(
            num_items=10, arrival_interval_s=0.5,
            exit_probabilities={1: 0.0})
        assert stats.resolved_fraction(2) == 1.0

    def test_explicit_outcomes_override(self):
        stats = self.make().simulate_stream(
            num_items=4, arrival_interval_s=0.1,
            exit_outcomes=[1, 1, 2, 2])
        assert stats.resolved_per_stage == {1: 2, 2: 2}

    def test_outcomes_validated(self):
        pipeline = self.make()
        with pytest.raises(ValueError):
            pipeline.simulate_stream(3, 0.1, exit_outcomes=[1, 2])
        with pytest.raises(ValueError):
            pipeline.simulate_stream(2, 0.1, exit_outcomes=[1, 9])
        with pytest.raises(ValueError):
            pipeline.simulate_stream(0, 0.1)

    def test_queueing_raises_latency_under_load(self):
        pipeline = self.make()
        relaxed = pipeline.simulate_stream(
            num_items=30, arrival_interval_s=1.0,
            exit_probabilities={1: 0.0}, seed=1)
        slammed = pipeline.simulate_stream(
            num_items=30, arrival_interval_s=0.001,
            exit_probabilities={1: 0.0}, seed=1)
        assert slammed.mean_latency_s > relaxed.mean_latency_s

    def test_early_exits_relieve_server_queue(self):
        pipeline = self.make()
        no_exit = pipeline.simulate_stream(
            num_items=30, arrival_interval_s=0.01,
            exit_probabilities={1: 0.0}, seed=2)
        mostly_exit = pipeline.simulate_stream(
            num_items=30, arrival_interval_s=0.01,
            exit_probabilities={1: 0.9}, seed=2)
        assert mostly_exit.mean_latency_s < no_exit.mean_latency_s
        assert (mostly_exit.machine_busy_s["server-0"]
                < no_exit.machine_busy_s["server-0"])

    def test_bytes_accounted_per_hop(self):
        stats = self.make().simulate_stream(
            num_items=10, arrival_interval_s=0.5,
            exit_probabilities={1: 0.0})
        assert any("fog" in hop and "server" in hop
                   for hop in stats.bytes_per_hop)
        total = sum(stats.bytes_per_hop.values())
        # 10 items * (input_bytes + feature_bytes)
        assert total == 10 * (3 * 32 * 32 + 8_192)

    def test_deterministic_given_seed(self):
        pipeline = self.make()
        a = pipeline.simulate_stream(20, 0.1, exit_probabilities={1: 0.5}, seed=5)
        b = pipeline.simulate_stream(20, 0.1, exit_probabilities={1: 0.5}, seed=5)
        assert a.resolved_per_stage == b.resolved_per_stage
        assert a.mean_latency_s == b.mean_latency_s


class TestMaterializeStages:
    def make_chain(self):
        from repro import nn
        rng = np.random.default_rng(0)
        local = nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng),
            nn.BatchNorm2d(4),
            nn.ReLU(),
        )
        remote = nn.Sequential(
            nn.Conv2d(4, 8, 3, stride=2, padding=1, rng=rng),
            nn.BatchNorm2d(8),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Linear(8, 3, rng=rng),
        )
        head = nn.Sequential(nn.GlobalAvgPool2d(), nn.Linear(4, 3, rng=rng))
        return local, remote, head

    def test_stages_from_real_modules(self):
        from repro.fog import materialize_stages
        local, remote, head = self.make_chain()
        stages = materialize_stages(
            [("local", local), ("remote", remote)],
            input_shape=(1, 8, 8),
            exit_heads={"local": head})
        assert [s.name for s in stages] == ["local", "remote"]
        assert stages[0].has_exit and not stages[1].has_exit
        assert stages[0].exit_head_flops > 0
        # local output is (4, 8, 8) fp32 -> 4*8*8*4 bytes shipped upstream.
        assert stages[0].output_bytes == 4 * 8 * 8 * 4
        assert stages[1].output_bytes == 0
        assert stages[0].flops > 0 and stages[1].flops > 0

    def test_fused_stages_cost_less(self):
        from repro.fog import materialize_stages
        local, remote, head = self.make_chain()
        chain = [("local", local), ("remote", remote)]
        plain = materialize_stages(chain, input_shape=(1, 8, 8))
        fused = materialize_stages(chain, input_shape=(1, 8, 8), fuse=True)
        # BN folds away, so every fused stage is strictly cheaper.
        assert fused[0].flops < plain[0].flops
        assert fused[1].flops < plain[1].flops
        # Activation geometry is unchanged by folding.
        assert fused[0].output_bytes == plain[0].output_bytes

    def test_stages_are_placeable(self):
        from repro.fog import materialize_stages
        local, remote, _ = self.make_chain()
        stages = materialize_stages(
            [("local", local), ("remote", remote)], input_shape=(1, 8, 8))
        placement = place_bottom_up(topo(), stages, "edge-0-0-0")
        assert bottleneck_latency(placement) > 0


class TestRunPolicyBatched:
    def make_model(self):
        from repro import nn
        from repro.nn.models.earlyexit import EarlyExitNetwork
        rng = np.random.default_rng(1)
        return EarlyExitNetwork(
            local_stage=nn.Sequential(
                nn.Conv2d(1, 4, 3, padding=1, rng=rng), nn.ReLU()),
            local_head=nn.Sequential(
                nn.GlobalAvgPool2d(), nn.Linear(4, 3, rng=rng)),
            remote_stage=nn.Sequential(
                nn.Conv2d(4, 8, 3, stride=2, padding=1, rng=rng), nn.ReLU()),
            remote_head=nn.Sequential(
                nn.GlobalAvgPool2d(), nn.Linear(8, 3, rng=rng)))

    def test_score_policy_drives_batched_path(self):
        from repro.fog import ScoreThresholdPolicy, run_policy_batched
        model = self.make_model()
        x = np.random.default_rng(2).normal(0, 1, (6, 1, 8, 8))
        policy = ScoreThresholdPolicy(0.5)
        batch = run_policy_batched(model, x, policy, batch_size=2)
        assert len(batch) == 6
        direct = model.infer_batch(x, 0.5)
        np.testing.assert_array_equal(batch.predictions, direct.predictions)
        np.testing.assert_array_equal(batch.exit_index, direct.exit_index)

    def test_entropy_policy_matches_policy_mask(self):
        from repro.fog import EntropyThresholdPolicy, run_policy_batched
        model = self.make_model()
        x = np.random.default_rng(3).normal(0, 1, (6, 1, 8, 8))
        policy = EntropyThresholdPolicy(max_entropy=1.0)
        batch = run_policy_batched(model, x, policy)
        np.testing.assert_array_equal(
            batch.local_mask, policy.should_exit(batch.local_logits))
