"""Fault-tolerant streaming: failover, degradation, drops, determinism."""

import json

import pytest

from repro.cluster import NetworkTopology
from repro.fog import (
    FailureSpec,
    FaultPolicy,
    FogPipeline,
    model_split_from_early_exit,
    place_bottom_up,
)
from repro.runtime import Runtime


def topo():
    return NetworkTopology.build_fog_hierarchy(
        edges_per_fog=2, fogs_per_server=2, servers=1)


def build_pipeline(topology):
    stages = model_split_from_early_exit(
        local_flops=2e8, remote_flops=8e9,
        feature_bytes=8_192, input_bytes=640 * 480 * 3,
        local_exit_flops=1e6, remote_exit_flops=1e6)
    return FogPipeline(place_bottom_up(topology, stages, "edge-0-0-0"))


def run_stream(failures=None, fault_policy=None, num_items=30, seed=0,
               interval=0.05, exit_probabilities=None):
    runtime = Runtime(seed=0)
    pipeline = build_pipeline(topo())
    stats = pipeline.simulate_stream(
        num_items, interval,
        exit_probabilities=({1: 0.5} if exit_probabilities is None
                            else exit_probabilities),
        seed=seed, runtime=runtime, failures=failures,
        fault_policy=fault_policy)
    return runtime, stats


class TestFaultPolicy:
    def test_backoff_doubles(self):
        policy = FaultPolicy(backoff_base_s=0.01)
        assert policy.backoff_s(0) == pytest.approx(0.01)
        assert policy.backoff_s(1) == pytest.approx(0.02)
        assert policy.backoff_s(2) == pytest.approx(0.04)

    def test_validates(self):
        with pytest.raises(ValueError):
            FaultPolicy(stage_timeout_s=0.0)
        with pytest.raises(ValueError):
            FaultPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            FaultPolicy(backoff_base_s=-1.0)


class TestHealthyRuns:
    def test_no_failures_means_no_fault_telemetry(self):
        _, stats = run_stream(failures=None)
        assert stats.completed == 30
        assert stats.degraded == stats.dropped == 0
        assert stats.retries == stats.failovers == 0
        assert stats.accounted == 30

    def test_failure_spec_with_no_time_to_fire_changes_nothing(self):
        healthy = run_stream(failures=None)[1]
        # Horizon 0 draws nothing: same traffic, failure machinery armed.
        inert = run_stream(failures=FailureSpec(
            max_failures=None, horizon_s=1e-9,
            mean_time_to_failure_s=10.0))[1]
        assert inert.completed == healthy.completed
        assert inert.mean_latency_s == pytest.approx(healthy.mean_latency_s)
        assert inert.degraded == inert.dropped == 0


class TestFailover:
    def test_dead_fog_fails_over_to_sibling(self):
        # The placed fog node dies almost immediately and stays dead;
        # items re-ship their activation to the sibling fog node.
        failures = FailureSpec(
            seed=1, targets=["fog-0-0"], max_failures=1,
            mean_time_to_failure_s=0.01)
        _, stats = run_stream(failures=failures)
        assert stats.failovers > 0
        assert stats.dropped == 0
        assert stats.accounted == 30
        # Re-shipped activations show up as a hop toward the sibling.
        sibling_hops = [hop for hop in stats.bytes_per_hop
                        if hop.endswith("->fog-0-1")]
        assert sibling_hops

    def test_dead_server_degrades_to_local_exit(self):
        # servers=1, so a dead analysis server has no sibling: items that
        # wanted the server stage resolve at the fog exit instead.
        failures = FailureSpec(
            seed=1, targets=["server-0"], max_failures=1,
            mean_time_to_failure_s=0.01)
        _, stats = run_stream(failures=failures,
                              exit_probabilities={1: 0.0})
        assert stats.degraded > 0
        assert stats.dropped == 0
        assert stats.accounted == 30

    def test_dead_edge_tier_drops_unstarted_items(self):
        # Failover is tier-wide, so every edge device must die early;
        # later arrivals cannot run the ingest stage and have no completed
        # exit to fall back on, so they are dropped — but still accounted.
        failures = FailureSpec(
            seed=1,
            targets=["edge-0-0-0", "edge-0-0-1", "edge-0-1-0", "edge-0-1-1"],
            max_failures=4, mean_time_to_failure_s=0.01)
        _, stats = run_stream(failures=failures)
        assert stats.dropped > 0
        assert stats.accounted == 30


class TestRecovery:
    def test_crash_recover_churn_accounts_every_item(self):
        failures = FailureSpec(
            seed=3, mean_time_to_failure_s=0.2,
            mean_time_to_repair_s=0.3, max_failures=8)
        runtime, stats = run_stream(
            failures=failures,
            fault_policy=FaultPolicy(stage_timeout_s=5.0))
        assert stats.accounted == 30
        assert runtime.events.records("cluster.failure")
        assert all(record.clock == "sim"
                   for record in runtime.events.records("cluster.failure"))


class TestDeterminism:
    def test_same_seed_byte_identical_dump_under_failures(self):
        failures = FailureSpec(
            seed=3, mean_time_to_failure_s=0.2,
            mean_time_to_repair_s=0.3, max_failures=8)
        policy = FaultPolicy(stage_timeout_s=5.0)
        dumps = []
        for _ in range(2):
            runtime, _ = run_stream(failures=failures, fault_policy=policy)
            dumps.append(json.dumps(runtime.dump(), sort_keys=True))
        assert dumps[0] == dumps[1]

    def test_different_failure_seeds_differ(self):
        def dump_for(failure_seed):
            runtime, _ = run_stream(failures=FailureSpec(
                seed=failure_seed, mean_time_to_failure_s=0.2,
                max_failures=4))
            return json.dumps(runtime.dump(), sort_keys=True)

        assert dump_for(1) != dump_for(2)
