"""Tests for two-tier deployment: split weights must reproduce the model."""

import numpy as np
import pytest

from repro.apps.action import ActionEarlyExitModel
from repro.fog import TwoTierDeployment, split_state_dict
from repro.nn.models.yolo import EarlyExitDetector
from repro.nn.tensor import Tensor


class TestSplitStateDict:
    def test_partitions_by_prefix(self):
        state = {"stem.weight": np.zeros(1), "stem.bias": np.zeros(1),
                 "remote_branch.weight": np.zeros(1)}
        local, remote = split_state_dict(state, ["stem"], ["remote_branch"])
        assert set(local) == {"stem.weight", "stem.bias"}
        assert set(remote) == {"remote_branch.weight"}

    def test_unmatched_key_rejected(self):
        with pytest.raises(ValueError):
            split_state_dict({"orphan.weight": np.zeros(1)}, ["a"], ["b"])

    def test_doubly_matched_key_rejected(self):
        with pytest.raises(ValueError):
            split_state_dict({"a.weight": np.zeros(1)}, ["a"], ["a"])

    def test_prefix_is_segment_not_substring(self):
        state = {"stem.weight": np.zeros(1), "stemlike.weight": np.zeros(1)}
        with pytest.raises(ValueError):
            split_state_dict(state, ["stem"], ["remote"])


class TestDetectorDeployment:
    def make_trained(self):
        rng = np.random.default_rng(0)
        model = EarlyExitDetector(1, 16, num_classes=3, grid=4, rng=rng)
        # "Train" by randomizing weights away from the init of a fresh copy.
        for param in model.parameters():
            param.data += rng.normal(0, 0.1, param.data.shape)
        return model

    def deployment(self):
        return TwoTierDeployment(
            lambda: EarlyExitDetector(1, 16, num_classes=3, grid=4,
                                      rng=np.random.default_rng(99)),
            local_modules=["stem", "local_branch", "local_head"],
            remote_modules=["remote_branch", "remote_head"])

    def test_deployed_pair_matches_monolith(self):
        trained = self.make_trained()
        deployment = self.deployment()
        deployment.deploy(trained)
        trained.eval()
        deployment.device_model.eval()
        deployment.server_model.eval()
        x = Tensor(np.random.default_rng(1).normal(0, 1, (2, 1, 16, 16)))
        # Device side: stem + local branch + local head.
        mono_features = trained.stem(x)
        mono_local = trained.local_head(
            trained.local_branch(mono_features)).data
        device = deployment.device_model
        dev_features = device.stem(x)
        dev_local = device.local_head(
            device.local_branch(dev_features)).data
        np.testing.assert_allclose(dev_local, mono_local, atol=1e-12)
        # Server side consumes the device's feature map.
        mono_remote = trained.remote_head(
            trained.remote_branch(mono_features)).data
        server = deployment.server_model
        srv_remote = server.remote_head(
            server.remote_branch(Tensor(dev_features.data))).data
        np.testing.assert_allclose(srv_remote, mono_remote, atol=1e-12)

    def test_payload_sizes_reported(self):
        deployment = self.deployment()
        deployment.deploy(self.make_trained())
        assert deployment.payload_bytes["device"] > 0
        assert deployment.payload_bytes["server"] > 0
        # The server half (wider branch) is the heavier payload.
        assert (deployment.payload_bytes["server"]
                > deployment.payload_bytes["device"])


class TestActionModelDeployment:
    def test_action_model_two_tier_split(self):
        rng = np.random.default_rng(3)
        trained = ActionEarlyExitModel(image_size=16, num_classes=5, rng=rng)
        for param in trained.parameters():
            param.data += rng.normal(0, 0.05, param.data.shape)
        deployment = TwoTierDeployment(
            lambda: ActionEarlyExitModel(
                image_size=16, num_classes=5,
                rng=np.random.default_rng(77)),
            local_modules=["block1", "lstm1", "fc1"],
            remote_modules=["block2", "lstm2", "fc2"])
        deployment.deploy(trained)
        trained.eval()
        deployment.device_model.eval()
        deployment.server_model.eval()
        clips = Tensor(np.random.default_rng(4).normal(0, 1, (2, 3, 1, 16, 16)))
        mono_local, mono_remote = trained(clips)
        # Recompute the device path on the deployed device model.
        device = deployment.device_model
        folded, n, t = device._fold_frames(clips)
        feature_maps = device.block1(folded)
        pooled = device.pool(feature_maps).reshape(n, t, device.block1_channels)
        dev_local = device.fc1(device.lstm1.last_hidden(pooled)).data
        np.testing.assert_allclose(dev_local, mono_local.data, atol=1e-12)
        # Server path from the device's block-1 feature maps.
        server = deployment.server_model
        deep = server.block2(Tensor(feature_maps.data))
        pooled2 = server.pool(deep).reshape(n, t, deep.shape[1])
        srv_remote = server.fc2(server.lstm2.last_hidden(pooled2)).data
        np.testing.assert_allclose(srv_remote, mono_remote.data, atol=1e-12)


class TestFusedDeployment:
    def make_trained(self):
        rng = np.random.default_rng(11)
        model = ActionEarlyExitModel(image_size=16, num_classes=5, rng=rng)
        for param in model.parameters():
            param.data += rng.normal(0, 0.05, param.data.shape)
        # Warm BN running stats so folding has something non-trivial to fold.
        clips = Tensor(rng.normal(0, 1, (2, 3, 1, 16, 16)))
        model.train()
        model.forward(clips)
        model.eval()
        return model

    def make_deployment(self, **kwargs):
        return TwoTierDeployment(
            lambda: ActionEarlyExitModel(
                image_size=16, num_classes=5,
                rng=np.random.default_rng(78)),
            local_modules=["block1", "lstm1", "fc1"],
            remote_modules=["block2", "lstm2", "fc2"],
            **kwargs)

    def test_fused_deploy_reports_folded_layers(self):
        deployment = self.make_deployment(fuse_inference=True)
        deployment.deploy(self.make_trained())
        # Each tier instance is the full architecture: two ResNetBlocks
        # (conv shortcut), each carrying bn1, bn2 and shortcut_bn.
        assert deployment.fused_layers == {"device": 6, "server": 6}
        from repro.nn.modules import BatchNorm2d
        for model in (deployment.device_model, deployment.server_model):
            assert not any(isinstance(m, BatchNorm2d) for m in model.modules())

    def test_fused_device_matches_unfused_local_logits(self):
        trained = self.make_trained()
        plain = self.make_deployment()
        fused = self.make_deployment(fuse_inference=True)
        plain.deploy(trained)
        fused.deploy(trained)
        clips = Tensor(np.random.default_rng(12).normal(0, 1, (2, 3, 1, 16, 16)))
        plain.device_model.eval()
        expected = [r["prediction"]
                    for r in plain.device_model.infer(clips, max_entropy=0.8)]
        got = [r["prediction"]
               for r in fused.device_model.infer(clips, max_entropy=0.8)]
        assert got == expected

    def test_inference_dtype_casts_deployed_models(self):
        deployment = self.make_deployment(fuse_inference=True,
                                          inference_dtype=np.float32)
        deployment.deploy(self.make_trained())
        for model in (deployment.device_model, deployment.server_model):
            assert all(p.data.dtype == np.float32 for p in model.parameters())

    def test_unfused_deploy_leaves_counters_at_zero(self):
        deployment = self.make_deployment()
        deployment.deploy(self.make_trained())
        assert deployment.fused_layers == {"device": 0, "server": 0}
