"""Tests for fog degradation: stage migration when tier nodes fail."""

import pytest

from repro.cluster import NetworkTopology, Tier
from repro.fog import (
    FogPipeline,
    PlacementError,
    model_split_from_early_exit,
    place_bottom_up,
)


def build():
    topology = NetworkTopology.build_fog_hierarchy(
        edges_per_fog=2, fogs_per_server=2, servers=1)
    edge = topology.machines(Tier.EDGE)[0].name
    stages = model_split_from_early_exit(
        local_flops=1e8, remote_flops=5e9,
        feature_bytes=4_096, input_bytes=50_000)
    placement = place_bottom_up(topology, stages, edge)
    return topology, placement


class TestFailureMigration:
    def test_no_failures_identity(self):
        _, placement = build()
        degraded = placement.with_failures([])
        assert degraded.machines == placement.machines

    def test_fog_failure_moves_stage_to_server(self):
        topology, placement = build()
        fog = placement.machines[1]
        assert topology.machine(fog).tier == Tier.FOG
        degraded = placement.with_failures([fog])
        assert degraded.machines[1] == topology.parent_of(fog)
        assert degraded.machines[0] == placement.machines[0]  # edge intact

    def test_cascading_failures_climb_the_tree(self):
        topology, placement = build()
        fog = placement.machines[1]
        server = placement.machines[2]
        degraded = placement.with_failures([fog, server])
        assert degraded.machines[1] == "cloud-0"
        assert degraded.machines[2] == "cloud-0"

    def test_root_failure_unrecoverable(self):
        topology, placement = build()
        everything = [m.name for m in topology.machines()]
        with pytest.raises(PlacementError):
            placement.with_failures(everything)

    def test_unknown_machine_rejected(self):
        _, placement = build()
        with pytest.raises(KeyError):
            placement.with_failures(["ghost"])

    def test_degraded_pipeline_is_slower(self):
        # Losing the fog tier forces the local stage onto the (shared,
        # farther) server: per-item latency for local-exit traffic rises.
        topology, placement = build()
        fog = placement.machines[1]
        healthy = FogPipeline(placement)
        degraded = FogPipeline(placement.with_failures([fog]))
        healthy_cost = healthy.item_cost(resolved_stage=1)
        degraded_cost = degraded.item_cost(resolved_stage=1)
        # The raw frame now crosses two hops instead of one.
        assert degraded_cost.network_s > healthy_cost.network_s

    def test_degraded_stream_still_completes(self):
        topology, placement = build()
        fog = placement.machines[1]
        degraded = FogPipeline(placement.with_failures([fog]))
        stats = degraded.simulate_stream(
            num_items=10, arrival_interval_s=0.1,
            exit_probabilities={1: 0.5}, seed=0)
        assert stats.completed == 10
