"""Targeted tests for code paths the main suites exercise only indirectly."""

import numpy as np
import pytest

from repro import nn
from repro.cluster import Environment, SimulationError, Store
from repro.nn import init
from repro.nn.tensor import Tensor
from repro.streaming import FlumeAgent, FunctionSource, dfs_sink
from repro.dfs import DistributedFileSystem


class TestInitializers:
    def test_fans_dense(self):
        assert init._fans((8, 4)) == (4, 8)

    def test_fans_conv(self):
        fan_in, fan_out = init._fans((16, 3, 5, 5))
        assert fan_in == 3 * 25
        assert fan_out == 16 * 25

    def test_fans_other_shapes(self):
        fan_in, fan_out = init._fans((7,))
        assert fan_in == fan_out == 7

    def test_kaiming_bound(self):
        rng = np.random.default_rng(0)
        weights = init.kaiming_uniform((64, 16), rng)
        bound = np.sqrt(6.0 / 16)
        assert np.abs(weights).max() <= bound
        assert np.abs(weights).max() > 0.5 * bound  # actually spread out

    def test_xavier_bound(self):
        rng = np.random.default_rng(1)
        weights = init.xavier_uniform((32, 32), rng)
        bound = np.sqrt(6.0 / 64)
        assert np.abs(weights).max() <= bound

    def test_zeros_ones(self):
        assert init.zeros((2, 2)).sum() == 0
        assert init.ones((2, 2)).sum() == 4


class TestSimKernelCorners:
    def test_all_of_propagates_failure(self):
        env = Environment()
        bad = env.event()
        caught = []

        def proc(env):
            try:
                yield env.all_of([env.timeout(10.0), bad])
            except RuntimeError as exc:
                caught.append((env.now, str(exc)))

        def failer(env):
            yield env.timeout(1.0)
            bad.fail(RuntimeError("dead sensor"))

        env.process(proc(env))
        env.process(failer(env))
        env.run()
        assert caught == [(1.0, "dead sensor")]

    def test_all_of_with_pretriggered_events(self):
        env = Environment()
        done = env.event()
        done.succeed("x")
        values = []

        def proc(env):
            result = yield env.all_of([done])
            values.append(result)

        env.process(proc(env))
        env.run()
        assert values == [["x"]]

    def test_any_of_with_pretriggered_event(self):
        env = Environment()
        done = env.event()
        done.succeed("quick")
        values = []

        def proc(env):
            value = yield env.any_of([done, env.timeout(100.0)])
            values.append((env.now, value))

        env.process(proc(env))
        env.run(until=1.0)
        assert values == [(0.0, "quick")]

    def test_store_multiple_waiting_getters_fifo(self):
        env = Environment()
        store = Store(env)
        order = []

        def getter(env, name):
            item = yield store.get()
            order.append((name, item))

        def putter(env):
            yield env.timeout(1.0)
            yield store.put("a")
            yield store.put("b")

        env.process(getter(env, "first"))
        env.process(getter(env, "second"))
        env.process(putter(env))
        env.run()
        assert order == [("first", "a"), ("second", "b")]

    def test_fail_requires_exception_instance(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_process_target_must_be_generator(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)


class TestMiscLayers:
    def test_leaky_relu_layer(self):
        layer = nn.LeakyReLU(0.2)
        out = layer(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [-0.2, 2.0])

    def test_tanh_sigmoid_layers(self):
        x = Tensor(np.array([0.0]))
        assert nn.Tanh()(x).data[0] == 0.0
        assert nn.Sigmoid()(x).data[0] == 0.5

    def test_avg_pool_layer(self):
        layer = nn.AvgPool2d(2)
        x = Tensor(np.arange(4, dtype=float).reshape(1, 1, 2, 2))
        assert layer(x).data.reshape(-1)[0] == 1.5

    def test_sequential_iteration_and_len(self):
        model = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert len(model) == 2
        assert isinstance(list(model)[0], nn.ReLU)

    def test_embedding_empty_batch(self):
        emb = nn.Embedding(5, 3)
        out = emb(np.array([], dtype=int))
        assert out.shape == (0, 3)


class TestFlumeSinkEncoding:
    def test_dfs_sink_custom_encoder(self):
        dfs = DistributedFileSystem.with_datanodes(3, replication=2)
        sink = dfs_sink(dfs, "/enc",
                        encode=lambda e: f"<{e}>".encode())
        agent = FlumeAgent(FunctionSource([1, 2]), sink, batch_size=2)
        agent.run()
        assert dfs.read("/enc/part-00000") == b"<1>\n<2>"


class TestTensorMatmulCorners:
    def test_vector_vector_dot(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        out = a @ b
        assert out.item() == 11.0
        out.backward(np.array(1.0))
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_vector_matrix(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        m = Tensor(np.ones((2, 3)), requires_grad=True)
        out = (a @ m).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [3.0, 3.0])
        np.testing.assert_allclose(m.grad, [[1.0] * 3, [2.0] * 3])

    def test_matrix_vector(self):
        m = Tensor(np.ones((3, 2)), requires_grad=True)
        v = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = (m @ v).sum()
        out.backward()
        np.testing.assert_allclose(v.grad, [3.0, 3.0])
        np.testing.assert_allclose(m.grad, [[1.0, 2.0]] * 3)
