#!/usr/bin/env python
"""DRL smart-camera control (Sec. III-D): learn to rotate and zoom.

Trains a DQN agent to steer a pan-tilt-zoom camera so a drifting incident
stays in a tightly zoomed field of view, and compares against random and
fixed-wide-shot baselines — the paper's "smart camera controls to
automatically rotate and zoom in for traffic and crime incidents".

Run:  python examples/camera_control_drl.py
"""

import numpy as np

from repro.apps.drl import (
    DQNAgent,
    PTZCameraEnv,
    evaluate_policy,
    random_policy,
    static_policy,
)


def main() -> None:
    env = PTZCameraEnv(episode_length=30, incident_speed=0.01, seed=0)
    agent = DQNAgent(env.observation_dim, env.num_actions,
                     hidden=24, lr=3e-3, epsilon_decay_steps=1500, seed=0)

    print("Training DQN on the PTZ tracking task...")
    rewards = agent.train(env, episodes=80, batch_size=32, warmup=100)
    window = 10
    print(f"  {'episodes':>10} {'mean reward':>12}")
    for start in range(0, len(rewards), window):
        chunk = rewards[start:start + window]
        print(f"  {start:4d}-{start + len(chunk) - 1:4d} "
              f"{np.mean(chunk):12.2f}")

    print("\n=== Policy comparison (10 fresh episodes each) ===")
    eval_env = PTZCameraEnv(episode_length=30, incident_speed=0.01, seed=99)
    scores = {
        "DQN (trained)": evaluate_policy(eval_env, agent.policy()),
        "random actions": evaluate_policy(
            eval_env, random_policy(env.num_actions)),
        "fixed wide shot": evaluate_policy(eval_env, static_policy()),
    }
    for name, score in scores.items():
        print(f"  {name:16s} mean episode reward = {score:7.2f}")


if __name__ == "__main__":
    main()
