#!/usr/bin/env python
"""Multimodal gunshot detection (Sec. III-C): fusion beats single modalities.

The synthetic events are built so neither microphone nor camera alone can
separate gunshots from their confusers (fireworks share the muzzle flash,
car backfires share the audio impulse).  Fusing the modalities — with a
multimodal autoencoder or CCA — recovers the conjunction.

Run:  python examples/gunshot_fusion.py
"""

from repro.apps.fusion import GunshotFusionApp


def main() -> None:
    app = GunshotFusionApp(seed=0)
    print("Training single-modality baselines and both fusion methods...")
    results = app.run(train_per_class=60, test_per_class=40, ae_epochs=150)

    print("\n=== Gunshot classification accuracy ===")
    order = ["audio_only", "video_only", "concat", "cca_fusion", "ae_fusion"]
    labels = {
        "audio_only": "audio only (fooled by backfires)",
        "video_only": "video only (fooled by fireworks)",
        "concat": "naive feature concatenation",
        "cca_fusion": "CCA fusion (linear, unsupervised)",
        "ae_fusion": "autoencoder fusion (shared code)",
    }
    for key in order:
        print(f"  {labels[key]:36s} {results[key]:.3f}")

    print("\n=== Missing-modality robustness (AE fusion) ===")
    robustness = app.missing_modality_accuracy(train_per_class=60,
                                               test_per_class=40,
                                               ae_epochs=150)
    print(f"  both modalities present : {robustness['both']:.3f}")
    print(f"  video missing           : "
          f"{robustness['audio_missing_video']:.3f}")
    print(f"  audio missing           : "
          f"{robustness['video_missing_audio']:.3f}")


if __name__ == "__main__":
    main()
