#!/usr/bin/env python
"""Quickstart: assemble the cyberinfrastructure and run the Fig. 4 pipeline.

Builds the four-layer stack, registers three city data feeds (crimes,
tweets, Waze reports), runs one collection pass — ingestion through
Flume-style agents, storage in the document store, a Spark-style
aggregation, and a chart export — then prints the per-layer inventory and
per-stage record counts.

Run:  python examples/quickstart.py
"""

from repro.core import CyberInfrastructure, InfraConfig
from repro.data import OpenCityData, TweetGenerator, WazeGenerator


def main() -> None:
    infra = CyberInfrastructure(InfraConfig(
        edges_per_fog=4, fogs_per_server=2, servers=2,
        datanodes=4, dfs_replication=2))

    city = OpenCityData(seed=7)
    tweets = TweetGenerator(num_users=200, seed=7)
    waze = WazeGenerator(seed=7)

    infra.register_source("crimes", lambda: city.crime_incidents(days=14))
    infra.register_source("emergency_calls",
                          lambda: city.emergency_calls(days=14))
    infra.register_source(
        "tweets", lambda: [t.as_document() for t in tweets.chatter(300)])
    infra.register_source("waze", lambda: waze.reports(120))

    print("=== Layer inventory (Fig. 1) ===")
    for layer, contents in infra.describe_layers().items():
        print(f"  {layer:12s} {contents}")

    print("\n=== Collection pipeline (Fig. 4) ===")
    report = infra.run_collection_pipeline(analysis_field="district")
    for source, count in sorted(report.records_ingested.items()):
        stored = report.records_stored[source]
        print(f"  {source:18s} ingested={count:5d}  stored={stored:5d}")
    print(f"  analysis rows (districts): {report.analysis_rows}")
    print(f"  visualization payload:     {report.viz_bytes} bytes of SVG")

    print("\n=== Querying the stored data ===")
    crimes = infra.collection("crimes")
    crimes.create_index("offense")
    robberies = crimes.count({"offense": "robbery"})
    print(f"  robberies on record: {robberies} "
          f"(index used: {crimes.last_query_used_index})")
    hot = crimes.find({"district": 4}, limit=3, sort="hour")
    print(f"  sample district-4 incidents: "
          f"{[(d['offense'], round(d['hour'], 1)) for d in hot]}")

    consumer = infra.bus.consumer("dashboard", ["waze"])
    jams = [r for r in consumer.drain() if r.value["type"] == "JAM"]
    print(f"  live Waze jams on the bus: {len(jams)}")


if __name__ == "__main__":
    main()
