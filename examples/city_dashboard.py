#!/usr/bin/env python
"""City dashboard: streaming analytics + spatial + temporal + viz artifacts.

The full Sec. II-C-3 analytics story on one screen: Waze reports stream
through the micro-batch engine into windowed counters; crime incidents
rasterize into a hotspot heatmap; an LSTM forecasts next-day crime counts;
and every panel is exported as the JSON/SVG data product the paper's D3
web layer would render.  Artifacts are written to ``/tmp/smartcity_dash``.

Run:  python examples/city_dashboard.py
"""

import json
import pathlib

from repro.apps.forecast import CrimeForecaster
from repro.apps.forecast.crime import seasonal_series
from repro.compute import GridAggregator, StreamingContext, assign_districts
from repro.data import OpenCityData, WazeGenerator
from repro.data.city import DISTRICT_CENTERS
from repro.streaming import MessageBus
from repro.viz import bar_chart_svg, heatmap_svg, timeseries_json


def main() -> None:
    out_dir = pathlib.Path("/tmp/smartcity_dash")
    out_dir.mkdir(exist_ok=True)

    print("=== Streaming panel: live Waze feed (micro-batches) ===")
    bus = MessageBus()
    bus.create_topic("waze", partitions=4)
    for report in WazeGenerator(seed=0).reports(500):
        bus.produce("waze", report)
    context = StreamingContext(bus, batch_max_records=100)
    windows = []
    (context.stream("waze")
     .filter(lambda r: r["severity"] >= 3)
     .reduce_by_key_and_window(lambda r: r["type"], batches=3, into=windows))
    consumed = context.run_until_idle()
    latest = windows[-1]
    print(f"  {consumed} reports in {len(windows)} micro-batches")
    print(f"  severe incidents, 3-batch window: {latest}")
    (out_dir / "waze_window.svg").write_text(
        bar_chart_svg({k: float(v) for k, v in sorted(latest.items())},
                      title="severe Waze reports (window)"))

    print("\n=== Spatial panel: 60-day crime hotspot map ===")
    city = OpenCityData(seed=3)
    records = city.crime_incidents(days=60)
    points = [r["location"] for r in records]
    aggregator = GridAggregator(rows=8, cols=8)
    grid = aggregator.aggregate(points)
    hotspots = aggregator.hotspots(points, top=3)
    for rank, spot in enumerate(hotspots, 1):
        print(f"  hotspot {rank}: center={spot['center']} "
              f"incidents={spot['count']}")
    joined = assign_districts([h["center"] for h in hotspots],
                              DISTRICT_CENTERS)
    print(f"  hotspot districts: {joined}")
    (out_dir / "crime_heatmap.svg").write_text(
        heatmap_svg(grid.tolist(), title="crime density (60 days)"))

    print("\n=== Temporal panel: next-day crime forecast ===")
    history = seasonal_series(120, seed=0)
    forecaster = CrimeForecaster(window=7, seed=0)
    forecaster.fit(history, epochs=120)
    fresh = seasonal_series(40, seed=11)
    report = forecaster.compare(fresh)
    print(f"  LSTM MAE {report['lstm']:.2f}  "
          f"(persistence {report['persistence']:.2f}, "
          f"moving-average {report['moving_average']:.2f})")
    predictions = forecaster.predict(fresh)
    (out_dir / "forecast.json").write_text(timeseries_json({
        "actual": fresh[7:].tolist(),
        "predicted": predictions.tolist(),
    }))

    artifacts = sorted(p.name for p in out_dir.iterdir())
    print(f"\n=== Dashboard artifacts written to {out_dir} ===")
    for artifact in artifacts:
        size = (out_dir / artifact).stat().st_size
        print(f"  {artifact:22s} {size:7,d} bytes")


if __name__ == "__main__":
    main()
