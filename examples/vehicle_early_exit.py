#!/usr/bin/env python
"""Vehicle detection with the Fig. 5 tiny/full early-exit split.

Trains the shared-stem detector jointly on both exits, sweeps the
classification-score threshold (the Fig. 5 rule: confident local results
stay on the device, everything else ships the feature map to the analysis
server), and prices the deployment on the simulated fog hierarchy.

Run:  python examples/vehicle_early_exit.py
"""

from repro.apps.vehicle import VehicleDetectionApp
from repro.cluster import NetworkTopology, Tier


def main() -> None:
    print("Training the early-exit vehicle detector "
          "(tiny local branch + deep server branch)...")
    app = VehicleDetectionApp(num_classes=4, image_size=16, seed=0)
    losses = app.train(num_scenes=48, epochs=30)
    print(f"  joint loss: {losses[0]:.3f} -> {losses[-1]:.3f}")

    print("\n=== Threshold sweep (Fig. 5 tradeoff) ===")
    print(f"  {'threshold':>9} {'F1':>6} {'local%':>7} {'bytes shipped':>14}")
    for row in app.threshold_sweep([0.0, 0.2, 0.4, 0.6, 0.8, 1.01],
                                   num_scenes=24):
        print(f"  {row['threshold']:9.2f} {row['f1']:6.3f} "
              f"{100 * row['local_fraction']:6.1f}% "
              f"{row['bytes_shipped']:14,d}")

    print("\n=== Fog deployment (Fig. 3 x Fig. 5) ===")
    topology = NetworkTopology.build_fog_hierarchy()
    edge = topology.machines(Tier.EDGE)[0].name
    pipeline = app.fog_pipeline(topology, edge)
    for row in pipeline.placement.describe():
        print(f"  stage {row['stage']:8s} on {row['machine']:12s} "
              f"({row['tier']:6s})  {row['gflops']:.4f} GFLOP  "
              f"{row['compute_ms']:.2f} ms")
    local = pipeline.item_cost(resolved_stage=1)
    server = pipeline.item_cost(resolved_stage=2)
    print(f"\n  per-frame latency, local exit : {1000 * local.total_s:.2f} ms")
    print(f"  per-frame latency, server exit: {1000 * server.total_s:.2f} ms")
    print(f"  feature map shipped upstream  : "
          f"{app.model.feature_map_bytes():,} bytes "
          f"(raw frame: {app.model.raw_frame_bytes():,} bytes)")

    stats = pipeline.simulate_stream(num_items=60, arrival_interval_s=0.05,
                                     exit_probabilities={1: 0.7}, seed=1)
    print(f"\n  streaming 60 frames at 20 fps with 70% local exits:")
    print(f"    mean latency {1000 * stats.mean_latency_s:.2f} ms, "
          f"p95 {1000 * stats.p95_latency_s:.2f} ms")
    print(f"    resolved locally: {stats.resolved_fraction(1):.0%}")


if __name__ == "__main__":
    main()
