#!/usr/bin/env python
"""Sec. IV-B end-to-end: gang networks + multimodal tweet triangulation.

Builds the Baton Rouge-scale gang co-offending network (67 groups, 982
members, mean degree ~14), shows why raw associate fields are too large to
investigate, then narrows a violent-incident person-of-interest field with
the paper's text/geo/time triangulation.  Finishes with crime hotspot
clustering over the open city data.

Run:  python examples/crime_investigation.py
"""

import numpy as np

from repro.apps.social import (
    MultimodalTriangulation,
    OpioidAnalytics,
    SocialNetworkAnalysis,
)
from repro.compute import KMeans
from repro.data import OpenCityData, TweetGenerator


def main() -> None:
    print("=== Gang co-offending network (Sec. IV-B scale) ===")
    analysis = SocialNetworkAnalysis.paper_scale(seed=0)
    graph = analysis.graph
    print(f"  members: {graph.num_vertices}, ties: {graph.num_edges}")
    sizes = analysis.mean_field_sizes(sample=100, seed=0)
    print(f"  mean first-degree associates : {sizes['first_degree']:.1f} "
          f"(paper: 14)")
    print(f"  mean second-degree field     : {sizes['second_degree']:.0f} "
          f"(paper: ~200)")
    top = analysis.key_players(top=3)
    print(f"  key players by pagerank      : "
          f"{[(person, round(rank, 5)) for person, rank in top]}")

    print("\n=== Multimodal triangulation around a violent incident ===")
    members = sorted(graph.vertices)
    anchor = members[0]
    incident_location, incident_time = (0.35, 0.55), 21.5
    tweeters = TweetGenerator(num_users=len(members), seed=3)
    tweeters.users = members
    tweets = tweeters.chatter(3000)
    field = sorted(analysis.associates(anchor, 2))
    present = field[:3]  # associates who really were near the incident
    tweets += tweeters.incident_burst(present, incident_location,
                                      incident_time, geo_spread=0.01,
                                      time_spread=0.3)
    triangulation = MultimodalTriangulation(analysis)
    report = triangulation.investigate(anchor, incident_location,
                                       incident_time, tweets,
                                       geo_radius=0.08, time_window=2.0)
    print(f"  anchor (victim/suspect): {report.anchor}")
    for stage, count in report.stages():
        print(f"    {stage:22s} -> {count:4d} people")
    print(f"  persons of interest: {sorted(report.persons_of_interest)}")
    print(f"  narrowing factor   : {report.narrowing_factor:.1f}x")

    print("\n=== Crime hotspots (MLlib k-means over open city data) ===")
    city = OpenCityData(seed=5)
    records = city.crime_incidents(days=60)
    points = np.array([r["location"] for r in records])
    model = KMeans(k=4, seed=0).fit(points)
    labels = model.predict(points)
    for cluster in range(4):
        center = model.centers[cluster]
        count = int((labels == cluster).sum())
        print(f"  hotspot {cluster}: center=({center[0]:.2f}, "
              f"{center[1]:.2f})  incidents={count}")

    print("\n=== Opioid analytics sketch (Sec. V future work) ===")
    report = OpioidAnalytics(seed=2).report(days=90)
    print(f"  overdoses (90 synthetic days): {report['total_overdoses']:.0f}")
    print(f"  district correlation with crime: "
          f"{report['overdose_vs_crime']:.2f}")
    print(f"  district correlation with 911 volume: "
          f"{report['overdose_vs_911']:.2f}")


if __name__ == "__main__":
    main()
