#!/usr/bin/env python
"""Suspicious-behaviour monitoring with the Fig. 7 architecture.

Trains the ResNet+LSTM two-exit model on synthetic behaviour clips, sweeps
the entropy threshold that gates server offload, then monitors a simulated
camera: confident clips are indexed locally, uncertain ones ship their
block-1 feature maps upstream, and suspicious recognitions are logged as
operator alerts in the document store — the paper's full operational loop.

Run:  python examples/action_monitoring.py
"""

from repro.apps.action import ActionRecognitionApp
from repro.data import build_dotd_registry
from repro.data.video import ACTION_CLASSES
from repro.nosql import DocumentStore
from repro.nn.tensor import Tensor


def main() -> None:
    print("Training the two-exit ResNet+LSTM recognizer (Fig. 7)...")
    app = ActionRecognitionApp(image_size=16, frames=6, seed=0)
    losses = app.train(clips_per_class=8, epochs=25)
    print(f"  joint loss: {losses[0]:.3f} -> {losses[-1]:.3f}")
    accuracies = app.exit_accuracies(clips_per_class=6)
    print(f"  exit-1 (device) accuracy: {accuracies['local']:.2f}   "
          f"exit-2 (server) accuracy: {accuracies['remote']:.2f}")

    print("\n=== Entropy-threshold sweep (Fig. 7 rule) ===")
    print(f"  {'max entropy':>11} {'accuracy':>9} {'local%':>7} "
          f"{'KB shipped':>11}")
    for row in app.entropy_sweep([0.0, 0.3, 0.6, 1.0, 1.6],
                                 clips_per_class=6):
        print(f"  {row['max_entropy']:11.2f} {row['accuracy']:9.3f} "
              f"{100 * row['local_fraction']:6.1f}% "
              f"{row['bytes_shipped'] / 1024:11.1f}")

    print("\n=== Monitoring a street camera ===")
    registry = build_dotd_registry(seed=0)
    camera = registry.by_city("Baton Rouge")[0]
    store = DocumentStore()
    alerts_collection = store.collection("alerts")
    clips, labels = app.clips.dataset(clips_per_class=4)
    results = app.model.infer(Tensor(clips), max_entropy=0.8)
    suspicious = [ACTION_CLASSES.index("fighting"),
                  ACTION_CLASSES.index("breaking_in")]
    alerts = app.index_alerts(alerts_collection, results,
                              camera_id=camera.camera_id,
                              suspicious_classes=suspicious)
    local = sum(1 for r in results if r["exit_index"] == 1)
    print(f"  camera: {camera.camera_id} on {camera.highway}")
    print(f"  clips processed: {len(results)} "
          f"({local} resolved on-device, {len(results) - local} on server)")
    print(f"  operator alerts raised: {alerts}")
    for doc in alerts_collection.find({}, limit=5):
        print(f"    clip {doc['clip_index']:2d}: {doc['activity']:12s} "
              f"(exit {doc['exit']}, entropy {doc['entropy']:.2f})")


if __name__ == "__main__":
    main()
