#!/usr/bin/env python
"""AMBER-Alert vehicle tracking (the Sec. IV-A-1 motivating use case).

"Identifying details of vehicles ... can be critical when tracking cars
that are involved in criminal activities (e.g., tracking cars described in
AMBER Alerts)."  This demo runs the whole loop: the early-exit detector
watches three Baton Rouge cameras, indexes every confident sighting into
the document store, and an analyst's alert query returns the vehicle's
cross-camera track plus the best cameras to stake out.

Run:  python examples/amber_alert.py
"""

from repro.apps.vehicle import AmberAlertSearch, VehicleDetectionApp
from repro.data import build_dotd_registry
from repro.nosql import DocumentStore
from repro.nn.tensor import Tensor


def main() -> None:
    print("Training the vehicle detector...")
    app = VehicleDetectionApp(num_classes=4, image_size=16, seed=0)
    losses = app.train(num_scenes=48, epochs=30)
    print(f"  joint loss: {losses[0]:.3f} -> {losses[-1]:.3f}")

    registry = build_dotd_registry(seed=0)
    cameras = registry.by_city("Baton Rouge")[:3]
    store = DocumentStore()
    search = AmberAlertSearch(store.collection("sightings"), min_score=0.25)

    print("\nMonitoring three cameras and indexing sightings...")
    clock = 0.0
    for camera in cameras:
        frames, _ = app.build_detection_dataset(num_scenes=10)
        results = app.model.infer(Tensor(frames), threshold=0.5)
        indexed = 0
        for frame_index, result in enumerate(results):
            for detection in result["detections"]:
                label = app.catalog.label(detection.class_id)
                search.index_sighting(
                    camera_id=camera.camera_id,
                    time=clock + frame_index / 15.0,  # 15 fps
                    label=label,
                    score=detection.score)
                indexed += 1
        print(f"  {camera.camera_id} ({camera.highway}): "
              f"{indexed} sightings indexed")
        clock += 60.0  # next camera's footage starts a minute later

    total = store.collection("sightings").count({})
    labels = store.collection("sightings").distinct("label")
    print(f"\nIndexed {total} sightings across {len(cameras)} cameras; "
          f"{len(labels)} distinct vehicle labels seen")

    # The alert: dispatch described a specific make/body style.
    description = labels[0].split(" ", 1)[1]  # e.g. "Ford Sedan"
    print(f"\n=== AMBER alert: locate '{description}' ===")
    track = search.search(description)
    print(f"  sightings: {len(track.sightings)}")
    if track.sightings:
        print(f"  first seen: t={track.first_seen:.1f}s   "
              f"last seen: t={track.last_seen:.1f}s")
        print(f"  camera path: {' -> '.join(track.cameras)}")
        for sighting in track.sightings[:5]:
            print(f"    t={sighting.time:7.1f}s  {sighting.camera_id:22s} "
                  f"{sighting.label:24s} score={sighting.score:.2f}")
    stakeout = search.cameras_to_stake_out(description)
    print(f"  cameras to stake out: {stakeout}")


if __name__ == "__main__":
    main()
